"""Digital camera model: photographs of the PDA screen.

The validation methodology (Figure 2) photographs the handheld display
twice — once showing the original frame at full backlight (*reference
snapshot*) and once showing the compensated frame at the reduced backlight
(*compensated snapshot*) — and compares the two photographs by histogram.
"The picture taken by the camera incorporates the actual characteristics of
the handheld display, which are not otherwise captured by a simulation."

:class:`DigitalCamera` converts a rendered perceived-intensity map (from
:mod:`repro.display.rendering`) into an 8-bit photograph: exposure scaling,
the nonlinear response curve, additive sensor noise and quantization.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .response import ResponseCurve, SRGBLikeResponse


class DigitalCamera:
    """An 8-bit still camera with a monotone nonlinear response.

    Parameters
    ----------
    response:
        Radiance -> value curve; defaults to an sRGB-like consumer curve.
    exposure:
        Multiplicative gain applied to scene radiance before the response.
        1.0 means a full-white/full-backlight screen exposes to full scale.
    noise_sigma:
        Standard deviation of additive Gaussian sensor noise, in normalized
        value units (applied after the response, before quantization).
        0 disables noise — useful for exact tests.
    seed:
        RNG seed for the noise (snapshots are reproducible).
    """

    def __init__(
        self,
        response: Optional[ResponseCurve] = None,
        exposure: float = 1.0,
        noise_sigma: float = 0.0,
        seed: int = 0,
    ):
        if exposure <= 0:
            raise ValueError(f"exposure must be positive, got {exposure}")
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        self.response = response if response is not None else SRGBLikeResponse()
        self.exposure = float(exposure)
        self.noise_sigma = float(noise_sigma)
        self._rng = np.random.default_rng(seed)

    def snapshot(self, perceived: np.ndarray) -> np.ndarray:
        """Photograph a perceived-intensity map.

        Parameters
        ----------
        perceived:
            Normalized screen intensity (output of
            :func:`repro.display.rendering.render_frame`).

        Returns
        -------
        numpy.ndarray
            ``uint8`` grayscale photograph, same shape as the input.
        """
        radiance = np.clip(np.asarray(perceived, dtype=np.float64) * self.exposure, 0.0, 1.0)
        value = self.response.apply(radiance)
        if self.noise_sigma > 0:
            value = value + self._rng.normal(0.0, self.noise_sigma, size=value.shape)
        return np.round(np.clip(value, 0.0, 1.0) * 255).astype(np.uint8)

    def estimate_radiance(self, photo: np.ndarray) -> np.ndarray:
        """Invert a photograph back to (exposure-relative) scene radiance.

        This is the known-response reduction of the Debevec-Malik
        recovery: with a single exposure and a calibrated curve, radiance
        is simply the inverse response divided by the exposure gain.
        """
        values = np.asarray(photo, dtype=np.float64) / 255.0
        return self.response.invert(values) / self.exposure

    def __repr__(self) -> str:
        return (
            f"DigitalCamera(response={self.response!r}, exposure={self.exposure:g}, "
            f"noise_sigma={self.noise_sigma:g})"
        )
