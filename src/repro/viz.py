"""Terminal visualization helpers.

Text renderings of the series the paper plots — sparklines for per-frame
traces (Figure 6), bars for savings tables (Figures 9/10) and histogram
sketches (Figures 3-5) — so examples and the CLI can show shapes without a
plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

#: Eight-level block characters, darkest to brightest.
_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float = None, hi: float = None) -> str:
    """One-line block-character plot of a series.

    Parameters
    ----------
    values:
        The series; NaNs render as spaces.
    lo, hi:
        Explicit scale bounds; default to the finite min/max of the data.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("sparkline needs a non-empty 1-D series")
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return " " * arr.size
    lo = float(finite.min()) if lo is None else float(lo)
    hi = float(finite.max()) if hi is None else float(hi)
    if hi <= lo:
        return _SPARK_CHARS[-1] * arr.size
    steps = len(_SPARK_CHARS) - 1
    out = []
    for v in arr:
        if not np.isfinite(v):
            out.append(" ")
            continue
        frac = (min(max(v, lo), hi) - lo) / (hi - lo)
        out.append(_SPARK_CHARS[1 + int(round(frac * (steps - 1)))])
    return "".join(out)


def bar(value: float, width: int = 30, lo: float = 0.0, hi: float = 1.0) -> str:
    """A horizontal bar of ``width`` cells filled to ``value``."""
    if width < 1:
        raise ValueError("width must be >= 1")
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    frac = (min(max(value, lo), hi) - lo) / (hi - lo)
    filled = int(round(frac * width))
    return "#" * filled + "." * (width - filled)


def series_table(series: Mapping[str, Sequence[float]], width: int = 48) -> str:
    """Named sparklines, label-aligned, sharing one vertical scale."""
    if not series:
        raise ValueError("need at least one series")
    all_values = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    finite = all_values[np.isfinite(all_values)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 1.0
    label_width = max(len(name) for name in series)
    lines = []
    for name, values in series.items():
        arr = np.asarray(values, dtype=np.float64)
        if arr.size > width:  # decimate long traces to the display width
            idx = np.linspace(0, arr.size - 1, width).round().astype(int)
            arr = arr[idx]
        lines.append(f"{name:<{label_width}} |{sparkline(arr, lo=lo, hi=hi)}|")
    lines.append(f"{'':<{label_width}}  scale [{lo:.3g}, {hi:.3g}]")
    return "\n".join(lines)


def histogram_sketch(counts: Sequence[float], height: int = 8, width: int = 64) -> str:
    """Multi-line sketch of a histogram (Figure 3/5 style)."""
    if height < 1 or width < 1:
        raise ValueError("height and width must be >= 1")
    arr = np.asarray(counts, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("histogram_sketch needs a non-empty 1-D array")
    # Re-bin to the display width.
    edges = np.linspace(0, arr.size, width + 1).astype(int)
    binned = np.array([arr[a:b].sum() for a, b in zip(edges[:-1], edges[1:])])
    peak = binned.max()
    if peak <= 0:
        return "\n".join("." * width for _ in range(height))
    rows = []
    for level in range(height, 0, -1):
        threshold = peak * (level - 0.5) / height
        rows.append("".join("#" if v >= threshold else " " for v in binned))
    rows.append("-" * width)
    return "\n".join(rows)
