"""Device profiles for the three PDAs used in the paper's experiments.

Section 5: "Three devices with different LCD technology were used in our
experiments: iPAQ 3650 and Zaurus SL-5600 (reflective display, CCFL
backlight) and iPAQ 5555 (transflective display, LED backlight)."  Each
device "showed a different transfer characteristic", which is why the
annotation scheme keeps the display properties in the loop and computes
device-specific backlight levels.

Power budget figures are sized so the backlight is 25-30 % of total device
power during playback (Section 4's opening claim), which in turn makes the
Figure 10 whole-device savings land in the paper's 15-20 % band when the
backlight saves ~65 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .backlight import BacklightModel, ccfl_backlight, led_backlight
from .panel import Panel, reflective_panel, transflective_panel
from .transfer import (
    BacklightTransfer,
    DisplayTransfer,
    GammaBacklightTransfer,
    SaturatingBacklightTransfer,
    WhiteTransfer,
)


@dataclass(frozen=True)
class PowerBudget:
    """Non-display component power during video playback (watts).

    ``cpu_idle_w``/``cpu_active_w`` bound the CPU draw as the decoder load
    moves between 0 and 1; the network figures do the same for the WLAN
    receive duty cycle.
    """

    base_w: float
    cpu_idle_w: float
    cpu_active_w: float
    network_idle_w: float
    network_active_w: float

    def __post_init__(self):
        values = (
            self.base_w,
            self.cpu_idle_w,
            self.cpu_active_w,
            self.network_idle_w,
            self.network_active_w,
        )
        if any(v < 0 for v in values):
            raise ValueError("power budget entries must be non-negative")
        if self.cpu_active_w < self.cpu_idle_w:
            raise ValueError("cpu_active_w must be >= cpu_idle_w")
        if self.network_active_w < self.network_idle_w:
            raise ValueError("network_active_w must be >= network_idle_w")


@dataclass(frozen=True)
class DeviceProfile:
    """Everything the pipeline needs to know about one handheld.

    The profile bundles the optical model (panel + transfer functions),
    the electrical model (backlight + power budget) and identification used
    during session negotiation.
    """

    name: str
    panel: Panel
    backlight: BacklightModel
    transfer: DisplayTransfer
    power: PowerBudget

    @property
    def backlight_transfer(self) -> BacklightTransfer:
        return self.transfer.backlight

    def max_total_power_w(self) -> float:
        """Worst-case playback power: everything active, full backlight."""
        return (
            self.power.base_w
            + self.power.cpu_active_w
            + self.power.network_active_w
            + self.panel.power_w
            + self.backlight.power_max_w
        )

    def backlight_share(self) -> float:
        """Backlight fraction of worst-case playback power (~0.25-0.30)."""
        return self.backlight.power_max_w / self.max_total_power_w()


def ipaq_5555() -> DeviceProfile:
    """HP iPAQ h5555: transflective panel, white-LED backlight, XScale 400.

    The measurement platform of Section 5.1.  Its measured luminance is
    "almost linear with the luminance of the image" (white gamma 1.0) "but
    not linear with the backlight level" (saturating LED curve).
    """
    return DeviceProfile(
        name="ipaq5555",
        panel=transflective_panel(),
        backlight=led_backlight(power_max_w=1.1, driver_floor_w=0.02),
        transfer=DisplayTransfer(
            SaturatingBacklightTransfer(knee=1.6),
            WhiteTransfer(gamma=1.0),
        ),
        power=PowerBudget(
            base_w=0.70,
            cpu_idle_w=0.15,
            cpu_active_w=0.75,
            network_idle_w=0.05,
            network_active_w=0.70,
        ),
    )


def ipaq_3650() -> DeviceProfile:
    """Compaq iPAQ 3650: reflective panel, CCFL side-light, StrongARM 206."""
    return DeviceProfile(
        name="ipaq3650",
        panel=reflective_panel(),
        backlight=ccfl_backlight(power_max_w=1.3, inverter_floor_w=0.22),
        transfer=DisplayTransfer(
            GammaBacklightTransfer(gamma=1.45),
            WhiteTransfer(gamma=1.1),
        ),
        power=PowerBudget(
            base_w=0.65,
            cpu_idle_w=0.12,
            cpu_active_w=0.60,
            network_idle_w=0.05,
            network_active_w=0.75,
        ),
    )


def zaurus_sl5600() -> DeviceProfile:
    """Sharp Zaurus SL-5600: reflective panel, CCFL front-light."""
    return DeviceProfile(
        name="zaurus_sl5600",
        panel=reflective_panel(transmittance=0.05, reflectance=0.10),
        backlight=ccfl_backlight(power_max_w=1.2, inverter_floor_w=0.20),
        transfer=DisplayTransfer(
            SaturatingBacklightTransfer(knee=2.6),
            WhiteTransfer(gamma=1.05),
        ),
        power=PowerBudget(
            base_w=0.68,
            cpu_idle_w=0.14,
            cpu_active_w=0.70,
            network_idle_w=0.05,
            network_active_w=0.72,
        ),
    )


#: Registry used by session negotiation (clients identify by name).
DEVICE_REGISTRY: Dict[str, object] = {
    "ipaq5555": ipaq_5555,
    "ipaq3650": ipaq_3650,
    "zaurus_sl5600": zaurus_sl5600,
}


def get_device(name: str) -> DeviceProfile:
    """Look up a device profile by registry name."""
    try:
        factory = DEVICE_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; known devices: {', '.join(sorted(DEVICE_REGISTRY))}"
        ) from None
    return factory()


def all_devices():
    """Instantiate every registered device profile."""
    return [factory() for factory in DEVICE_REGISTRY.values()]
