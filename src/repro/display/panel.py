"""LCD panel models.

Section 4.1: "LCD displays are of three types: reflective, transmissive and
transflective.  Most recent handhelds use transflective displays, which
perform best both indoors (low light) and outdoors (in sunlight)."

The panel determines how backlight luminance and ambient light combine into
the light reaching the viewer: the perceived intensity of a pixel is
``I = rho * L * Y`` (transmitted path) plus, for reflective/transflective
panels, a reflected ambient contribution ``r_amb * E_amb * Y``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


class PanelType(enum.Enum):
    """LCD construction type."""

    REFLECTIVE = "reflective"
    TRANSMISSIVE = "transmissive"
    TRANSFLECTIVE = "transflective"


@dataclass(frozen=True)
class Panel:
    """Optical model of an LCD panel.

    Attributes
    ----------
    panel_type:
        Construction type; reflective panels have zero transmitted path in
        this model only if ``transmittance`` is set to 0.
    transmittance:
        ``rho`` in ``I = rho * L * Y`` — fraction of backlight luminance
        that makes it through the stack for a fully open pixel.
    reflectance:
        Fraction of ambient illuminance returned through the pixel
        (transflective/reflective path); 0 for purely transmissive panels.
    resolution:
        ``(width, height)`` native pixels.
    power_w:
        Panel drive electronics power (excludes the backlight), roughly
        constant with content per Section 5's measurements.
    """

    panel_type: PanelType
    transmittance: float
    reflectance: float
    resolution: tuple
    power_w: float

    def __post_init__(self):
        if not 0.0 < self.transmittance <= 1.0:
            raise ValueError(f"transmittance must be in (0, 1], got {self.transmittance}")
        if not 0.0 <= self.reflectance <= 1.0:
            raise ValueError(f"reflectance must be in [0, 1], got {self.reflectance}")
        if self.power_w < 0:
            raise ValueError("panel power must be non-negative")

    def perceived_intensity(
        self,
        backlight_luminance: ArrayLike,
        pixel_luminance: ArrayLike,
        ambient: float = 0.0,
    ) -> np.ndarray:
        """Light reaching the viewer, normalized units.

        ``backlight_luminance`` is the relative backlight output ``L`` (1.0
        at full backlight), ``pixel_luminance`` is the displayed image's
        ``Y`` in [0, 1] and ``ambient`` is ambient illuminance expressed in
        the same normalized luminance units.
        """
        if ambient < 0:
            raise ValueError("ambient illuminance must be non-negative")
        transmitted = self.transmittance * np.asarray(backlight_luminance) * np.asarray(
            pixel_luminance
        )
        reflected = self.reflectance * ambient * np.asarray(pixel_luminance)
        return transmitted + reflected


def transflective_panel(
    resolution: tuple = (240, 320), transmittance: float = 0.065, reflectance: float = 0.04,
    power_w: float = 0.25,
) -> Panel:
    """A transflective panel (iPAQ 5555 class)."""
    return Panel(PanelType.TRANSFLECTIVE, transmittance, reflectance, resolution, power_w)


def reflective_panel(
    resolution: tuple = (240, 320), transmittance: float = 0.045, reflectance: float = 0.12,
    power_w: float = 0.22,
) -> Panel:
    """A reflective panel with side-lit CCFL (iPAQ 3650 / Zaurus class)."""
    return Panel(PanelType.REFLECTIVE, transmittance, reflectance, resolution, power_w)


def transmissive_panel(
    resolution: tuple = (240, 320), transmittance: float = 0.08, power_w: float = 0.3
) -> Panel:
    """A purely transmissive panel (laptop class)."""
    return Panel(PanelType.TRANSMISSIVE, transmittance, 0.0, resolution, power_w)
