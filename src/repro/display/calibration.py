"""Display characterization via camera sweeps (Section 5, Figures 7-8).

"We start by first characterizing the display and backlight of our PDAs.
This is performed by displaying images of different solid gray levels on
the handhelds and capturing snapshots of the screen with a digital camera."

Two sweeps are implemented:

* :func:`measure_backlight_transfer` — full-white pattern, backlight swept
  over its range (Figure 7).  Produces a
  :class:`~repro.display.transfer.TabulatedBacklightTransfer` usable by the
  annotation pipeline, closing the loop the paper describes: "Our scheme
  allows us to tailor the technique to each PDA ... by including the
  display properties in the loop."
* :func:`measure_white_transfer` — backlight fixed, gray level swept
  (Figure 8).

Camera photographs are linearized through the camera's (known) inverse
response before building the tables, mirroring the Debevec-Malik recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..camera.camera import DigitalCamera
from .devices import DeviceProfile
from .rendering import render_solid_gray
from .transfer import MAX_BACKLIGHT_LEVEL, TabulatedBacklightTransfer

#: Default sweep: 16 evenly spaced levels plus the endpoints.
DEFAULT_SWEEP_LEVELS = tuple(range(0, MAX_BACKLIGHT_LEVEL + 1, 17))


@dataclass(frozen=True)
class SweepSample:
    """One calibration measurement point."""

    level: int
    measured_brightness: float


def _photograph_patch(
    device: DeviceProfile,
    camera: DigitalCamera,
    gray_level: int,
    backlight_level: int,
    ambient: float,
) -> float:
    """Photograph a solid patch and return its mean linearized radiance."""
    perceived = render_solid_gray(gray_level, backlight_level, device, ambient=ambient)
    photo = camera.snapshot(perceived)
    return float(camera.estimate_radiance(photo).mean())


def measure_backlight_transfer(
    device: DeviceProfile,
    camera: DigitalCamera,
    levels: Sequence[int] = DEFAULT_SWEEP_LEVELS,
    ambient: float = 0.0,
) -> TabulatedBacklightTransfer:
    """Calibrate luminance-vs-backlight from a white-pattern sweep (Fig 7).

    Returns a tabulated transfer normalized to the brightest sample, ready
    to be plugged into a :class:`~repro.display.transfer.DisplayTransfer`.
    """
    levels = sorted(set(int(l) for l in levels))
    if len(levels) < 2:
        raise ValueError("need at least two sweep levels")
    if levels[-1] != MAX_BACKLIGHT_LEVEL:
        levels.append(MAX_BACKLIGHT_LEVEL)
    samples = [
        _photograph_patch(device, camera, gray_level=255, backlight_level=lv, ambient=ambient)
        for lv in levels
    ]
    # Photographic noise can produce tiny non-monotonicities; a running max
    # keeps the table valid without biasing the curve.
    brightness = np.maximum.accumulate(np.asarray(samples, dtype=np.float64))
    return TabulatedBacklightTransfer(levels, brightness)


def measure_white_transfer(
    device: DeviceProfile,
    camera: DigitalCamera,
    backlight_level: int = MAX_BACKLIGHT_LEVEL,
    gray_levels: Sequence[int] = tuple(range(0, 256, 17)),
    ambient: float = 0.0,
) -> list:
    """Sweep the displayed white level at fixed backlight (Fig 8).

    Returns a list of :class:`SweepSample` (gray level, measured
    brightness).  The samples are what Figure 8 plots for backlight 255 and
    128; fitting a gamma to them is left to the caller (see the
    calibration example).
    """
    samples = []
    for gl in gray_levels:
        measured = _photograph_patch(
            device, camera, gray_level=int(gl), backlight_level=backlight_level,
            ambient=ambient,
        )
        samples.append(SweepSample(level=int(gl), measured_brightness=measured))
    return samples


def fit_white_gamma(samples: Sequence[SweepSample]) -> float:
    """Least-squares gamma fit of a white-level sweep.

    Fits ``brightness = peak * (level/255) ** gamma`` in log space over the
    non-dark samples and returns the estimated gamma ("almost linear" shows
    up as a value near 1.0 for the iPAQ 5555).
    """
    levels = np.array([s.level for s in samples], dtype=np.float64)
    brightness = np.array([s.measured_brightness for s in samples], dtype=np.float64)
    mask = (levels > 0) & (brightness > 0)
    if mask.sum() < 2:
        raise ValueError("not enough usable samples to fit a gamma")
    x = np.log(levels[mask] / 255.0)
    peak = brightness[levels == levels.max()]
    y = np.log(brightness[mask] / float(peak[-1]))
    # Slope of y = gamma * x through the origin.
    gamma = float(np.dot(x, y) / np.dot(x, x))
    if gamma <= 0:
        raise ValueError(f"fitted non-physical gamma {gamma}")
    return gamma
