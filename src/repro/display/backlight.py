"""Backlight hardware models: CCFL tubes and white LEDs.

The paper contrasts the two technologies (Section 2): CCFL needs a
high-voltage AC inverter — which burns power even at low levels and
responds slowly — while white LEDs "have simpler drive circuitry, while
offering longer life and lower power consumption with a faster response
time".  Section 5 measures LCD power to be "almost proportional to
backlight level, but little dependent of pixel values", which is the affine
power model below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from .transfer import MAX_BACKLIGHT_LEVEL

ArrayLike = Union[int, float, np.ndarray]


@dataclass(frozen=True)
class BacklightModel:
    """Electrical model of one backlight unit.

    Attributes
    ----------
    kind:
        ``"CCFL"`` or ``"LED"`` — informational, but CCFL models should
        carry a substantial ``power_floor_w`` (inverter overhead).
    power_max_w:
        Power drawn at level 255.
    power_floor_w:
        Power drawn at level 0 (driver/inverter overhead; the lamp itself
        is off).
    response_time_ms:
        Time for the emitted luminance to settle after a level change.
        CCFL tubes are tens of milliseconds; LEDs are near-instant.  The
        backlight controller refuses switch intervals shorter than this.
    """

    kind: str
    power_max_w: float
    power_floor_w: float = 0.0
    response_time_ms: float = 1.0

    def __post_init__(self):
        if self.power_max_w <= 0:
            raise ValueError(f"power_max_w must be positive, got {self.power_max_w}")
        if not 0 <= self.power_floor_w < self.power_max_w:
            raise ValueError(
                f"power_floor_w must be in [0, power_max_w), got {self.power_floor_w}"
            )
        if self.response_time_ms < 0:
            raise ValueError("response_time_ms must be non-negative")

    # ------------------------------------------------------------------
    def power(self, level: ArrayLike) -> np.ndarray:
        """Power (W) at the given backlight level(s): affine in level."""
        lev = np.asarray(level, dtype=np.float64)
        if np.any(lev < 0) or np.any(lev > MAX_BACKLIGHT_LEVEL):
            raise ValueError(f"backlight level out of range [0, {MAX_BACKLIGHT_LEVEL}]")
        frac = lev / MAX_BACKLIGHT_LEVEL
        return self.power_floor_w + (self.power_max_w - self.power_floor_w) * frac

    def savings_fraction(self, level: ArrayLike) -> np.ndarray:
        """Backlight power saved at ``level`` relative to full backlight."""
        full = self.power(MAX_BACKLIGHT_LEVEL)
        return (full - self.power(level)) / full


def ccfl_backlight(power_max_w: float = 1.5, inverter_floor_w: float = 0.25) -> BacklightModel:
    """A CCFL tube + inverter, as in the iPAQ 3650 / Zaurus SL-5600."""
    return BacklightModel(
        kind="CCFL",
        power_max_w=power_max_w,
        power_floor_w=inverter_floor_w,
        response_time_ms=40.0,
    )


def led_backlight(power_max_w: float = 1.1, driver_floor_w: float = 0.02) -> BacklightModel:
    """A white-LED backlight, as in the iPAQ 5555."""
    return BacklightModel(
        kind="LED",
        power_max_w=power_max_w,
        power_floor_w=driver_floor_w,
        response_time_ms=1.0,
    )
