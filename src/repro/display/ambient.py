"""Ambient-aware backlight computation for transflective panels.

Section 4.1 notes that "most recent handhelds use transflective displays,
which perform best both indoors (low light) and outdoors (in sunlight)" —
because ambient light reflected through the panel adds to the transmitted
backlight.  The annotation scheme as evaluated assumes a dark room; this
module extends the binding step to exploit the reflective path: in bright
surroundings part of the target luminance arrives for free, so the same
scene needs a lower backlight level.

Physics: perceived intensity with ambient ``E`` is
``I = (rho*B(l) + r*E) * W(Y)`` (transmitted + reflected, both modulated
by the pixel).  Preserving the full-backlight reference
``(rho + r*E) * W(Y)`` for the scene's effective maximum requires

    rho*B(l) + r*E >= (rho + r*E) * W(Y_eff)

which, since ``W(Y_eff) <= 1``, is always weaker than the dark-room
condition ``B(l) >= W(Y_eff)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

import numpy as np

from .devices import DeviceProfile
from .transfer import MAX_BACKLIGHT_LEVEL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports display)
    from ..core.annotation import AnnotationTrack, DeviceAnnotationTrack


@dataclass(frozen=True)
class AmbientCondition:
    """A viewing environment.

    ``illuminance`` is in the same normalized units as relative backlight
    luminance: 1.0 means the panel's reflected full-white is as bright as
    its transmitted full-white at maximum backlight.
    """

    name: str
    illuminance: float

    def __post_init__(self):
        if self.illuminance < 0:
            raise ValueError("illuminance must be non-negative")


DARK_ROOM = AmbientCondition("dark-room", 0.0)
LIVING_ROOM = AmbientCondition("living-room", 0.05)
OFFICE = AmbientCondition("office", 0.2)
OUTDOOR_SHADE = AmbientCondition("outdoor-shade", 0.8)
DIRECT_SUN = AmbientCondition("direct-sun", 3.0)

#: All presets, dimmest first.
AMBIENT_PRESETS = (DARK_ROOM, LIVING_ROOM, OFFICE, OUTDOOR_SHADE, DIRECT_SUN)


def ambient_level_for_scene(
    device: DeviceProfile, effective_max: float, ambient: AmbientCondition
) -> int:
    """Smallest backlight level preserving perceived intensity in ambient.

    Reduces exactly to ``DisplayTransfer.level_for_scene`` in a dark room.
    """
    if not 0.0 <= effective_max <= 1.0 + 1e-9:
        raise ValueError(f"effective max must be in [0, 1], got {effective_max}")
    panel = device.panel
    transfer = device.transfer
    w = float(transfer.white.luminance(min(effective_max, 1.0)))
    reflected = panel.reflectance * ambient.illuminance / panel.transmittance
    # rho*B + r*E >= (rho + r*E) * W  =>  B >= W + (r*E/rho)*(W - 1)
    required = w + reflected * (w - 1.0)
    return transfer.backlight.level_for_luminance(max(required, 0.0))


def ambient_compensation_gain(
    device: DeviceProfile, level: int, ambient: AmbientCondition
) -> float:
    """Pixel gain restoring perceived intensity at ``level`` in ambient.

    Solves ``(rho*B(l) + r*E) * W(kY) = (rho + r*E) * W(Y)`` for the
    power-law white transfer.
    """
    if not 0 <= level <= MAX_BACKLIGHT_LEVEL:
        raise ValueError(f"backlight level out of range: {level}")
    panel = device.panel
    transfer = device.transfer
    bl = float(np.asarray(transfer.backlight.luminance(level)))
    reflected = panel.reflectance * ambient.illuminance / panel.transmittance
    available = bl + reflected
    target = 1.0 + reflected
    if available <= 0:
        raise ValueError("no light available at this level and ambient")
    ratio = target / available
    return max(ratio ** (1.0 / transfer.white.gamma), 1.0)


def bind_with_ambient(
    track: "AnnotationTrack", device: DeviceProfile, ambient: AmbientCondition
) -> "DeviceAnnotationTrack":
    """Ambient-aware version of :meth:`AnnotationTrack.bind`.

    With ``DARK_ROOM`` the result equals the standard binding.  Brighter
    environments yield lower levels for the same scenes.
    """
    # Imported here: the core package imports display, so the dependency
    # must stay one-way at import time.
    from ..core.annotation import DeviceAnnotationTrack, DeviceSceneAnnotation

    scenes: List[DeviceSceneAnnotation] = []
    for scene in track.scenes:
        level = ambient_level_for_scene(device, scene.effective_max_luminance, ambient)
        gain = ambient_compensation_gain(device, level, ambient) if (
            level > 0 or ambient.illuminance > 0
        ) else 1.0
        scenes.append(
            DeviceSceneAnnotation(
                start=scene.start,
                end=scene.end,
                backlight_level=level,
                compensation_gain=gain,
            )
        )
    return DeviceAnnotationTrack(
        clip_name=track.clip_name,
        device_name=device.name,
        frame_count=track.frame_count,
        fps=track.fps,
        quality=track.quality,
        scenes=scenes,
    )
