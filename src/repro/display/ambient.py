"""Ambient-aware backlight computation for transflective panels.

Section 4.1 notes that "most recent handhelds use transflective displays,
which perform best both indoors (low light) and outdoors (in sunlight)" —
because ambient light reflected through the panel adds to the transmitted
backlight.  The annotation scheme as evaluated assumes a dark room; this
module extends the binding step to exploit the reflective path: in bright
surroundings part of the target luminance arrives for free, so the same
scene needs a lower backlight level.

Physics: perceived intensity with ambient ``E`` is
``I = (rho*B(l) + r*E) * W(Y)`` (transmitted + reflected, both modulated
by the pixel).  Preserving the full-backlight reference
``(rho + r*E) * W(Y)`` for the scene's effective maximum requires

    rho*B(l) + r*E >= (rho + r*E) * W(Y_eff)

which, since ``W(Y_eff) <= 1``, is always weaker than the dark-room
condition ``B(l) >= W(Y_eff)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple, Union

import numpy as np

from .devices import DeviceProfile
from .transfer import MAX_BACKLIGHT_LEVEL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports display)
    from ..core.annotation import AnnotationTrack, DeviceAnnotationTrack


@dataclass(frozen=True)
class AmbientCondition:
    """A viewing environment.

    ``illuminance`` is in the same normalized units as relative backlight
    luminance: 1.0 means the panel's reflected full-white is as bright as
    its transmitted full-white at maximum backlight.
    """

    name: str
    illuminance: float

    def __post_init__(self):
        if self.illuminance < 0:
            raise ValueError("illuminance must be non-negative")


DARK_ROOM = AmbientCondition("dark-room", 0.0)
LIVING_ROOM = AmbientCondition("living-room", 0.05)
OFFICE = AmbientCondition("office", 0.2)
OUTDOOR_SHADE = AmbientCondition("outdoor-shade", 0.8)
DIRECT_SUN = AmbientCondition("direct-sun", 3.0)

#: All presets, dimmest first.
AMBIENT_PRESETS = (DARK_ROOM, LIVING_ROOM, OFFICE, OUTDOOR_SHADE, DIRECT_SUN)

#: Preset lookup by name (``parse_ambient`` accepts these or a number).
AMBIENT_BY_NAME = {preset.name: preset for preset in AMBIENT_PRESETS}


def parse_ambient(spec: Union[str, float, "AmbientCondition"]) -> AmbientCondition:
    """Resolve an ambient spec to an :class:`AmbientCondition`.

    Accepts a preset name (``"office"``), a numeric illuminance (string
    or float, in normalized units), or an existing condition (returned
    as-is).  This is the parse behind every CLI/config ambient knob.
    """
    if isinstance(spec, AmbientCondition):
        return spec
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        return AmbientCondition(f"ambient-{float(spec):g}", float(spec))
    name = str(spec).strip().lower()
    if name in AMBIENT_BY_NAME:
        return AMBIENT_BY_NAME[name]
    try:
        value = float(name)
    except ValueError:
        known = ", ".join(sorted(AMBIENT_BY_NAME))
        raise ValueError(
            f"unknown ambient {spec!r}: expected one of [{known}] "
            f"or a numeric illuminance"
        ) from None
    return AmbientCondition(f"ambient-{value:g}", value)


@dataclass(frozen=True)
class AmbientTrace:
    """A simulated light-sensor trace: ambient conditions over time.

    ``steps`` is a sorted tuple of ``(time_s, condition)`` pairs; the
    condition at time ``t`` is the last step at or before ``t`` (step
    function, held forever after the final step).  Serve-time per-scene
    ambient binding looks the trace up at each scene's start time.
    """

    steps: Tuple[Tuple[float, AmbientCondition], ...]

    def __post_init__(self):
        if not self.steps:
            raise ValueError("an ambient trace needs at least one step")
        times = [t for t, _ in self.steps]
        if times[0] < 0:
            raise ValueError("trace times must be non-negative")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("trace times must be strictly increasing")

    @classmethod
    def constant(cls, ambient: Union[str, float, AmbientCondition]) -> "AmbientTrace":
        """A trace that holds one condition for the whole session."""
        return cls(steps=((0.0, parse_ambient(ambient)),))

    @classmethod
    def parse(cls, spec: str) -> "AmbientTrace":
        """Parse ``"t:ambient,t:ambient,..."`` (or a bare ambient spec).

        Each ``ambient`` is a preset name or numeric illuminance; times
        are seconds.  ``"office"`` alone means a constant trace.
        """
        text = str(spec).strip()
        if not text:
            raise ValueError("empty ambient trace spec")
        if ":" not in text:
            return cls.constant(text)
        steps = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            time_text, _, ambient_text = part.partition(":")
            try:
                t = float(time_text)
            except ValueError:
                raise ValueError(
                    f"bad trace step {part!r}: time must be numeric"
                ) from None
            steps.append((t, parse_ambient(ambient_text)))
        if not steps:
            raise ValueError(f"no steps in ambient trace spec {spec!r}")
        steps.sort(key=lambda step: step[0])
        if steps[0][0] > 0:
            # Hold the first condition from t=0 so every lookup resolves.
            steps.insert(0, (0.0, steps[0][1]))
            if steps[1][0] == 0.0:
                steps.pop(0)
        return cls(steps=tuple(steps))

    def condition_at(self, time_s: float) -> AmbientCondition:
        """The ambient condition in effect at ``time_s``."""
        if time_s < 0:
            raise ValueError(f"time must be non-negative, got {time_s}")
        current = self.steps[0][1]
        for t, condition in self.steps:
            if t > time_s:
                break
            current = condition
        return current

    def conditions(self) -> Sequence[AmbientCondition]:
        """Every condition in step order (for display/debug)."""
        return tuple(condition for _, condition in self.steps)


def as_ambient_trace(spec) -> "AmbientTrace":
    """Normalize any ambient spec to an :class:`AmbientTrace`.

    Accepts an existing trace (returned as-is), an
    :class:`AmbientCondition` or numeric illuminance (constant trace),
    or a string — either a bare ambient spec or a full
    ``"t:ambient,..."`` trace spec.
    """
    if isinstance(spec, AmbientTrace):
        return spec
    if isinstance(spec, AmbientCondition):
        return AmbientTrace.constant(spec)
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        return AmbientTrace.constant(float(spec))
    return AmbientTrace.parse(str(spec))


def ambient_level_for_scene(
    device: DeviceProfile, effective_max: float, ambient: AmbientCondition
) -> int:
    """Smallest backlight level preserving perceived intensity in ambient.

    Reduces exactly to ``DisplayTransfer.level_for_scene`` in a dark room.
    """
    if not 0.0 <= effective_max <= 1.0 + 1e-9:
        raise ValueError(f"effective max must be in [0, 1], got {effective_max}")
    panel = device.panel
    transfer = device.transfer
    w = float(transfer.white.luminance(min(effective_max, 1.0)))
    reflected = panel.reflectance * ambient.illuminance / panel.transmittance
    # rho*B + r*E >= (rho + r*E) * W  =>  B >= W + (r*E/rho)*(W - 1)
    required = w + reflected * (w - 1.0)
    return transfer.backlight.level_for_luminance(max(required, 0.0))


def ambient_compensation_gain(
    device: DeviceProfile, level: int, ambient: AmbientCondition
) -> float:
    """Pixel gain restoring perceived intensity at ``level`` in ambient.

    Solves ``(rho*B(l) + r*E) * W(kY) = (rho + r*E) * W(Y)`` for the
    power-law white transfer.
    """
    if not 0 <= level <= MAX_BACKLIGHT_LEVEL:
        raise ValueError(f"backlight level out of range: {level}")
    panel = device.panel
    transfer = device.transfer
    bl = float(np.asarray(transfer.backlight.luminance(level)))
    reflected = panel.reflectance * ambient.illuminance / panel.transmittance
    available = bl + reflected
    target = 1.0 + reflected
    if available <= 0:
        raise ValueError("no light available at this level and ambient")
    ratio = target / available
    return max(ratio ** (1.0 / transfer.white.gamma), 1.0)


def bind_with_ambient(
    track: "AnnotationTrack", device: DeviceProfile, ambient: AmbientCondition
) -> "DeviceAnnotationTrack":
    """Ambient-aware version of :meth:`AnnotationTrack.bind`.

    With ``DARK_ROOM`` the result equals the standard binding.  Brighter
    environments yield lower levels for the same scenes.
    """
    # Imported here: the core package imports display, so the dependency
    # must stay one-way at import time.
    from ..core.annotation import DeviceAnnotationTrack, DeviceSceneAnnotation

    scenes: List[DeviceSceneAnnotation] = []
    for scene in track.scenes:
        level = ambient_level_for_scene(device, scene.effective_max_luminance, ambient)
        gain = ambient_compensation_gain(device, level, ambient) if (
            level > 0 or ambient.illuminance > 0
        ) else 1.0
        scenes.append(
            DeviceSceneAnnotation(
                start=scene.start,
                end=scene.end,
                backlight_level=level,
                compensation_gain=gain,
            )
        )
    return DeviceAnnotationTrack(
        clip_name=track.clip_name,
        device_name=device.name,
        frame_count=track.frame_count,
        fps=track.fps,
        quality=track.quality,
        scenes=scenes,
    )


def bind_with_ambient_trace(
    track: "AnnotationTrack",
    device: DeviceProfile,
    trace: AmbientTrace,
    fps: float = 0.0,
) -> "DeviceAnnotationTrack":
    """Bind a track with a *per-scene* ambient lookup from a sensor trace.

    This is the serve-time form of :func:`bind_with_ambient`: instead of
    one ambient for the whole clip, each scene is bound under the trace's
    condition at the scene's start time (``scene.start / fps`` seconds).
    A constant trace is bit-identical to :func:`bind_with_ambient` with
    that condition — the per-scene loop runs the exact same level/gain
    computations in the same order (pinned by hypothesis tests).
    """
    from ..core.annotation import DeviceAnnotationTrack, DeviceSceneAnnotation

    rate = float(fps) if fps else float(track.fps)
    if rate <= 0:
        raise ValueError(f"fps must be positive to time the trace, got {rate}")
    scenes: List[DeviceSceneAnnotation] = []
    for scene in track.scenes:
        ambient = trace.condition_at(scene.start / rate)
        level = ambient_level_for_scene(device, scene.effective_max_luminance, ambient)
        gain = ambient_compensation_gain(device, level, ambient) if (
            level > 0 or ambient.illuminance > 0
        ) else 1.0
        scenes.append(
            DeviceSceneAnnotation(
                start=scene.start,
                end=scene.end,
                backlight_level=level,
                compensation_gain=gain,
            )
        )
    return DeviceAnnotationTrack(
        clip_name=track.clip_name,
        device_name=device.name,
        frame_count=track.frame_count,
        fps=track.fps,
        quality=track.quality,
        scenes=scenes,
    )
