"""Backlight and pixel transfer functions.

Section 5 of the paper characterizes each PDA display by two measured
curves:

* **Figure 7** — screen brightness versus *backlight level* with a full
  white image.  This curve is *not* linear and differs per display
  technology; it is "essential in order to minimize the degradation
  introduced by the compensation scheme".
* **Figure 8** — screen brightness versus *white level* (pixel value) at a
  fixed backlight.  For the iPAQ 5555 this is "almost linear with the
  luminance of the image".

This module models both directions.  All luminances are normalized: a full
white pixel at maximum backlight has relative luminance 1.0.  The key
operation for the annotation pipeline is the inverse lookup
:meth:`BacklightTransfer.level_for_luminance`: the *smallest* hardware
backlight level (0-255) whose luminance reaches a target — smaller level
means lower power, and rounding must never round *down* or compensated
highlights would dim visibly.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np

#: Number of discrete backlight steps exposed by the hardware register.
MAX_BACKLIGHT_LEVEL = 255

ArrayLike = Union[float, Sequence[float], np.ndarray]


class BacklightTransfer:
    """Maps a backlight level (0-255) to relative screen luminance [0, 1].

    Subclasses implement :meth:`luminance`; the generic inverse below works
    for any monotone non-decreasing transfer.
    """

    def luminance(self, level: ArrayLike) -> np.ndarray:
        """Relative luminance of full white at backlight ``level``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _normalized(self, level: ArrayLike) -> np.ndarray:
        lev = np.asarray(level, dtype=np.float64)
        if np.any(lev < 0) or np.any(lev > MAX_BACKLIGHT_LEVEL):
            raise ValueError(
                f"backlight level out of range [0, {MAX_BACKLIGHT_LEVEL}]"
            )
        return lev / MAX_BACKLIGHT_LEVEL

    def table(self) -> np.ndarray:
        """Luminance at every integer backlight level (length 256)."""
        return np.atleast_1d(self.luminance(np.arange(MAX_BACKLIGHT_LEVEL + 1)))

    def level_for_luminance(self, target: float) -> int:
        """Smallest integer level whose luminance is >= ``target``.

        ``target`` above the achievable maximum saturates to level 255.
        This is the "simple multiplication, followed by a table look-up"
        the client performs at runtime (Section 4.3).
        """
        if target <= 0.0:
            return 0
        tab = self.table()
        reached = np.nonzero(tab >= min(target, tab[-1]))[0]
        if reached.size == 0:
            return MAX_BACKLIGHT_LEVEL
        return int(reached[0])

    def power_fraction_for_luminance(self, target: float) -> float:
        """Backlight level fraction needed for ``target`` luminance."""
        return self.level_for_luminance(target) / MAX_BACKLIGHT_LEVEL


class LinearBacklightTransfer(BacklightTransfer):
    """Idealized display: luminance proportional to backlight level."""

    def luminance(self, level: ArrayLike) -> np.ndarray:
        return self._normalized(level)

    def __repr__(self) -> str:
        return "LinearBacklightTransfer()"


class GammaBacklightTransfer(BacklightTransfer):
    """Power-law transfer: ``lum = (level/255) ** gamma``.

    ``gamma > 1`` is convex (luminance lags the register value — the
    unfavourable case: deep dimming requires giving up more level), while
    ``gamma < 1`` is concave.
    """

    def __init__(self, gamma: float):
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.gamma = float(gamma)

    def luminance(self, level: ArrayLike) -> np.ndarray:
        return self._normalized(level) ** self.gamma

    def __repr__(self) -> str:
        return f"GammaBacklightTransfer(gamma={self.gamma:g})"


class SaturatingBacklightTransfer(BacklightTransfer):
    """Concave, saturating transfer typical of measured LED backlights.

    ``lum = (1 - exp(-k x)) / (1 - exp(-k))`` with ``x = level/255``:
    luminance rises quickly at low register values and flattens near the
    top, matching the Figure 7 shape where most brightness is already
    available at mid levels.  Larger ``k`` = stronger saturation.
    """

    def __init__(self, knee: float):
        if knee <= 0:
            raise ValueError(f"knee must be positive, got {knee}")
        self.knee = float(knee)
        self._denom = 1.0 - math.exp(-self.knee)

    def luminance(self, level: ArrayLike) -> np.ndarray:
        x = self._normalized(level)
        return (1.0 - np.exp(-self.knee * x)) / self._denom

    def __repr__(self) -> str:
        return f"SaturatingBacklightTransfer(knee={self.knee:g})"


class TabulatedBacklightTransfer(BacklightTransfer):
    """Transfer interpolated from measured (level, luminance) samples.

    This is what display calibration produces (Section 5's gray-level
    sweeps photographed with the digital camera).  Samples are validated to
    be monotone non-decreasing; queries interpolate linearly.
    """

    def __init__(self, levels: Sequence[float], luminances: Sequence[float]):
        lev = np.asarray(levels, dtype=np.float64)
        lum = np.asarray(luminances, dtype=np.float64)
        if lev.ndim != 1 or lev.shape != lum.shape or lev.size < 2:
            raise ValueError("need two 1-D arrays of equal length >= 2")
        order = np.argsort(lev)
        lev, lum = lev[order], lum[order]
        if np.any(np.diff(lev) <= 0):
            raise ValueError("duplicate backlight levels in calibration data")
        if np.any(np.diff(lum) < -1e-9):
            raise ValueError("calibration luminances must be monotone non-decreasing")
        peak = lum[-1]
        if peak <= 0:
            raise ValueError("calibration captured no light at maximum level")
        self.levels = lev
        self.luminances = np.maximum.accumulate(lum) / peak

    def luminance(self, level: ArrayLike) -> np.ndarray:
        x = np.asarray(self._normalized(level)) * MAX_BACKLIGHT_LEVEL
        return np.interp(x, self.levels, self.luminances)

    def __repr__(self) -> str:
        return f"TabulatedBacklightTransfer(samples={self.levels.size})"


class WhiteTransfer:
    """Maps normalized pixel luminance Y to relative screen luminance.

    Figure 8: at a fixed backlight the screen brightness tracks the image
    white level almost linearly on the iPAQ 5555; other panels show a mild
    curvature modeled here as a gamma.
    """

    def __init__(self, gamma: float = 1.0):
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.gamma = float(gamma)

    def luminance(self, pixel_luminance: ArrayLike) -> np.ndarray:
        """Relative screen luminance of a pixel at full backlight."""
        y = np.asarray(pixel_luminance, dtype=np.float64)
        if np.any(y < 0) or np.any(y > 1.0 + 1e-9):
            raise ValueError("pixel luminance must be normalized to [0, 1]")
        if self.gamma == 1.0:
            return y
        return np.clip(y, 0.0, 1.0) ** self.gamma

    def __repr__(self) -> str:
        return f"WhiteTransfer(gamma={self.gamma:g})"


class DisplayTransfer:
    """Combined display response: ``lum(level, Y) = B(level) * W(Y)``.

    The separable form matches the paper's measurements: power/luminance is
    "almost proportional to backlight level, but little dependent of pixel
    values", and pixel response is independent of the backlight setting.
    """

    def __init__(self, backlight: BacklightTransfer, white: WhiteTransfer):
        self.backlight = backlight
        self.white = white

    def relative_luminance(self, level: ArrayLike, pixel_luminance: ArrayLike) -> np.ndarray:
        """Screen luminance relative to full-white at max backlight."""
        return np.asarray(self.backlight.luminance(level)) * self.white.luminance(
            pixel_luminance
        )

    def level_for_scene(self, effective_max_luminance: float) -> int:
        """Backlight level for a scene whose compensated max luminance is 1.

        With contrast-enhancement compensation the scene's brightest
        (unclipped) pixel is raised to full scale, so the backlight only
        needs to reproduce the *screen* luminance that pixel had at full
        backlight: ``B(level) >= W(Y_max_eff)``.
        """
        if not 0.0 <= effective_max_luminance <= 1.0 + 1e-9:
            raise ValueError(
                f"effective max luminance must be in [0, 1], got {effective_max_luminance}"
            )
        target = float(self.white.luminance(min(effective_max_luminance, 1.0)))
        return self.backlight.level_for_luminance(target)

    def compensation_gain_for_level(self, level: int) -> float:
        """Pixel gain ``k`` that restores perceived intensity at ``level``.

        Solves ``B(level) * W(k * Y) = W(Y)`` for the power-law white
        transfer: ``k = B(level) ** (-1 / gamma)``.  Pixels with
        ``Y > B(level) ** (1/gamma)`` saturate — exactly the clipped tail
        the quality level authorized.
        """
        bl = float(np.asarray(self.backlight.luminance(level)))
        if bl <= 0:
            raise ValueError(f"backlight level {level} emits no light; cannot compensate")
        return bl ** (-1.0 / self.white.gamma)

    def __repr__(self) -> str:
        return f"DisplayTransfer({self.backlight!r}, {self.white!r})"
