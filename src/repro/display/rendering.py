"""Display rendering: what the viewer (or the validation camera) sees.

Combines a frame, a backlight level and a device profile into the perceived
intensity map ``I = rho * L * Y`` of Section 4.1 (plus the transflective
ambient term).  The output is what the digital-camera validation
photographs, so the whole Figure 4 methodology runs on top of this module.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..video.frame import Frame
from .devices import DeviceProfile
from .transfer import MAX_BACKLIGHT_LEVEL


def render_frame(
    frame: Frame,
    backlight_level: int,
    device: DeviceProfile,
    ambient: float = 0.0,
) -> np.ndarray:
    """Render a frame through the display model.

    Parameters
    ----------
    frame:
        The displayed image (already compensated, if compensation is in
        effect).
    backlight_level:
        Hardware backlight register value, 0-255.
    device:
        Display/device model.
    ambient:
        Ambient illuminance in normalized luminance units (0 = dark room,
        which is how the paper's snapshots are taken).

    Returns
    -------
    numpy.ndarray
        Per-pixel perceived intensity, normalized so that a full-white
        pixel at maximum backlight (no ambient) has intensity 1.0.
    """
    if not 0 <= backlight_level <= MAX_BACKLIGHT_LEVEL:
        raise ValueError(
            f"backlight level {backlight_level} out of range [0, {MAX_BACKLIGHT_LEVEL}]"
        )
    transfer = device.transfer
    bl_lum = float(np.asarray(transfer.backlight.luminance(backlight_level)))
    pixel_lum = transfer.white.luminance(frame.luminance)
    raw = device.panel.perceived_intensity(bl_lum, pixel_lum, ambient=ambient)
    # Normalize by the full-white/full-backlight transmitted intensity so
    # different panels are comparable (rho cancels).
    return raw / device.panel.transmittance


def render_solid_gray(
    level: int,
    backlight_level: int,
    device: DeviceProfile,
    size: int = 8,
    ambient: float = 0.0,
) -> np.ndarray:
    """Render a small uniform gray patch — the calibration stimulus."""
    frame = Frame.solid_gray(size, size, level)
    return render_frame(frame, backlight_level, device, ambient=ambient)


def mean_screen_luminance(
    frame: Frame,
    backlight_level: int,
    device: DeviceProfile,
    ambient: float = 0.0,
) -> float:
    """Average perceived intensity over the screen (illuminometer reading)."""
    return float(render_frame(frame, backlight_level, device, ambient=ambient).mean())
