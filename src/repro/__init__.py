"""repro: annotation-driven backlight power optimization for mobile video.

Reproduction of Cornea, Nicolau & Dutt, "Software Annotations for Power
Optimization on Mobile Devices" (DATE 2006).

Subpackages
-----------
``repro.video``
    Frames, clips, synthetic scene generators, the ten-title clip library.
``repro.display``
    LCD panels, CCFL/LED backlights, transfer functions, device profiles,
    camera-sweep calibration.
``repro.power``
    Component power models, DAQ measurement simulation, batteries.
``repro.camera``
    Digital-camera validation methodology (response curves, snapshots).
``repro.quality``
    Luminance histograms and comparison metrics.
``repro.core``
    The paper's contribution: stream analysis, scene detection, clipping,
    compensation, annotation tracks, the end-to-end pipeline.
``repro.streaming``
    Server / proxy / network / client system model.
``repro.player``
    Decoder timing, backlight controller, playback engine.
``repro.baselines``
    Comparison strategies (static, history, per-frame, QABS, DLS).
``repro.telemetry``
    Observability: metrics registry, span tracing, exporters.
"""

__version__ = "1.0.0"

from . import (
    baselines,
    camera,
    core,
    display,
    experiments,
    player,
    power,
    quality,
    streaming,
    telemetry,
    video,
    viz,
)

__all__ = [
    "video",
    "display",
    "power",
    "camera",
    "quality",
    "core",
    "streaming",
    "player",
    "baselines",
    "telemetry",
    "viz",
    "experiments",
    "__version__",
]
