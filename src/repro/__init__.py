"""repro: annotation-driven backlight power optimization for mobile video.

Reproduction of Cornea, Nicolau & Dutt, "Software Annotations for Power
Optimization on Mobile Devices" (DATE 2006).

The supported entry surface is :mod:`repro.api` — the
:class:`~repro.api.AnnotationService` / :class:`~repro.api.StreamingService`
facade plus :func:`~repro.api.configure_engine` — together with the
subpackages below.  The pre-facade top-level aliases
(``repro.MediaServer``, ``run_pipeline``, …) completed their deprecation
cycle and were removed; import the building blocks from their home
modules (``repro.streaming``, ``repro.core``) when the facade does not
fit.

Subpackages
-----------
``repro.api``
    The service facade: annotation, streaming (sync + async), engine
    configuration.  Start here.
``repro.video``
    Frames, clips, synthetic scene generators, the ten-title clip library.
``repro.display``
    LCD panels, CCFL/LED backlights, transfer functions, device profiles,
    camera-sweep calibration.
``repro.power``
    Component power models, DAQ measurement simulation, batteries.
``repro.camera``
    Digital-camera validation methodology (response curves, snapshots).
``repro.quality``
    Luminance histograms and comparison metrics.
``repro.core``
    The paper's contribution: stream analysis, scene detection, clipping,
    compensation, annotation tracks, the end-to-end pipeline.
``repro.streaming``
    Server / proxy / network-model / client system model (in-process).
``repro.net``
    Real asyncio TCP transport: wire codec, stream server with
    backpressure, retrying client, fault injection, serve/fetch config
    objects (:class:`~repro.net.config.ServeConfig`,
    :class:`~repro.net.config.FetchOptions`).
``repro.fleet``
    Sharded multi-process serving: consistent-hash routing over N
    worker servers, health checks, spillover load balancing and
    portable-token failover.
``repro.player``
    Decoder timing, backlight controller, playback engine.
``repro.baselines``
    Comparison strategies (static, history, per-frame, QABS, DLS).
``repro.telemetry``
    Observability: metrics registry, span tracing, exporters.
"""

__version__ = "1.2.0"

from . import (
    baselines,
    camera,
    core,
    display,
    experiments,
    fleet,
    net,
    player,
    power,
    quality,
    streaming,
    telemetry,
    video,
    viz,
)
from . import api
from .api import (
    AnnotationService,
    FetchOptions,
    ServeConfig,
    StreamingService,
    configure_engine,
)

__all__ = [
    "api",
    "AnnotationService",
    "StreamingService",
    "ServeConfig",
    "FetchOptions",
    "configure_engine",
    "video",
    "display",
    "power",
    "camera",
    "quality",
    "core",
    "streaming",
    "net",
    "fleet",
    "player",
    "baselines",
    "telemetry",
    "viz",
    "experiments",
    "__version__",
]
