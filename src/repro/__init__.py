"""repro: annotation-driven backlight power optimization for mobile video.

Reproduction of Cornea, Nicolau & Dutt, "Software Annotations for Power
Optimization on Mobile Devices" (DATE 2006).

The supported entry surface is :mod:`repro.api` — the
:class:`~repro.api.AnnotationService` / :class:`~repro.api.StreamingService`
facade plus :func:`~repro.api.configure_engine` — together with the
subpackages below.  Pre-facade spellings (``repro.MediaServer``,
``run_pipeline``, …) keep working but emit :class:`DeprecationWarning`.

Subpackages
-----------
``repro.api``
    The service facade: annotation, streaming (sync + async), engine
    configuration.  Start here.
``repro.video``
    Frames, clips, synthetic scene generators, the ten-title clip library.
``repro.display``
    LCD panels, CCFL/LED backlights, transfer functions, device profiles,
    camera-sweep calibration.
``repro.power``
    Component power models, DAQ measurement simulation, batteries.
``repro.camera``
    Digital-camera validation methodology (response curves, snapshots).
``repro.quality``
    Luminance histograms and comparison metrics.
``repro.core``
    The paper's contribution: stream analysis, scene detection, clipping,
    compensation, annotation tracks, the end-to-end pipeline.
``repro.streaming``
    Server / proxy / network-model / client system model (in-process).
``repro.net``
    Real asyncio TCP transport: wire codec, stream server with
    backpressure, retrying client, fault injection.
``repro.player``
    Decoder timing, backlight controller, playback engine.
``repro.baselines``
    Comparison strategies (static, history, per-frame, QABS, DLS).
``repro.telemetry``
    Observability: metrics registry, span tracing, exporters.
"""

import warnings as _warnings

__version__ = "1.1.0"

from . import (
    baselines,
    camera,
    core,
    display,
    experiments,
    net,
    player,
    power,
    quality,
    streaming,
    telemetry,
    video,
    viz,
)
from . import api
from .api import AnnotationService, StreamingService, configure_engine

__all__ = [
    "api",
    "AnnotationService",
    "StreamingService",
    "configure_engine",
    "video",
    "display",
    "power",
    "camera",
    "quality",
    "core",
    "streaming",
    "net",
    "player",
    "baselines",
    "telemetry",
    "viz",
    "experiments",
    "__version__",
]

#: Pre-facade spellings kept importable for one deprecation cycle.
#: Each maps a legacy top-level name to ``(module, attribute)``.
_DEPRECATED_ALIASES = {
    "MediaServer": ("repro.streaming.server", "MediaServer"),
    "MobileClient": ("repro.streaming.client", "MobileClient"),
    "TranscodingProxy": ("repro.streaming.proxy", "TranscodingProxy"),
    "AnnotationPipeline": ("repro.core.pipeline", "AnnotationPipeline"),
    "run_pipeline": ("repro.core.pipeline", "run_pipeline"),
    "sweep_quality_levels": ("repro.core.pipeline", "sweep_quality_levels"),
    "EngineConfig": ("repro.core.engine", "EngineConfig"),
}


def __getattr__(name):
    """Resolve deprecated top-level aliases with a :class:`DeprecationWarning`.

    ``repro.MediaServer`` and friends predate the :mod:`repro.api`
    facade; they forward to their canonical homes so existing scripts
    keep working while the warning documents the replacement.
    """
    target = _DEPRECATED_ALIASES.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attr = target
    _warnings.warn(
        f"repro.{name} is a deprecated entry point; use the repro.api facade "
        f"(AnnotationService / StreamingService / configure_engine) or import "
        f"{module_name}.{attr} directly",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attr)
