"""Unit tests for repro.power.trace_analysis (schedule recovery)."""

import numpy as np
import pytest

from repro.core import AnnotationPipeline, SchemeParameters
from repro.display import ipaq_5555
from repro.power import (
    DAQConfig,
    DevicePowerModel,
    MeasurementSession,
    PLAYBACK_ACTIVITY,
    PowerTrace,
    audit_schedule,
    estimate_backlight_level,
    segment_plateaus,
    supply_power_from_device_power,
)


@pytest.fixture
def device():
    return ipaq_5555()


def _non_backlight_power(device):
    model = DevicePowerModel(device)
    return float(model.total_power(PLAYBACK_ACTIVITY, 0)) - float(
        device.backlight.power(0)
    )


class TestSupplyPowerConversion:
    def test_round_trip_through_measurement(self):
        """P_dev = I(V - IR) with I = P_supply/V inverts back exactly."""
        cfg = DAQConfig()
        for p_supply in (0.5, 2.0, 3.5):
            current = p_supply / cfg.supply_voltage_v
            p_dev = current * (cfg.supply_voltage_v - current * cfg.sense_resistor_ohm)
            assert supply_power_from_device_power(p_dev, cfg) == pytest.approx(
                p_supply, rel=1e-9
            )

    def test_zero(self):
        assert supply_power_from_device_power(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            supply_power_from_device_power(-1.0)

    def test_overrange_rejected(self):
        cfg = DAQConfig()
        huge = cfg.supply_voltage_v**2 / (4 * cfg.sense_resistor_ohm) + 1.0
        with pytest.raises(ValueError):
            supply_power_from_device_power(huge, cfg)


class TestEstimateLevel:
    def test_inverts_power_model(self, device):
        non_bl = _non_backlight_power(device)
        for level in (0, 64, 128, 255):
            total = non_bl + float(device.backlight.power(level))
            assert estimate_backlight_level(total, device, non_bl) == level

    def test_clamped_to_range(self, device):
        non_bl = _non_backlight_power(device)
        assert estimate_backlight_level(0.0, device, non_bl) == 0
        assert estimate_backlight_level(100.0, device, non_bl) == 255

    def test_negative_baseline_rejected(self, device):
        with pytest.raises(ValueError):
            estimate_backlight_level(1.0, device, -0.5)


class TestSegmentPlateaus:
    def _trace(self, powers, per=200):
        values = np.repeat(np.asarray(powers, dtype=np.float64), per)
        times = np.arange(values.size) / 2000.0
        return PowerTrace(times=times, power_w=values)

    def test_constant_single_plateau(self):
        plateaus = segment_plateaus(self._trace([2.0]))
        assert len(plateaus) == 1
        assert plateaus[0].mean_power_w == pytest.approx(2.0)

    def test_step_detected(self):
        plateaus = segment_plateaus(self._trace([2.0, 3.0]), smooth_samples=1)
        assert len(plateaus) == 2
        assert plateaus[0].mean_power_w == pytest.approx(2.0, abs=0.05)
        assert plateaus[1].mean_power_w == pytest.approx(3.0, abs=0.05)

    def test_small_wiggle_ignored(self):
        plateaus = segment_plateaus(self._trace([2.0, 2.02, 2.0]), min_step_w=0.1)
        assert len(plateaus) == 1

    def test_plateau_count_tracks_scene_count(self, device, library_clip, fast_params):
        track = AnnotationPipeline(fast_params.with_quality(0.10)).annotate_for_device(
            library_clip, device
        )
        levels = track.per_frame_levels()
        trace = MeasurementSession(device).measure_schedule(levels, fps=library_clip.fps)
        plateaus = segment_plateaus(trace, min_step_w=0.1, min_duration_s=0.1)
        distinct_runs = 1 + int(np.count_nonzero(np.diff(levels)))
        assert len(plateaus) <= distinct_runs + 3  # noise may merge, barely split

    @pytest.mark.parametrize("kwargs", [
        {"min_step_w": 0}, {"min_duration_s": 0}, {"smooth_samples": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            segment_plateaus(self._trace([1.0]), **kwargs)


class TestAuditSchedule:
    def test_recovers_annotation_schedule(self, device, library_clip, fast_params):
        """The headline: from the DAQ trace alone, the recovered schedule
        matches the annotation track within noise."""
        track = AnnotationPipeline(fast_params.with_quality(0.10)).annotate_for_device(
            library_clip, device
        )
        levels = track.per_frame_levels()
        trace = MeasurementSession(device).measure_schedule(levels, fps=library_clip.fps)
        audit = audit_schedule(trace, levels, library_clip.fps, device,
                               _non_backlight_power(device))
        assert audit.matches, (audit.mean_abs_error, audit.max_abs_error)
        assert audit.mean_abs_error < 6.0

    def test_detects_wrong_schedule(self, device, library_clip, fast_params):
        """A trace from a *different* schedule fails the audit."""
        track = AnnotationPipeline(fast_params.with_quality(0.10)).annotate_for_device(
            library_clip, device
        )
        levels = track.per_frame_levels()
        tampered = np.clip(levels + 60, 0, 255)
        trace = MeasurementSession(device).measure_schedule(tampered, fps=library_clip.fps)
        audit = audit_schedule(trace, levels, library_clip.fps, device,
                               _non_backlight_power(device))
        assert not audit.matches

    def test_validation(self, device):
        trace = PowerTrace(times=np.array([0.0, 0.1]), power_w=np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            audit_schedule(trace, np.array([]), 30.0, device, 1.0)
        with pytest.raises(ValueError):
            audit_schedule(trace, np.array([100]), 0.0, device, 1.0)
