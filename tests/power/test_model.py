"""Unit tests for repro.power.model."""

import numpy as np
import pytest

from repro.display import MAX_BACKLIGHT_LEVEL, ipaq_5555
from repro.power import (
    IDLE_ACTIVITY,
    PLAYBACK_ACTIVITY,
    ActivityState,
    DevicePowerModel,
)


@pytest.fixture
def model():
    return DevicePowerModel(ipaq_5555())


class TestActivityState:
    def test_valid(self):
        ActivityState(cpu_load=0.5, network_duty=1.0)

    def test_cpu_bounds(self):
        with pytest.raises(ValueError):
            ActivityState(cpu_load=1.5)
        with pytest.raises(ValueError):
            ActivityState(cpu_load=-0.1)

    def test_network_bounds(self):
        with pytest.raises(ValueError):
            ActivityState(network_duty=2.0)

    def test_presets(self):
        assert PLAYBACK_ACTIVITY.cpu_load > IDLE_ACTIVITY.cpu_load
        assert PLAYBACK_ACTIVITY.network_duty > IDLE_ACTIVITY.network_duty


class TestComponentPower:
    def test_breakdown_keys(self, model):
        parts = model.component_power(PLAYBACK_ACTIVITY, 255)
        assert set(parts) == {"base", "cpu", "network", "panel", "backlight"}

    def test_cpu_interpolation(self, model):
        budget = model.device.power
        idle = model.component_power(ActivityState(0.0, 0.0), 0)["cpu"]
        busy = model.component_power(ActivityState(1.0, 0.0), 0)["cpu"]
        assert idle == pytest.approx(budget.cpu_idle_w)
        assert busy == pytest.approx(budget.cpu_active_w)

    def test_network_interpolation(self, model):
        budget = model.device.power
        half = model.component_power(ActivityState(0.0, 0.5), 0)["network"]
        expected = (budget.network_idle_w + budget.network_active_w) / 2
        assert half == pytest.approx(expected)

    def test_total_is_sum(self, model):
        parts = model.component_power(PLAYBACK_ACTIVITY, 128)
        total = float(model.total_power(PLAYBACK_ACTIVITY, 128))
        assert total == pytest.approx(sum(float(np.asarray(v)) for v in parts.values()))


class TestTotalPower:
    def test_monotone_in_backlight(self, model):
        levels = np.arange(0, 256, 16)
        power = model.total_power(PLAYBACK_ACTIVITY, levels)
        assert np.all(np.diff(power) > 0)

    def test_monotone_in_activity(self, model):
        low = float(model.total_power(IDLE_ACTIVITY, 128))
        high = float(model.total_power(PLAYBACK_ACTIVITY, 128))
        assert high > low

    def test_backlight_share_band(self, model):
        """'about 25-30 % of total power consumption' (Section 4)."""
        share = model.backlight_share()
        assert 0.25 <= share <= 0.35

    def test_playback_power_trace_shape(self, model):
        levels = np.array([255, 128, 0, 255])
        trace = model.playback_power_trace(levels)
        assert trace.shape == (4,)
        assert trace[2] < trace[1] < trace[0]

    def test_trace_rejects_2d(self, model):
        with pytest.raises(ValueError):
            model.playback_power_trace(np.zeros((2, 2)))

    def test_dimming_saves_expected_fraction(self, model):
        """Total savings from full dimming ~= backlight share."""
        full = float(model.total_power(PLAYBACK_ACTIVITY, MAX_BACKLIGHT_LEVEL))
        dark = float(model.total_power(PLAYBACK_ACTIVITY, 0))
        savings = 1 - dark / full
        assert savings == pytest.approx(model.backlight_share(), abs=0.02)
