"""Unit tests for repro.power.dvfs."""

import pytest

from repro.power import DvfsCpuModel, FrequencyLevel, XSCALE_LEVELS


class TestFrequencyLevel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FrequencyLevel(0, 1.0)
        with pytest.raises(ValueError):
            FrequencyLevel(100e6, 0)

    def test_xscale_table(self):
        assert len(XSCALE_LEVELS) == 4
        assert XSCALE_LEVELS[-1].hz == 400e6


class TestDvfsCpuModel:
    @pytest.fixture
    def cpu(self):
        return DvfsCpuModel(active_power_at_max_w=0.75, idle_power_w=0.15)

    def test_levels_sorted(self):
        cpu = DvfsCpuModel(levels=list(reversed(XSCALE_LEVELS)))
        hz = [l.hz for l in cpu.levels]
        assert hz == sorted(hz)

    def test_calibrated_to_budget(self, cpu):
        assert cpu.active_power_w(cpu.max_level) == pytest.approx(0.75)

    def test_power_superlinear_in_frequency(self, cpu):
        """f*V^2 scaling: halving frequency saves more than half the
        active power (voltage drops too)."""
        p_max = cpu.active_power_w(cpu.max_level)
        p_200 = cpu.active_power_w(cpu.levels[1])  # 200 MHz
        assert p_200 < p_max / 2

    def test_power_duty_cycle(self, cpu):
        level = cpu.max_level
        idle = cpu.power_w(level, 0.0)
        busy = cpu.power_w(level, 1.0)
        half = cpu.power_w(level, 0.5)
        assert idle == pytest.approx(0.15)
        assert busy == pytest.approx(0.75)
        assert half == pytest.approx((idle + busy) / 2)

    def test_power_duty_bounds(self, cpu):
        with pytest.raises(ValueError):
            cpu.power_w(cpu.max_level, 1.5)

    def test_slowest_level_exact(self, cpu):
        # 5M cycles in 1/30 s needs >= 150 MHz -> the 200 MHz point.
        level = cpu.slowest_level_for(5e6, 1 / 30)
        assert level.hz == 200e6

    def test_slowest_level_trivial(self, cpu):
        assert cpu.slowest_level_for(0.0, 1 / 30) is cpu.min_level

    def test_slowest_level_saturates(self, cpu):
        # An impossible load falls back to the fastest point.
        assert cpu.slowest_level_for(1e9, 1 / 30) is cpu.max_level

    def test_slowest_level_validation(self, cpu):
        with pytest.raises(ValueError):
            cpu.slowest_level_for(-1, 1 / 30)
        with pytest.raises(ValueError):
            cpu.slowest_level_for(1e6, 0)

    def test_energy_per_frame(self, cpu):
        level = cpu.max_level
        period = 1 / 30
        # Zero work: pure idle energy.
        idle_only = cpu.energy_per_frame_j(level, 0.0, period)
        assert idle_only == pytest.approx(0.15 * period)
        # Saturated: pure active energy.
        full = cpu.energy_per_frame_j(level, level.hz * period, period)
        assert full == pytest.approx(0.75 * period)

    def test_slower_point_saves_energy_when_feasible(self, cpu):
        """Race-to-idle loses to DVFS under the f*V^2 law."""
        cycles = 5e6
        period = 1 / 30
        slow = cpu.slowest_level_for(cycles, period)
        fast = cpu.max_level
        assert cpu.energy_per_frame_j(slow, cycles, period) < cpu.energy_per_frame_j(
            fast, cycles, period
        )

    @pytest.mark.parametrize("kwargs", [
        {"levels": []},
        {"active_power_at_max_w": 0},
        {"idle_power_w": -0.1},
        {"idle_power_w": 1.0, "active_power_at_max_w": 0.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DvfsCpuModel(**kwargs)
