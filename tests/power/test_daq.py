"""Unit tests for repro.power.daq."""

import numpy as np
import pytest

from repro.power import DAQConfig, DAQSimulator, PowerTrace


class TestDAQConfig:
    def test_defaults_match_paper(self):
        cfg = DAQConfig()
        assert cfg.sample_rate_hz == 2000.0  # "sampled the voltages at 2K samples/sec"

    @pytest.mark.parametrize("field,value", [
        ("sample_rate_hz", 0), ("supply_voltage_v", -1),
        ("sense_resistor_ohm", 0), ("adc_bits", 2),
        ("adc_range_v", 0), ("noise_sigma_v", -0.1),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            DAQConfig(**{field: value})


class TestDAQSimulator:
    def test_sample_count(self):
        daq = DAQSimulator()
        assert daq.sample_times(1.0).size == 2000

    def test_sample_times_invalid(self):
        with pytest.raises(ValueError):
            DAQSimulator().sample_times(0.0)

    def test_constant_power_recovered(self):
        daq = DAQSimulator(DAQConfig(noise_sigma_v=0.0))
        trace = daq.measure(lambda t: np.full_like(t, 2.5), 0.5)
        assert trace.mean_power_w == pytest.approx(2.5, rel=0.01)

    def test_noise_bounded(self):
        daq = DAQSimulator(DAQConfig(noise_sigma_v=0.003), seed=3)
        trace = daq.measure(lambda t: np.full_like(t, 2.5), 1.0)
        assert trace.mean_power_w == pytest.approx(2.5, rel=0.05)

    def test_step_waveform_tracked(self):
        daq = DAQSimulator(DAQConfig(noise_sigma_v=0.0))
        trace = daq.measure(lambda t: np.where(t < 0.5, 1.0, 3.0), 1.0)
        first = trace.power_w[: trace.power_w.size // 2].mean()
        second = trace.power_w[trace.power_w.size // 2 :].mean()
        assert first == pytest.approx(1.0, rel=0.02)
        assert second == pytest.approx(3.0, rel=0.02)

    def test_reproducible_with_seed(self):
        a = DAQSimulator(seed=9).measure(lambda t: np.full_like(t, 2.0), 0.1)
        b = DAQSimulator(seed=9).measure(lambda t: np.full_like(t, 2.0), 0.1)
        assert a.power_w == pytest.approx(b.power_w)

    def test_quantization_grid(self):
        cfg = DAQConfig(noise_sigma_v=0.0, adc_bits=8)
        daq = DAQSimulator(cfg)
        trace = daq.measure(lambda t: np.full_like(t, 2.0), 0.01)
        # With an 8-bit ADC the error of a constant reading is visible.
        assert trace.power_w.std() == pytest.approx(0.0)

    def test_negative_power_rejected(self):
        daq = DAQSimulator()
        with pytest.raises(ValueError, match="non-negative"):
            daq.measure(lambda t: np.full_like(t, -1.0), 0.1)

    def test_wrong_shape_rejected(self):
        daq = DAQSimulator()
        with pytest.raises(ValueError, match="per sample"):
            daq.measure(lambda t: np.zeros(3), 0.1)


class TestPowerTrace:
    def test_energy_integral(self):
        t = np.linspace(0, 1, 101)
        trace = PowerTrace(times=t, power_w=np.full(101, 2.0))
        assert trace.energy_j() == pytest.approx(2.0)

    def test_energy_of_ramp(self):
        t = np.linspace(0, 1, 1001)
        trace = PowerTrace(times=t, power_w=t.copy())
        assert trace.energy_j() == pytest.approx(0.5, rel=1e-3)

    def test_single_sample_energy_zero(self):
        trace = PowerTrace(times=np.array([0.0]), power_w=np.array([5.0]))
        assert trace.energy_j() == 0.0

    def test_savings_vs(self):
        t = np.linspace(0, 1, 11)
        optimized = PowerTrace(times=t, power_w=np.full(11, 1.0))
        baseline = PowerTrace(times=t, power_w=np.full(11, 2.0))
        assert optimized.savings_vs(baseline) == pytest.approx(0.5)

    def test_savings_vs_zero_baseline(self):
        t = np.linspace(0, 1, 11)
        a = PowerTrace(times=t, power_w=np.ones(11))
        b = PowerTrace(times=t, power_w=np.zeros(11))
        with pytest.raises(ValueError):
            a.savings_vs(b)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerTrace(times=np.array([0.0, 0.0]), power_w=np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            PowerTrace(times=np.array([0.0, 1.0]), power_w=np.array([1.0]))
        with pytest.raises(ValueError):
            PowerTrace(times=np.array([]), power_w=np.array([]))

    def test_duration(self):
        trace = PowerTrace(times=np.array([1.0, 3.0]), power_w=np.array([1.0, 1.0]))
        assert trace.duration_s == pytest.approx(2.0)
