"""Unit tests for repro.power.battery."""

import pytest

from repro.power import Battery


class TestBattery:
    def test_runtime_at_rated_power(self):
        batt = Battery(capacity_wh=7.4, rated_power_w=1.5, peukert_exponent=1.0)
        assert batt.runtime_hours(1.5) == pytest.approx(7.4 / 1.5)

    def test_runtime_below_rated_not_derated(self):
        batt = Battery(capacity_wh=6.0, rated_power_w=2.0)
        assert batt.usable_energy_wh(1.0) == pytest.approx(6.0)

    def test_peukert_derates_heavy_loads(self):
        batt = Battery(capacity_wh=6.0, rated_power_w=1.0, peukert_exponent=1.1)
        assert batt.usable_energy_wh(3.0) < 6.0

    def test_peukert_disabled(self):
        batt = Battery(capacity_wh=6.0, rated_power_w=1.0, peukert_exponent=1.0)
        assert batt.usable_energy_wh(5.0) == pytest.approx(6.0)

    def test_runtime_extension_formula(self):
        """20 % power saving -> ~25 % longer runtime (1/0.8 - 1)."""
        batt = Battery(peukert_exponent=1.0)
        extension = batt.runtime_extension(3.5, 2.8)
        assert extension == pytest.approx(0.25, abs=0.01)

    def test_peukert_extension_strictly_larger(self):
        plain = Battery(peukert_exponent=1.0)
        derated = Battery(peukert_exponent=1.1)
        assert derated.runtime_extension(3.5, 2.8) > plain.runtime_extension(3.5, 2.8)

    def test_extension_rejects_higher_power(self):
        with pytest.raises(ValueError):
            Battery().runtime_extension(2.0, 3.0)

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            Battery().runtime_hours(0.0)

    @pytest.mark.parametrize("kwargs", [
        {"capacity_wh": 0}, {"rated_power_w": -1}, {"peukert_exponent": 0.9},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Battery(**kwargs)
