"""Unit tests for repro.power.measurement."""

import numpy as np
import pytest

from repro.display import MAX_BACKLIGHT_LEVEL, ipaq_5555
from repro.power import (
    MeasurementSession,
    DevicePowerModel,
    PLAYBACK_ACTIVITY,
    schedule_power_fn,
    simulated_backlight_savings,
)


@pytest.fixture
def device():
    return ipaq_5555()


class TestSimulatedBacklightSavings:
    def test_full_backlight_saves_nothing(self, device):
        levels = np.full(10, MAX_BACKLIGHT_LEVEL)
        assert simulated_backlight_savings(levels, device) == pytest.approx(0.0)

    def test_zero_backlight_saves_nearly_all(self, device):
        levels = np.zeros(10, dtype=int)
        savings = simulated_backlight_savings(levels, device)
        floor = device.backlight.power_floor_w / device.backlight.power_max_w
        assert savings == pytest.approx(1.0 - floor)

    def test_half_level_half_savings_for_led(self, device):
        """The affine power model with a near-zero floor: savings ~ 1 - level/255."""
        levels = np.full(10, 128)
        savings = simulated_backlight_savings(levels, device)
        assert savings == pytest.approx(1 - 128 / 255, abs=0.02)

    def test_mixed_schedule_averages(self, device):
        lo = simulated_backlight_savings(np.full(10, 100), device)
        hi = simulated_backlight_savings(np.full(10, 200), device)
        mixed = simulated_backlight_savings(
            np.concatenate([np.full(10, 100), np.full(10, 200)]), device
        )
        assert mixed == pytest.approx((lo + hi) / 2)

    def test_rejects_empty(self, device):
        with pytest.raises(ValueError):
            simulated_backlight_savings(np.array([]), device)


class TestSchedulePowerFn:
    def test_step_function_per_frame(self, device):
        model = DevicePowerModel(device)
        levels = np.array([0, MAX_BACKLIGHT_LEVEL])
        fn = schedule_power_fn(levels, fps=1.0, model=model)
        p0 = float(fn(np.array([0.5]))[0])
        p1 = float(fn(np.array([1.5]))[0])
        assert p1 > p0

    def test_clamps_past_end(self, device):
        model = DevicePowerModel(device)
        fn = schedule_power_fn(np.array([100]), fps=30.0, model=model)
        assert float(fn(np.array([10.0]))[0]) == float(fn(np.array([0.0]))[0])

    def test_validation(self, device):
        model = DevicePowerModel(device)
        with pytest.raises(ValueError):
            schedule_power_fn(np.array([]), fps=30.0, model=model)
        with pytest.raises(ValueError):
            schedule_power_fn(np.array([300]), fps=30.0, model=model)
        with pytest.raises(ValueError):
            schedule_power_fn(np.array([10]), fps=0.0, model=model)


class TestMeasurementSession:
    def test_compare_full_backlight_is_zero_savings(self, device):
        session = MeasurementSession(device)
        levels = np.full(30, MAX_BACKLIGHT_LEVEL)
        result = session.compare(levels, fps=30.0)
        assert result.total_savings == pytest.approx(0.0, abs=0.02)

    def test_compare_dimmed_saves(self, device):
        session = MeasurementSession(device)
        levels = np.full(30, 64)
        result = session.compare(levels, fps=30.0)
        assert result.total_savings > 0.1

    def test_measured_close_to_ground_truth(self, device):
        """The DAQ chain must not distort the savings number."""
        session = MeasurementSession(device)
        levels = np.full(60, 100)
        result = session.compare(levels, fps=30.0)
        model = DevicePowerModel(device)
        truth_opt = float(model.total_power(PLAYBACK_ACTIVITY, 100))
        truth_base = float(model.total_power(PLAYBACK_ACTIVITY, MAX_BACKLIGHT_LEVEL))
        assert result.total_savings == pytest.approx(1 - truth_opt / truth_base, abs=0.02)

    def test_energy_saved_positive(self, device):
        session = MeasurementSession(device)
        result = session.compare(np.full(30, 10), fps=30.0)
        assert result.energy_saved_j > 0

    def test_distinct_runs_have_distinct_noise(self, device):
        from repro.power import DAQConfig
        session = MeasurementSession(device, DAQConfig(noise_sigma_v=0.01), seed=1)
        a = session.measure_schedule(np.full(30, 128), fps=30.0, run_id=1)
        b = session.measure_schedule(np.full(30, 128), fps=30.0, run_id=2)
        assert not np.allclose(a.power_w, b.power_w)
