"""Unit tests for repro.core.compensation."""

import numpy as np
import pytest

from repro.core import (
    brightness_compensation,
    compensate_for_backlight,
    contrast_enhancement,
)
from repro.video import Frame


class TestContrastEnhancement:
    def test_scales_unclipped_pixels(self):
        frame = Frame.from_luminance(np.full((2, 2), 0.25))
        result = contrast_enhancement(frame, 2.0)
        assert result.frame.luminance == pytest.approx(np.full((2, 2), 0.5), abs=1 / 255)
        assert result.clipped_fraction == 0.0

    def test_scales_luminance_by_gain(self, dark_frame):
        """Equal per-channel gains scale the BT.601 luminance exactly."""
        gain = 1.5
        result = contrast_enhancement(dark_frame, gain)
        unclipped = dark_frame.normalized().max(axis=-1) * gain <= 1.0
        expected = dark_frame.luminance[unclipped] * gain
        actual = result.frame.luminance[unclipped]
        assert actual == pytest.approx(expected, abs=2 / 255)

    def test_clipping_counted(self):
        frame = Frame.from_luminance(np.array([[0.4, 0.6]]))
        result = contrast_enhancement(frame, 2.0)
        assert result.clipped_fraction == pytest.approx(0.5)

    def test_clipped_pixels_saturate(self):
        frame = Frame.from_luminance(np.array([[0.9]]))
        result = contrast_enhancement(frame, 2.0)
        assert result.frame.pixels[0, 0, 0] == 255

    def test_unit_gain_identity(self, dark_frame):
        result = contrast_enhancement(dark_frame, 1.0)
        assert result.frame == dark_frame
        assert result.clipped_fraction == 0.0

    def test_gain_below_one_rejected(self, dark_frame):
        with pytest.raises(ValueError, match=">= 1"):
            contrast_enhancement(dark_frame, 0.5)

    def test_preserves_hue_for_unclipped(self):
        """Equal channel gains keep channel ratios (colors maintained)."""
        frame = Frame.solid(2, 2, (40, 80, 120))
        result = contrast_enhancement(frame, 2.0)
        pixel = result.frame.pixels[0, 0].astype(float)
        assert pixel[1] / pixel[0] == pytest.approx(2.0, abs=0.05)
        assert pixel[2] / pixel[0] == pytest.approx(3.0, abs=0.05)

    def test_original_untouched(self, dark_frame):
        before = dark_frame.pixels.copy()
        contrast_enhancement(dark_frame, 3.0)
        assert np.array_equal(dark_frame.pixels, before)

    def test_preserves_index(self):
        frame = Frame.solid_gray(2, 2, 100, index=42)
        assert contrast_enhancement(frame, 1.5).frame.index == 42


class TestBrightnessCompensation:
    def test_adds_constant(self):
        frame = Frame.from_luminance(np.full((2, 2), 0.2))
        result = brightness_compensation(frame, 0.3)
        assert result.frame.luminance == pytest.approx(np.full((2, 2), 0.5), abs=1 / 255)

    def test_clipping_counted(self):
        frame = Frame.from_luminance(np.array([[0.5, 0.9]]))
        result = brightness_compensation(frame, 0.2)
        assert result.clipped_fraction == pytest.approx(0.5)

    def test_zero_delta_identity(self, dark_frame):
        result = brightness_compensation(dark_frame, 0.0)
        assert result.frame == dark_frame

    def test_negative_delta_rejected(self, dark_frame):
        with pytest.raises(ValueError):
            brightness_compensation(dark_frame, -0.1)

    def test_shifts_all_channels_equally(self):
        """'Each RGB value needs to be compensated by same amount to
        maintain original colors.'"""
        frame = Frame.solid(1, 1, (40, 80, 120))
        result = brightness_compensation(frame, 0.2)
        diffs = result.frame.pixels[0, 0].astype(int) - frame.pixels[0, 0].astype(int)
        assert np.all(np.abs(diffs - 51) <= 1)  # 0.2 * 255 = 51


class TestCompensateForBacklight:
    def test_gain_is_inverse_luminance(self):
        frame = Frame.from_luminance(np.full((2, 2), 0.25))
        result = compensate_for_backlight(frame, 0.5)  # k = L/L' = 2
        assert result.frame.luminance == pytest.approx(np.full((2, 2), 0.5), abs=1 / 255)

    def test_full_backlight_identity(self, dark_frame):
        result = compensate_for_backlight(dark_frame, 1.0)
        assert result.frame == dark_frame

    def test_invalid_luminance(self, dark_frame):
        with pytest.raises(ValueError):
            compensate_for_backlight(dark_frame, 0.0)
        with pytest.raises(ValueError):
            compensate_for_backlight(dark_frame, 1.2)


class TestCompensationResult:
    def test_fraction_bounds_checked(self):
        from repro.core import CompensationResult
        with pytest.raises(ValueError):
            CompensationResult(frame=Frame.solid_gray(1, 1, 0), clipped_fraction=1.5)
