"""Unit tests for repro.core.compensation."""

import numpy as np
import pytest

from repro.core import (
    brightness_compensation,
    compensate_for_backlight,
    contrast_enhancement,
)
from repro.video import Frame


class TestContrastEnhancement:
    def test_scales_unclipped_pixels(self):
        frame = Frame.from_luminance(np.full((2, 2), 0.25))
        result = contrast_enhancement(frame, 2.0)
        assert result.frame.luminance == pytest.approx(np.full((2, 2), 0.5), abs=1 / 255)
        assert result.clipped_fraction == 0.0

    def test_scales_luminance_by_gain(self, dark_frame):
        """Equal per-channel gains scale the BT.601 luminance exactly."""
        gain = 1.5
        result = contrast_enhancement(dark_frame, gain)
        unclipped = dark_frame.normalized().max(axis=-1) * gain <= 1.0
        expected = dark_frame.luminance[unclipped] * gain
        actual = result.frame.luminance[unclipped]
        assert actual == pytest.approx(expected, abs=2 / 255)

    def test_clipping_counted(self):
        frame = Frame.from_luminance(np.array([[0.4, 0.6]]))
        result = contrast_enhancement(frame, 2.0)
        assert result.clipped_fraction == pytest.approx(0.5)

    def test_clipped_pixels_saturate(self):
        frame = Frame.from_luminance(np.array([[0.9]]))
        result = contrast_enhancement(frame, 2.0)
        assert result.frame.pixels[0, 0, 0] == 255

    def test_unit_gain_identity(self, dark_frame):
        result = contrast_enhancement(dark_frame, 1.0)
        assert result.frame == dark_frame
        assert result.clipped_fraction == 0.0

    def test_gain_below_one_rejected(self, dark_frame):
        with pytest.raises(ValueError, match=">= 1"):
            contrast_enhancement(dark_frame, 0.5)

    def test_preserves_hue_for_unclipped(self):
        """Equal channel gains keep channel ratios (colors maintained)."""
        frame = Frame.solid(2, 2, (40, 80, 120))
        result = contrast_enhancement(frame, 2.0)
        pixel = result.frame.pixels[0, 0].astype(float)
        assert pixel[1] / pixel[0] == pytest.approx(2.0, abs=0.05)
        assert pixel[2] / pixel[0] == pytest.approx(3.0, abs=0.05)

    def test_original_untouched(self, dark_frame):
        before = dark_frame.pixels.copy()
        contrast_enhancement(dark_frame, 3.0)
        assert np.array_equal(dark_frame.pixels, before)

    def test_preserves_index(self):
        frame = Frame.solid_gray(2, 2, 100, index=42)
        assert contrast_enhancement(frame, 1.5).frame.index == 42


class TestBrightnessCompensation:
    def test_adds_constant(self):
        frame = Frame.from_luminance(np.full((2, 2), 0.2))
        result = brightness_compensation(frame, 0.3)
        assert result.frame.luminance == pytest.approx(np.full((2, 2), 0.5), abs=1 / 255)

    def test_clipping_counted(self):
        frame = Frame.from_luminance(np.array([[0.5, 0.9]]))
        result = brightness_compensation(frame, 0.2)
        assert result.clipped_fraction == pytest.approx(0.5)

    def test_zero_delta_identity(self, dark_frame):
        result = brightness_compensation(dark_frame, 0.0)
        assert result.frame == dark_frame

    def test_negative_delta_rejected(self, dark_frame):
        with pytest.raises(ValueError):
            brightness_compensation(dark_frame, -0.1)

    def test_shifts_all_channels_equally(self):
        """'Each RGB value needs to be compensated by same amount to
        maintain original colors.'"""
        frame = Frame.solid(1, 1, (40, 80, 120))
        result = brightness_compensation(frame, 0.2)
        diffs = result.frame.pixels[0, 0].astype(int) - frame.pixels[0, 0].astype(int)
        assert np.all(np.abs(diffs - 51) <= 1)  # 0.2 * 255 = 51


class TestCompensateForBacklight:
    def test_gain_is_inverse_luminance(self):
        frame = Frame.from_luminance(np.full((2, 2), 0.25))
        result = compensate_for_backlight(frame, 0.5)  # k = L/L' = 2
        assert result.frame.luminance == pytest.approx(np.full((2, 2), 0.5), abs=1 / 255)

    def test_full_backlight_identity(self, dark_frame):
        result = compensate_for_backlight(dark_frame, 1.0)
        assert result.frame == dark_frame

    def test_invalid_luminance(self, dark_frame):
        with pytest.raises(ValueError):
            compensate_for_backlight(dark_frame, 0.0)
        with pytest.raises(ValueError):
            compensate_for_backlight(dark_frame, 1.2)


class TestCompensationResult:
    def test_fraction_bounds_checked(self):
        from repro.core import CompensationResult
        with pytest.raises(ValueError):
            CompensationResult(frame=Frame.solid_gray(1, 1, 0), clipped_fraction=1.5)


class TestGainLut:
    """The fused LUT kernel against the float reference, bit for bit."""

    def _batch(self, n=12, h=10, w=8, seed=3):
        rng = np.random.default_rng(seed)
        return rng.integers(0, 256, size=(n, h, w, 3), dtype=np.uint8)

    def test_lut_matches_float_path_for_every_code(self):
        from repro.core import gain_lut
        from repro.video.frame import MAX_CHANNEL

        for gain in (1.0 + 1e-9, 1.1, 1.33333, 2.0, 3.7, 17.0):
            lut, clip_code = gain_lut(gain)
            codes = np.arange(256, dtype=np.float64) / MAX_CHANNEL
            scaled = codes * gain
            expected = np.rint(np.minimum(scaled, 1.0) * MAX_CHANNEL)
            assert np.array_equal(lut, expected.astype(np.uint8)), gain
            clipped = scaled > 1.0 + 1e-12
            expected_code = int(np.argmax(clipped)) if clipped.any() else 256
            assert clip_code == expected_code, gain

    def test_lut_is_cached_and_immutable(self):
        from repro.core import gain_lut

        first, _ = gain_lut(1.44)
        again, _ = gain_lut(1.44)
        assert first is again
        with pytest.raises(ValueError):
            first[0] = 1

    def test_batch_matches_reference_mixed_gains(self):
        from repro.core import (
            contrast_enhancement_batch,
            contrast_enhancement_batch_reference,
        )

        pixels = self._batch()
        gains = np.array([0.5, 0.5, 1.0, 1.3, 1.3, 1.3, 2.4, 1.3,
                          1.0, 5.0, 5.0, 1.7])
        got_px, got_fr = contrast_enhancement_batch(pixels, gains)
        ref_px, ref_fr = contrast_enhancement_batch_reference(pixels, gains)
        assert np.array_equal(got_px, ref_px)
        assert np.array_equal(got_fr, ref_fr)

    def test_batch_matches_reference_scalar_gain(self):
        from repro.core import (
            contrast_enhancement_batch,
            contrast_enhancement_batch_reference,
        )

        pixels = self._batch()
        for gain in (0.7, 1.0, 1.9):
            got_px, got_fr = contrast_enhancement_batch(pixels, gain)
            ref_px, ref_fr = contrast_enhancement_batch_reference(pixels, gain)
            assert np.array_equal(got_px, ref_px), gain
            assert np.array_equal(got_fr, ref_fr), gain

    def test_reference_validates_like_the_lut_kernel(self):
        from repro.core import (
            contrast_enhancement_batch,
            contrast_enhancement_batch_reference,
        )

        pixels = self._batch(n=3)
        for kernel in (contrast_enhancement_batch,
                       contrast_enhancement_batch_reference):
            with pytest.raises(ValueError):
                kernel(pixels, 0.0)
            with pytest.raises(ValueError):
                kernel(pixels, np.ones(2))
            with pytest.raises(ValueError):
                kernel(pixels.astype(np.float64), 1.2)
            with pytest.raises(ValueError):
                kernel(pixels[0], 1.2)

    def test_out_parameter_is_used_and_returned(self):
        from repro.core import contrast_enhancement_batch

        pixels = self._batch(n=4)
        out = np.zeros_like(pixels)
        got, _ = contrast_enhancement_batch(pixels, 1.5, out=out)
        assert got is out

    def test_out_shape_and_dtype_validated(self):
        from repro.core import contrast_enhancement_batch

        pixels = self._batch(n=4)
        with pytest.raises(ValueError):
            contrast_enhancement_batch(pixels, 1.5, out=np.zeros((3, 10, 8, 3),
                                                                 dtype=np.uint8))
        with pytest.raises(ValueError):
            contrast_enhancement_batch(
                pixels, 1.5, out=np.zeros_like(pixels, dtype=np.uint16)
            )

    def test_default_out_is_fresh_memory(self):
        from repro.core import contrast_enhancement_batch

        pixels = self._batch(n=4)
        got, _ = contrast_enhancement_batch(pixels, 1.5)
        before = pixels.copy()
        got[:] = 0
        assert np.array_equal(pixels, before)

    def test_precomputed_fractions_skip_reduction_and_pass_through(self):
        from repro.core import contrast_enhancement_batch

        pixels = self._batch(n=6)
        gains = np.array([1.0, 1.4, 2.0, 1.4, 3.3, 1.0])
        ref_px, ref_fr = contrast_enhancement_batch(pixels, gains)
        got_px, got_fr = contrast_enhancement_batch(
            pixels, gains, fractions=ref_fr
        )
        assert np.array_equal(got_px, ref_px)
        assert got_fr.dtype == np.float64
        assert np.array_equal(got_fr, ref_fr)

    def test_fractions_shape_validated(self):
        from repro.core import contrast_enhancement_batch

        pixels = self._batch(n=4)
        with pytest.raises(ValueError):
            contrast_enhancement_batch(pixels, 1.5, fractions=np.zeros(3))


class TestChunkArena:
    def test_reuses_buffer_for_equal_or_smaller_requests(self):
        from repro.core import ChunkArena

        arena = ChunkArena()
        a = arena.request((4, 6, 5, 3))
        a_base = a.base
        b = arena.request((4, 6, 5, 3))
        assert b.base is a_base
        smaller = arena.request((2, 6, 5, 3))
        assert smaller.base is a_base

    def test_grows_for_larger_requests(self):
        from repro.core import ChunkArena

        arena = ChunkArena()
        small = arena.request((2, 4, 4, 3))
        big = arena.request((8, 4, 4, 3))
        assert big.size > small.size
        assert big.shape == (8, 4, 4, 3)

    def test_arena_output_bit_identical_to_fresh(self):
        from repro.core import ChunkArena, contrast_enhancement_batch

        rng = np.random.default_rng(9)
        arena = ChunkArena()
        for seed in range(3):
            pixels = rng.integers(0, 256, size=(6, 9, 7, 3), dtype=np.uint8)
            fresh_px, fresh_fr = contrast_enhancement_batch(pixels, 1.8)
            arena_px, arena_fr = contrast_enhancement_batch(
                pixels, 1.8, out=arena.request(pixels.shape)
            )
            assert np.array_equal(arena_px, fresh_px)
            assert np.array_equal(arena_fr, fresh_fr)
