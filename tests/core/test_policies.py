"""The pluggable backlight-policy layer.

Registry semantics, the three shipped policies (clip-quality, HEBS,
spatial scaling), annotation payload round-trips through the wire
formats, and the guards that keep tracks single-policy.
"""

import numpy as np
import pytest

from repro.core import (
    CLIP_QUALITY_POLICY,
    POLICY_NAMES,
    AnnotationTrack,
    BacklightPolicy,
    ClipQualityPolicy,
    DeviceAnnotationTrack,
    DeviceSceneAnnotation,
    GainTransform,
    HebsPolicy,
    LutTransform,
    SceneAnnotation,
    SchemeParameters,
    SpatialScalingPolicy,
    SpatialTransform,
    available_policies,
    get_policy,
    policy_profile_key,
    register_policy,
    resolve_policy,
    smooth_track,
)
from repro.core.pipeline import AnnotationPipeline


class TestRegistry:
    def test_all_shipped_policies_registered(self):
        assert set(available_policies()) >= {"clip-quality", "hebs", "spatial"}
        assert POLICY_NAMES == available_policies()

    def test_get_policy_returns_cached_default_instance(self):
        assert get_policy("hebs") is get_policy("hebs")
        assert isinstance(get_policy("hebs"), HebsPolicy)

    def test_unknown_name_lists_known_policies(self):
        with pytest.raises(ValueError, match="clip-quality"):
            get_policy("warp-drive")

    def test_resolve_none_is_the_papers_scheme(self):
        policy = resolve_policy(None)
        assert isinstance(policy, ClipQualityPolicy)
        assert policy.name == CLIP_QUALITY_POLICY

    def test_resolve_instance_passes_through(self):
        custom = HebsPolicy(dim_factor=5.0)
        assert resolve_policy(custom) is custom

    def test_resolve_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve_policy(1.5)

    def test_register_rejects_abstract_name(self):
        with pytest.raises(ValueError):

            @register_policy
            class Nameless(BacklightPolicy):
                pass

    def test_configuration_keys_are_distinct(self):
        assert ClipQualityPolicy().key() != ClipQualityPolicy(True).key()
        assert HebsPolicy().key() != HebsPolicy(dim_factor=9.0).key()
        assert SpatialScalingPolicy(2).key() != SpatialScalingPolicy(3).key()

    def test_profile_key_partitions_by_name_only(self):
        assert HebsPolicy().profile_key() == HebsPolicy(dim_factor=9.0).profile_key()
        assert policy_profile_key("hebs") != policy_profile_key("spatial")
        assert policy_profile_key(("precomputed",)) == ("precomputed",)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            HebsPolicy(dim_factor=0.5)
        with pytest.raises(ValueError):
            HebsPolicy(reserve=1.0)
        with pytest.raises(ValueError):
            SpatialScalingPolicy(0)
        with pytest.raises(ValueError):
            SpatialScalingPolicy(9)


@pytest.fixture
def profiled(tiny_clip, fast_params):
    pipeline = AnnotationPipeline(fast_params)
    return pipeline.profile(tiny_clip), fast_params


class TestClipQualityPolicy:
    def test_annotations_use_default_policy_and_empty_payload(self, profiled):
        profile, params = profiled
        scenes = ClipQualityPolicy().annotate_scenes(
            profile.scenes, profile.stats, params
        )
        assert all(s.policy == CLIP_QUALITY_POLICY for s in scenes)
        assert all(s.payload == b"" for s in scenes)

    def test_transform_is_a_gain(self, profiled, device):
        profile, params = profiled
        policy = ClipQualityPolicy()
        scene = policy.annotate_scene(profile.scenes[0], profile.stats, params)
        bound = policy.bind_scene(scene, device)
        transform = policy.transform_for_scene(bound)
        assert isinstance(transform, GainTransform)
        assert transform.is_gain
        assert transform.gain == bound.compensation_gain

    def test_track_keeps_legacy_wire_format(self, tiny_clip, fast_params):
        track = AnnotationPipeline(fast_params).annotate(tiny_clip)
        data = track.to_bytes()
        assert data[:4] == b"ANL1"
        restored = AnnotationTrack.from_bytes(data)
        assert restored.policy == CLIP_QUALITY_POLICY


class TestHebsPolicy:
    def test_payload_is_clip_code_plus_lut(self, profiled):
        profile, params = profiled
        scene = HebsPolicy().annotate_scene(
            profile.scenes[0], profile.stats, params
        )
        assert scene.policy == "hebs"
        assert len(scene.payload) == 257

    def test_lut_is_monotone_and_spans_the_range(self, profiled):
        profile, params = profiled
        for raw in profile.scenes:
            scene = HebsPolicy().annotate_scene(raw, profile.stats, params)
            lut = np.frombuffer(scene.payload[1:], dtype=np.uint8)
            assert np.all(np.diff(lut.astype(int)) >= 0)
            assert lut[0] == 0
            assert lut[-1] == 255

    def test_dims_dark_scenes(self, profiled):
        profile, params = profiled
        scenes = [
            HebsPolicy().annotate_scene(raw, profile.stats, params)
            for raw in profile.scenes
        ]
        assert all(0.0 < s.effective_max_luminance <= 1.0 for s in scenes)
        assert min(s.effective_max_luminance for s in scenes) < 1.0

    def test_bind_and_transform_round_trip(self, profiled, device):
        profile, params = profiled
        policy = HebsPolicy()
        scene = policy.annotate_scene(profile.scenes[0], profile.stats, params)
        bound = policy.bind_scene(scene, device)
        assert bound.payload == scene.payload
        transform = policy.transform_for_scene(bound)
        assert isinstance(transform, LutTransform)
        assert not transform.is_gain

    def test_transform_rejects_malformed_payload(self):
        bad = DeviceSceneAnnotation(
            start=0, end=4, backlight_level=10, compensation_gain=1.5,
            policy="hebs", payload=b"\x01\x02",
        )
        with pytest.raises(ValueError, match="257"):
            HebsPolicy().transform_for_scene(bad)


class TestSpatialScalingPolicy:
    def test_payload_records_the_scale(self, profiled):
        profile, params = profiled
        scene = SpatialScalingPolicy(3).annotate_scene(
            profile.scenes[0], profile.stats, params
        )
        assert scene.policy == "spatial"
        assert scene.payload == bytes([3])

    def test_never_brighter_than_plain_clipping(self, profiled):
        profile, params = profiled
        clip = ClipQualityPolicy(per_scene_clipping=True)
        for raw in profile.scenes:
            s = SpatialScalingPolicy(2).annotate_scene(raw, profile.stats, params)
            c = clip.annotate_scene(raw, profile.stats, params)
            assert s.effective_max_luminance <= c.effective_max_luminance + 1e-9

    def test_scale_one_matches_per_scene_clipping_exactly(self, profiled):
        profile, params = profiled
        clip = ClipQualityPolicy(per_scene_clipping=True)
        for raw in profile.scenes:
            s = SpatialScalingPolicy(1).annotate_scene(raw, profile.stats, params)
            c = clip.annotate_scene(raw, profile.stats, params)
            assert s.effective_max_luminance == pytest.approx(
                c.effective_max_luminance
            )

    def test_transform_preserves_frame_geometry(self, profiled, device, tiny_clip):
        profile, params = profiled
        policy = SpatialScalingPolicy(2)
        scene = policy.annotate_scene(profile.scenes[0], profile.stats, params)
        bound = policy.bind_scene(scene, device)
        transform = policy.transform_for_scene(bound)
        assert isinstance(transform, SpatialTransform)
        frame = tiny_clip.frame(0)
        result = transform.apply_frame(frame)
        assert result.frame.pixels.shape == frame.pixels.shape
        assert result.frame.pixels.dtype == np.uint8


class TestWireFormats:
    def test_extended_luminance_round_trip(self, tiny_clip, fast_params):
        track = AnnotationPipeline(fast_params, policy="hebs").annotate(tiny_clip)
        data = track.to_bytes()
        assert data[:4] == b"ANL2"
        restored = AnnotationTrack.from_bytes(data, clip_name=track.clip_name)
        assert restored.policy == "hebs"
        assert [s.payload for s in restored.scenes] == [
            s.payload for s in track.scenes
        ]
        assert restored.to_bytes() == data

    def test_extended_device_round_trip(self, tiny_clip, fast_params, device):
        track = AnnotationPipeline(fast_params, policy="spatial").annotate(tiny_clip)
        bound = track.bind(device)
        data = bound.to_bytes()
        assert data[:4] == b"AND2"
        restored = DeviceAnnotationTrack.from_bytes(
            data, clip_name=bound.clip_name, device_name=bound.device_name
        )
        assert restored.policy == "spatial"
        assert [s.payload for s in restored.scenes] == [
            s.payload for s in bound.scenes
        ]
        assert restored.to_bytes() == data

    def test_mixed_policy_track_rejected(self):
        scenes = [
            SceneAnnotation(0, 4, 0.5),
            SceneAnnotation(4, 8, 0.5, policy="spatial", payload=b"\x02"),
        ]
        with pytest.raises(ValueError, match="mixed"):
            AnnotationTrack("clip", 8, 30.0, 0.05, scenes)

    def test_smoothing_refuses_non_default_tracks(
        self, tiny_clip, fast_params, device
    ):
        bound = AnnotationPipeline(fast_params, policy="hebs").annotate(
            tiny_clip
        ).bind(device)
        with pytest.raises(ValueError, match="smoothing supports only"):
            smooth_track(bound, device)


class TestPipelineIntegration:
    @pytest.mark.parametrize("policy", ["hebs", "spatial"])
    def test_streams_play_end_to_end(self, tiny_clip, fast_params, device, policy):
        stream = AnnotationPipeline(fast_params, policy=policy).build_stream(
            tiny_clip, device
        )
        frame = stream.compensated_frame(0)
        assert frame.frame.pixels.shape == tiny_clip.frame(0).pixels.shape
        chunks = list(stream.iter_chunks(chunk_size=7))
        total = sum(c.pixels.shape[0] for c in chunks)
        assert total == tiny_clip.frame_count

    @pytest.mark.parametrize("policy", ["hebs", "spatial"])
    def test_chunked_matches_per_frame_compensation(
        self, tiny_clip, fast_params, device, policy
    ):
        stream = AnnotationPipeline(fast_params, policy=policy).build_stream(
            tiny_clip, device
        )
        for chunk in stream.iter_chunks(chunk_size=7):
            for offset in range(chunk.pixels.shape[0]):
                index = chunk.start + offset
                expected = stream.compensated_frame(index)
                assert np.array_equal(
                    chunk.pixels[offset], expected.frame.pixels
                ), f"frame {index} diverges under {policy}"

    def test_clipped_fractions_consistent(self, tiny_clip, fast_params, device):
        stream = AnnotationPipeline(fast_params, policy="hebs").build_stream(
            tiny_clip, device
        )
        per_frame = np.array([
            stream.compensated_frame(i).clipped_fraction
            for i in range(tiny_clip.frame_count)
        ])
        assert stream.mean_clipped_fraction() == pytest.approx(per_frame.mean())

    def test_policy_telemetry_labels(self, tiny_clip, fast_params, device):
        from repro.telemetry import registry

        AnnotationPipeline(fast_params).build_stream(tiny_clip, device)
        AnnotationPipeline(fast_params, policy="hebs").build_stream(
            tiny_clip, device
        )
        reg = registry()
        scenes_default = reg.get(
            "repro_policy_scenes_total", labels={"policy": CLIP_QUALITY_POLICY}
        )
        scenes_hebs = reg.get(
            "repro_policy_scenes_total", labels={"policy": "hebs"}
        )
        assert scenes_default is not None and scenes_default.value > 0
        assert scenes_hebs is not None and scenes_hebs.value > 0

    def test_server_distinguishes_policies(self, tiny_clip, fast_params, device):
        from repro.streaming import MediaServer, MobileClient

        plays = {}
        for policy in (None, "hebs"):
            server = MediaServer(params=fast_params, policy=policy)
            server.add_clip(tiny_clip)
            client = MobileClient(device)
            session = server.open_session(client.request(tiny_clip.name, 0.05))
            plays[policy] = client.play_stream(
                session, list(server.stream(session))
            )
        assert plays[None].total_savings != pytest.approx(
            plays["hebs"].total_savings
        ) or not np.array_equal(
            plays[None].applied_levels, plays["hebs"].applied_levels
        )
