"""Unit tests for repro.core.pipeline — the end-to-end technique."""

import numpy as np
import pytest

from repro.core import (
    AnnotatedStream,
    AnnotationPipeline,
    SchemeParameters,
    sweep_quality_levels,
)
from repro.display import MAX_BACKLIGHT_LEVEL, ipaq_5555, ipaq_3650


@pytest.fixture
def device():
    return ipaq_5555()


@pytest.fixture
def pipeline(fast_params):
    return AnnotationPipeline(fast_params)


class TestProfile:
    def test_profile_products(self, pipeline, tiny_clip):
        profile = pipeline.profile(tiny_clip)
        assert len(profile.stats) == tiny_clip.frame_count
        assert profile.scenes[0].start == 0
        assert profile.scenes[-1].end == tiny_clip.frame_count

    def test_figure6_series_shapes(self, pipeline, tiny_clip):
        profile = pipeline.profile(tiny_clip)
        assert profile.max_luminance_series().shape == (tiny_clip.frame_count,)
        assert profile.scene_max_series().shape == (tiny_clip.frame_count,)

    def test_scene_max_dominates_frame_max(self, pipeline, library_clip):
        profile = pipeline.profile(library_clip)
        frame_max = np.array([s.max_value(True) for s in profile.stats])
        scene_max = profile.scene_max_series()
        assert np.all(scene_max >= frame_max - 1e-9)


class TestAnnotate:
    def test_track_metadata(self, pipeline, tiny_clip):
        track = pipeline.annotate(tiny_clip)
        assert track.clip_name == "tiny"
        assert track.frame_count == tiny_clip.frame_count
        assert track.quality == pipeline.params.quality

    def test_track_covers_clip(self, pipeline, tiny_clip):
        track = pipeline.annotate(tiny_clip)
        assert track.scenes[0].start == 0
        assert track.scenes[-1].end == tiny_clip.frame_count

    def test_profile_reuse(self, pipeline, tiny_clip):
        profile = pipeline.profile(tiny_clip)
        a = pipeline.annotate(tiny_clip, profile=profile)
        b = pipeline.annotate(tiny_clip)
        assert [(s.start, s.end) for s in a.scenes] == [(s.start, s.end) for s in b.scenes]

    def test_bright_scene_needs_more_light(self, pipeline, tiny_clip, device):
        track = pipeline.annotate_for_device(tiny_clip, device)
        levels = track.per_frame_levels()
        assert levels[18] > levels[3]  # bright middle scene vs dark opening


class TestAnnotatedStream:
    def test_iteration_yields_pairs(self, pipeline, tiny_clip, device):
        stream = pipeline.build_stream(tiny_clip, device)
        pairs = list(stream)
        assert len(pairs) == tiny_clip.frame_count
        frame, level = pairs[0]
        assert 0 <= level <= MAX_BACKLIGHT_LEVEL

    def test_quality_budget_enforced(self, device, library_clip):
        """The headline guarantee: compensated frames clip at most q."""
        for q in (0.0, 0.05, 0.10, 0.20):
            params = SchemeParameters(quality=q, min_scene_interval_frames=5)
            stream = AnnotationPipeline(params).build_stream(library_clip, device)
            for i in range(0, library_clip.frame_count, 5):
                clipped = stream.compensated_frame(i).clipped_fraction
                assert clipped <= q + 0.01, f"q={q} frame={i} clipped={clipped}"

    def test_lossless_never_clips(self, device, tiny_clip):
        params = SchemeParameters(quality=0.0, min_scene_interval_frames=5)
        stream = AnnotationPipeline(params).build_stream(tiny_clip, device)
        assert stream.mean_clipped_fraction() == 0.0

    def test_compensated_view_matches_original(self, pipeline, tiny_clip, device):
        """Perceived intensity preserved for unclipped pixels (the physics
        check on the full pipeline)."""
        from repro.display import render_frame
        stream = pipeline.build_stream(tiny_clip, device)
        i = 3
        original = tiny_clip.frame(i)
        comp = stream.compensated_frame(i).frame
        level = int(stream.backlight_levels()[i])
        ref_view = render_frame(original, MAX_BACKLIGHT_LEVEL, device)
        comp_view = render_frame(comp, level, device)
        unclipped = original.peak_channel * stream.track.per_frame_gains()[i] <= 1.0
        diff = np.abs(ref_view - comp_view)[unclipped]
        assert diff.max() < 0.03

    def test_savings_bounds(self, pipeline, tiny_clip, device):
        stream = pipeline.build_stream(tiny_clip, device)
        assert 0.0 <= stream.predicted_backlight_savings() < 1.0

    def test_instantaneous_savings_shape(self, pipeline, tiny_clip, device):
        stream = pipeline.build_stream(tiny_clip, device)
        inst = stream.instantaneous_savings()
        assert inst.shape == (tiny_clip.frame_count,)
        assert np.all((0.0 <= inst) & (inst <= 1.0))
        assert stream.predicted_backlight_savings() == pytest.approx(inst.mean(), abs=0.01)

    def test_track_clip_mismatch(self, pipeline, tiny_clip, library_clip, device):
        track = pipeline.annotate_for_device(tiny_clip, device)
        with pytest.raises(ValueError, match="frames"):
            AnnotatedStream(clip=library_clip, track=track, device=device)

    def test_repr(self, pipeline, tiny_clip, device):
        assert "tiny" in repr(pipeline.build_stream(tiny_clip, device))


class TestHistogramFractions:
    """Clipped fractions derived from profile histograms (the wire-path
    hot loop's shortcut) must match the pixel-path reduction bit for
    bit, and only the plain analyzer's exact counts may seed them."""

    def test_bit_identical_to_pixel_path(self, pipeline, tiny_clip, device):
        stream = pipeline.build_stream(tiny_clip, device)
        via_hist = stream._histogram_fractions()
        assert via_hist is not None, "plain-analyzer stream carries stats"
        assert via_hist.max() > 0.0, "a clipping scene exercises the sums"

        bare = AnnotatedStream(
            clip=tiny_clip, track=stream.track, device=device
        )
        assert bare._histogram_fractions() is None
        assert np.array_equal(via_hist, bare._all_clipped_fractions())

    def test_quality_metrics_share_the_cache(self, pipeline, tiny_clip, device):
        stream = pipeline.build_stream(tiny_clip, device)
        bare = AnnotatedStream(
            clip=tiny_clip, track=stream.track, device=device
        )
        assert stream.mean_clipped_fraction() == bare.mean_clipped_fraction()

    def test_weighted_analyzer_never_seeds_histograms(self, tiny_clip, device,
                                                      fast_params):
        from repro.core import ImportanceMap

        shape = tiny_clip.frame_shape()
        roi = AnnotationPipeline(
            fast_params, importance=ImportanceMap.uniform(*shape)
        )
        stream = roi.build_stream(tiny_clip, device)
        assert stream._profile_stats is None
        assert stream._histogram_fractions() is None


class TestQualitySweep:
    def test_savings_monotone_in_quality(self, device, library_clip, fast_params):
        """More clipping budget can never save less power (Figure 9)."""
        streams = sweep_quality_levels(
            library_clip, device, (0.0, 0.05, 0.10, 0.15, 0.20), params=fast_params
        )
        savings = [s.predicted_backlight_savings() for s in streams]
        for a, b in zip(savings, savings[1:]):
            assert b >= a - 1e-9

    def test_sweep_labels_quality(self, device, tiny_clip, fast_params):
        streams = sweep_quality_levels(tiny_clip, device, (0.0, 0.2), params=fast_params)
        assert streams[0].track.quality == 0.0
        assert streams[1].track.quality == 0.2


class TestDeviceDependence:
    def test_devices_get_different_levels(self, tiny_clip, fast_params):
        """'Device specific are the actual backlight levels' — different
        transfer curves yield different schedules from the same track."""
        pipeline = AnnotationPipeline(fast_params)
        track = pipeline.annotate(tiny_clip)
        a = track.bind(ipaq_5555()).per_frame_levels()
        b = track.bind(ipaq_3650()).per_frame_levels()
        assert not np.array_equal(a, b)

    def test_color_safe_vs_literal(self, library_clip, device):
        """Paper-literal luminance analysis saves at least as much power
        (it ignores channel saturation) but violates the clip budget on
        tinted content."""
        q = 0.05
        safe = AnnotationPipeline(
            SchemeParameters(quality=q, min_scene_interval_frames=5, color_safe=True)
        ).build_stream(library_clip, device)
        literal = AnnotationPipeline(
            SchemeParameters(quality=q, min_scene_interval_frames=5, color_safe=False)
        ).build_stream(library_clip, device)
        assert (
            literal.predicted_backlight_savings()
            >= safe.predicted_backlight_savings() - 1e-9
        )
        assert literal.mean_clipped_fraction(sample_every=5) > q
