"""Unit tests for repro.core.smoothing (backlight transition ramps)."""

import numpy as np
import pytest

from repro.core import (
    AnnotationPipeline,
    max_level_step,
    ramped_levels,
    smooth_track,
)
from repro.display import ipaq_5555, ipaq_3650


@pytest.fixture
def device():
    return ipaq_5555()


@pytest.fixture
def track(tiny_clip, fast_params, device):
    return AnnotationPipeline(fast_params.with_quality(0.10)).annotate_for_device(
        tiny_clip, device
    )


class TestRampedLevels:
    def test_step_spread_linearly(self):
        levels = np.array([100] * 5 + [200] * 10)
        out = ramped_levels(levels, ramp_frames=5)
        assert out[4] == 100
        assert out[5] == 120
        assert out[9] == 200
        assert np.all(out[9:] == 200)

    def test_ramp_one_is_identity(self):
        levels = np.array([10, 200, 50, 50])
        assert np.array_equal(ramped_levels(levels, 1), levels)

    def test_constant_untouched(self):
        levels = np.full(10, 77)
        assert np.array_equal(ramped_levels(levels, 6), levels)

    def test_monotone_during_single_ramp(self):
        levels = np.array([0] * 3 + [255] * 20)
        out = ramped_levels(levels, 8)
        ramp = out[2:12]
        assert np.all(np.diff(ramp) >= 0)

    def test_interrupted_ramp_restarts_from_current(self):
        levels = np.array([0] * 2 + [255] * 3 + [0] * 10)
        out = ramped_levels(levels, 10)
        # never reached 255; turns around from wherever it got to
        assert out.max() < 255

    def test_validation(self):
        with pytest.raises(ValueError):
            ramped_levels(np.array([1, 2]), 0)
        with pytest.raises(ValueError):
            ramped_levels(np.array([]), 2)


class TestMaxLevelStep:
    def test_step_measured(self):
        assert max_level_step(np.array([0, 100, 90])) == 100

    def test_constant_zero(self):
        assert max_level_step(np.array([5, 5, 5])) == 0

    def test_single_frame(self):
        assert max_level_step(np.array([9])) == 0


class TestSmoothTrack:
    def test_reduces_max_step(self, track, device):
        raw_step = max_level_step(track.per_frame_levels())
        smoothed = smooth_track(track, device, ramp_frames=8)
        assert max_level_step(smoothed.per_frame_levels()) < raw_step

    def test_same_coverage(self, track, device):
        smoothed = smooth_track(track, device, ramp_frames=8)
        assert smoothed.frame_count == track.frame_count
        assert smoothed.scenes[0].start == 0
        assert smoothed.scenes[-1].end == track.frame_count

    def test_gains_match_levels_every_frame(self, track, device):
        """Fidelity invariant: each frame's gain is derived from the level
        actually applied that frame."""
        smoothed = smooth_track(track, device, ramp_frames=8)
        levels = smoothed.per_frame_levels()
        gains = smoothed.per_frame_gains()
        transfer = device.transfer
        for i in range(smoothed.frame_count):
            if levels[i] > 0:
                expected = max(transfer.compensation_gain_for_level(int(levels[i])), 1.0)
                assert gains[i] == pytest.approx(expected), f"frame {i}"

    def test_steady_state_levels_unchanged(self, track, device):
        """Away from scene boundaries the schedule is untouched."""
        smoothed = smooth_track(track, device, ramp_frames=4)
        raw = track.per_frame_levels()
        out = smoothed.per_frame_levels()
        # the last frame of each long scene has converged to the target
        for scene in track.scenes:
            if scene.length > 6:
                assert out[scene.end - 1] == raw[scene.end - 1]

    def test_savings_barely_affected(self, track, device):
        from repro.power import simulated_backlight_savings
        raw = simulated_backlight_savings(track.per_frame_levels(), device)
        smoothed = smooth_track(track, device, ramp_frames=8)
        new = simulated_backlight_savings(smoothed.per_frame_levels(), device)
        assert new == pytest.approx(raw, abs=0.05)

    def test_device_mismatch_rejected(self, track):
        with pytest.raises(ValueError, match="bound to"):
            smooth_track(track, ipaq_3650(), ramp_frames=4)

    def test_result_serializes(self, track, device):
        from repro.core import DeviceAnnotationTrack
        smoothed = smooth_track(track, device, ramp_frames=8)
        restored = DeviceAnnotationTrack.from_bytes(smoothed.to_bytes())
        assert np.array_equal(
            restored.per_frame_levels(), smoothed.per_frame_levels()
        )
