"""Unit tests for repro.core.analyzer."""

import numpy as np
import pytest

from repro.core import FrameStats, StreamAnalyzer
from repro.video import Frame


class TestFrameStats:
    def test_of_solid_frame(self):
        stats = FrameStats.of(Frame.solid_gray(4, 4, 128, index=3))
        assert stats.index == 3
        assert stats.max_luminance == pytest.approx(128 / 255)
        assert stats.mean_luminance == pytest.approx(128 / 255)
        assert stats.max_channel_value == pytest.approx(128 / 255)

    def test_max_luminance_matches_frame(self, dark_frame):
        stats = FrameStats.of(dark_frame)
        assert stats.max_luminance == pytest.approx(dark_frame.max_luminance, abs=1 / 255)

    def test_channel_vs_luminance_on_color(self):
        stats = FrameStats.of(Frame.solid(2, 2, (0, 0, 255)))  # pure blue
        assert stats.max_channel_value == pytest.approx(1.0)
        assert stats.max_luminance == pytest.approx(0.114, abs=1 / 255)

    def test_max_value_mode_switch(self):
        stats = FrameStats.of(Frame.solid(2, 2, (0, 0, 255)))
        assert stats.max_value(color_safe=True) > stats.max_value(color_safe=False)

    def test_effective_max_zero_is_max(self, dark_frame):
        stats = FrameStats.of(dark_frame)
        assert stats.effective_max(0.0) == pytest.approx(stats.max_channel_value)
        assert stats.effective_max(0.0, color_safe=False) == pytest.approx(
            stats.max_luminance
        )

    def test_effective_max_monotone(self, dark_frame):
        stats = FrameStats.of(dark_frame)
        values = [stats.effective_max(q) for q in (0.0, 0.05, 0.1, 0.2)]
        assert values == sorted(values, reverse=True)

    def test_effective_max_luminance_alias(self, dark_frame):
        stats = FrameStats.of(dark_frame)
        assert stats.effective_max_luminance(0.05) == stats.effective_max(
            0.05, color_safe=False
        )

    def test_color_safe_at_least_as_bright(self, dark_frame):
        """Peak channel dominates luminance, so the color-safe effective
        max can never be below the luminance one."""
        stats = FrameStats.of(dark_frame)
        for q in (0.0, 0.05, 0.2):
            assert stats.effective_max(q, True) >= stats.effective_max(q, False) - 1 / 255


class TestStreamAnalyzer:
    def test_analyze_clip(self, tiny_clip):
        stats = StreamAnalyzer().analyze(tiny_clip)
        assert len(stats) == tiny_clip.frame_count
        assert [s.index for s in stats] == list(range(tiny_clip.frame_count))

    def test_analyze_frames_iterator(self, tiny_clip):
        stats = StreamAnalyzer().analyze_frames(iter(tiny_clip))
        assert len(stats) == tiny_clip.frame_count

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="no frames"):
            StreamAnalyzer().analyze_frames(iter([]))

    def test_max_luminance_series(self, tiny_clip):
        stats = StreamAnalyzer().analyze(tiny_clip)
        series = StreamAnalyzer.max_luminance_series(stats)
        assert series.shape == (tiny_clip.frame_count,)
        # the bright middle scene has higher max than dark scenes' background
        assert series[18] > 0.8

    def test_effective_max_series_below_max(self, tiny_clip):
        stats = StreamAnalyzer().analyze(tiny_clip)
        maxes = StreamAnalyzer.max_value_series(stats)
        eff = StreamAnalyzer.effective_max_series(stats, 0.10)
        assert np.all(eff <= maxes + 1e-12)

    def test_series_modes_differ_on_tinted_content(self, library_clip):
        stats = StreamAnalyzer().analyze(library_clip)
        safe = StreamAnalyzer.max_value_series(stats, color_safe=True)
        literal = StreamAnalyzer.max_value_series(stats, color_safe=False)
        assert np.all(safe >= literal - 1e-12)
        assert np.any(safe > literal + 1 / 255)
