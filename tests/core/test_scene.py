"""Unit tests for repro.core.scene."""

import numpy as np
import pytest

from repro.core import FrameStats, Scene, SceneDetector, SchemeParameters, StreamAnalyzer
from repro.video import Frame


def _stats_from_maxima(maxima):
    """Build FrameStats for solid frames whose max luminance is scripted."""
    frames = [
        Frame.solid_gray(4, 4, int(round(m * 255)), index=i)
        for i, m in enumerate(maxima)
    ]
    return StreamAnalyzer().analyze_frames(frames)


class TestSceneDataclass:
    def test_valid(self):
        scene = Scene(0, 10, 0.5)
        assert scene.length == 10
        assert 0 in scene and 9 in scene and 10 not in scene

    @pytest.mark.parametrize("args", [(5, 5, 0.5), (-1, 3, 0.5), (0, 3, 1.5)])
    def test_invalid(self, args):
        with pytest.raises(ValueError):
            Scene(*args)


class TestDetection:
    def test_constant_stream_single_scene(self):
        stats = _stats_from_maxima([0.5] * 20)
        scenes = SceneDetector().detect(stats)
        assert len(scenes) == 1
        assert scenes[0].start == 0 and scenes[0].end == 20

    def test_step_change_detected(self):
        params = SchemeParameters(min_scene_interval_frames=3)
        stats = _stats_from_maxima([0.3] * 10 + [0.8] * 10)
        scenes = SceneDetector(params).detect(stats)
        assert len(scenes) == 2
        assert scenes[0].end == 10

    def test_small_change_ignored(self):
        """A 5 % change stays below the 10 % threshold."""
        stats = _stats_from_maxima([0.60] * 10 + [0.62] * 10)
        scenes = SceneDetector(SchemeParameters(min_scene_interval_frames=3)).detect(stats)
        assert len(scenes) == 1

    def test_downward_change_detected(self):
        params = SchemeParameters(min_scene_interval_frames=3)
        stats = _stats_from_maxima([0.8] * 10 + [0.3] * 10)
        scenes = SceneDetector(params).detect(stats)
        assert len(scenes) == 2

    def test_rate_limit_suppresses_flicker(self):
        """Alternating bright/dark frames faster than the interval must
        not split into scenes ('minimizing visible spikes')."""
        maxima = [0.3, 0.8] * 15
        params = SchemeParameters(min_scene_interval_frames=10)
        scenes = SceneDetector(params).detect(_stats_from_maxima(maxima))
        for scene in scenes:
            assert scene.length >= 10 or scene.end == len(maxima)

    def test_rate_limit_absorbs_into_scene_max(self):
        """Suppressed bright frames still raise the scene max (no clipping
        surprise)."""
        maxima = [0.3] * 5 + [0.9] + [0.3] * 5
        params = SchemeParameters(min_scene_interval_frames=20)
        scenes = SceneDetector(params).detect(_stats_from_maxima(maxima))
        assert len(scenes) == 1
        assert scenes[0].max_luminance == pytest.approx(0.9, abs=1 / 255)

    def test_scene_max_is_member_max(self):
        stats = _stats_from_maxima([0.3, 0.4, 0.35] * 5)
        scenes = SceneDetector(SchemeParameters(min_scene_interval_frames=3)).detect(stats)
        for scene in scenes:
            member_max = max(s.max_luminance for s in stats[scene.start:scene.end])
            assert scene.max_luminance == pytest.approx(member_max, abs=1e-9)

    def test_partition_always_valid(self, library_clip):
        stats = StreamAnalyzer().analyze(library_clip)
        for interval in (1, 5, 15):
            params = SchemeParameters(min_scene_interval_frames=interval)
            scenes = SceneDetector(params).detect(stats)
            SceneDetector.validate_partition(scenes, len(stats))

    def test_per_frame_mode(self):
        stats = _stats_from_maxima([0.1, 0.5, 0.9])
        scenes = SceneDetector(SchemeParameters(per_frame=True)).detect(stats)
        assert len(scenes) == 3
        assert all(s.length == 1 for s in scenes)

    def test_empty_stream(self):
        with pytest.raises(ValueError):
            SceneDetector().detect([])

    def test_near_black_reference_stable(self):
        """Numeric dust on near-black frames must not fragment scenes."""
        maxima = [0.004, 0.008, 0.004, 0.008] * 10
        scenes = SceneDetector(SchemeParameters(min_scene_interval_frames=2)).detect(
            _stats_from_maxima(maxima)
        )
        assert len(scenes) == 1

    def test_ground_truth_boundaries_found(self, tiny_clip, tiny_clip_factory):
        """Detector boundaries line up with the synthesis script."""
        stats = StreamAnalyzer().analyze(tiny_clip)
        params = SchemeParameters(min_scene_interval_frames=4)
        scenes = SceneDetector(params).detect(stats)
        starts = {s.start for s in scenes}
        # The dark->bright and bright->dark cuts at 12 and 24 must appear.
        assert 12 in starts
        assert 24 in starts


class TestHelpers:
    def test_scene_of(self):
        scenes = [Scene(0, 5, 0.5), Scene(5, 10, 0.8)]
        assert SceneDetector.scene_of(scenes, 7) is scenes[1]
        with pytest.raises(IndexError):
            SceneDetector.scene_of(scenes, 10)

    def test_validate_partition_errors(self):
        with pytest.raises(ValueError, match="no scenes"):
            SceneDetector.validate_partition([], 5)
        with pytest.raises(ValueError, match="starts at"):
            SceneDetector.validate_partition([Scene(1, 5, 0.5)], 5)
        with pytest.raises(ValueError, match="gap"):
            SceneDetector.validate_partition([Scene(0, 2, 0.5), Scene(3, 5, 0.5)], 5)
        with pytest.raises(ValueError, match="ends at"):
            SceneDetector.validate_partition([Scene(0, 4, 0.5)], 5)

    def test_scene_max_series(self):
        scenes = [Scene(0, 2, 0.3), Scene(2, 4, 0.9)]
        series = SceneDetector.scene_max_series(scenes, 4)
        assert series == pytest.approx([0.3, 0.3, 0.9, 0.9])
