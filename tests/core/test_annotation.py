"""Unit tests for repro.core.annotation."""

import numpy as np
import pytest

from repro.core import (
    AnnotationTrack,
    DeviceAnnotationTrack,
    DeviceSceneAnnotation,
    SceneAnnotation,
)
from repro.display import ipaq_5555


def _track(scene_spec, quality=0.05, fps=30.0, name="clip"):
    scenes = []
    start = 0
    for length, lum in scene_spec:
        scenes.append(SceneAnnotation(start, start + length, lum))
        start += length
    return AnnotationTrack(name, start, fps, quality, scenes)


class TestSceneAnnotation:
    def test_length(self):
        assert SceneAnnotation(3, 10, 0.5).length == 7

    @pytest.mark.parametrize("args", [(5, 5, 0.5), (-1, 2, 0.5), (0, 2, 1.5)])
    def test_invalid(self, args):
        with pytest.raises(ValueError):
            SceneAnnotation(*args)


class TestDeviceSceneAnnotation:
    @pytest.mark.parametrize("args", [
        (0, 0, 100, 1.0), (0, 5, 300, 1.0), (0, 5, 100, 0.5),
    ])
    def test_invalid(self, args):
        with pytest.raises(ValueError):
            DeviceSceneAnnotation(*args)


class TestAnnotationTrack:
    def test_contiguity_enforced(self):
        scenes = [SceneAnnotation(0, 5, 0.5), SceneAnnotation(6, 10, 0.5)]
        with pytest.raises(ValueError, match="gap"):
            AnnotationTrack("c", 10, 30.0, 0.0, scenes)

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError, match="frame 0"):
            AnnotationTrack("c", 10, 30.0, 0.0, [SceneAnnotation(1, 10, 0.5)])

    def test_must_cover_clip(self):
        with pytest.raises(ValueError, match="cover"):
            AnnotationTrack("c", 10, 30.0, 0.0, [SceneAnnotation(0, 9, 0.5)])

    def test_per_frame_expansion(self):
        track = _track([(3, 0.2), (2, 0.8)])
        assert track.per_frame_effective_max() == pytest.approx([0.2, 0.2, 0.2, 0.8, 0.8])

    def test_serialization_round_trip(self):
        track = _track([(30, 0.25), (45, 0.8), (25, 0.4)], quality=0.15, fps=24.0)
        restored = AnnotationTrack.from_bytes(track.to_bytes(), clip_name="clip")
        assert restored.frame_count == track.frame_count
        assert restored.fps == pytest.approx(24.0)
        assert restored.quality == pytest.approx(0.15)
        assert len(restored.scenes) == 3
        for a, b in zip(track.scenes, restored.scenes):
            assert (a.start, a.end) == (b.start, b.end)
            assert b.effective_max_luminance == pytest.approx(
                a.effective_max_luminance, abs=1 / 255
            )

    def test_from_bytes_wrong_magic(self):
        with pytest.raises(ValueError, match="not a luminance"):
            AnnotationTrack.from_bytes(b"XXXX" + b"\x00" * 10)

    def test_nbytes_small(self):
        """Hundreds-of-bytes overhead claim: a 20-scene track is tiny."""
        track = _track([(30, 0.1 + 0.04 * i) for i in range(20)])
        assert track.nbytes < 100

    def test_repr(self):
        assert "quality=5%" in repr(_track([(5, 0.5)]))


class TestBinding:
    @pytest.fixture
    def device(self):
        return ipaq_5555()

    def test_bind_levels_supply_luminance(self, device):
        track = _track([(10, 0.3), (10, 0.9)])
        bound = track.bind(device)
        for scene, lum_scene in zip(bound.scenes, track.scenes):
            supplied = float(
                device.transfer.backlight.luminance(scene.backlight_level)
            )
            needed = float(
                device.transfer.white.luminance(lum_scene.effective_max_luminance)
            )
            assert supplied >= needed - 1e-9

    def test_bind_preserves_boundaries(self, device):
        track = _track([(10, 0.3), (20, 0.9), (5, 0.1)])
        bound = track.bind(device)
        assert [(s.start, s.end) for s in bound.scenes] == [(0, 10), (10, 30), (30, 35)]

    def test_brighter_scene_higher_level(self, device):
        track = _track([(10, 0.3), (10, 0.9)])
        bound = track.bind(device)
        assert bound.scenes[1].backlight_level > bound.scenes[0].backlight_level

    def test_gain_matches_level(self, device):
        track = _track([(10, 0.4)])
        bound = track.bind(device)
        scene = bound.scenes[0]
        expected = device.transfer.compensation_gain_for_level(scene.backlight_level)
        assert scene.compensation_gain == pytest.approx(max(expected, 1.0))

    def test_metadata_carried(self, device):
        bound = _track([(5, 0.5)], quality=0.1, name="shrek2").bind(device)
        assert bound.device_name == "ipaq5555"
        assert bound.clip_name == "shrek2"
        assert bound.quality == 0.1


class TestDeviceAnnotationTrack:
    @pytest.fixture
    def bound(self):
        return _track([(10, 0.3), (20, 0.9), (5, 0.1)]).bind(ipaq_5555())

    def test_per_frame_levels(self, bound):
        levels = bound.per_frame_levels()
        assert levels.shape == (35,)
        assert len(set(levels[:10])) == 1
        assert len(set(levels[10:30])) == 1

    def test_per_frame_gains_match_levels(self, bound):
        gains = bound.per_frame_gains()
        levels = bound.per_frame_levels()
        # same level -> same gain
        assert len(set(zip(levels.tolist(), np.round(gains, 6).tolist()))) == len(
            set(levels.tolist())
        )

    def test_switch_count(self, bound):
        assert bound.switch_count() == 2

    def test_gain_for_frame(self, bound):
        assert bound.gain_for_frame(0) == bound.per_frame_gains()[0]
        with pytest.raises(IndexError):
            bound.gain_for_frame(35)

    def test_serialization_round_trip(self, bound):
        restored = DeviceAnnotationTrack.from_bytes(
            bound.to_bytes(), clip_name=bound.clip_name, device_name=bound.device_name
        )
        assert restored.frame_count == bound.frame_count
        assert np.array_equal(restored.per_frame_levels(), bound.per_frame_levels())
        assert restored.per_frame_gains() == pytest.approx(
            bound.per_frame_gains(), abs=1 / 128
        )

    def test_from_bytes_wrong_magic(self):
        with pytest.raises(ValueError, match="not a device"):
            DeviceAnnotationTrack.from_bytes(b"ANL1" + b"\x00" * 10)

    def test_nbytes_hundreds_for_long_clip(self):
        """A 3-minute clip with 60 scenes still serializes to O(100 B)."""
        scenes = [(90, 0.1 + (i % 10) * 0.05) for i in range(60)]
        bound = _track(scenes).bind(ipaq_5555())
        assert bound.nbytes < 400

    def test_repr(self, bound):
        assert "ipaq5555" in repr(bound)
