"""Engine equivalence: every execution engine is bit-identical.

The chunked engine is only allowed to be the default because it produces
byte-for-byte the same FrameStats, histograms, compensated pixels and
clipped fractions as the paper-literal per-frame path.  These tests pin
that contract, including the awkward geometries: chunk_size 1, odd
remainders, and chunk_size larger than the clip.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    AnnotationPipeline,
    EngineConfig,
    SchemeParameters,
    StreamAnalyzer,
    contrast_enhancement,
    contrast_enhancement_batch,
    resolve_engine,
)
from repro.display import ipaq_5555
from repro.video import ArrayClip, Frame, FrameChunk, VideoClip

# Small random clips: N frames of identical (H, W), arbitrary uint8 content.
clip_batches = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(1, 12), st.integers(2, 10), st.integers(2, 10), st.just(3)),
    elements=st.integers(0, 255),
)

chunk_sizes = st.integers(1, 20)


def assert_stats_identical(a, b):
    assert a.index == b.index
    assert a.max_luminance == b.max_luminance
    assert a.max_channel_value == b.max_channel_value
    assert a.mean_luminance == b.mean_luminance
    assert np.array_equal(a.histogram.counts, b.histogram.counts)
    assert np.array_equal(a.channel_histogram.counts, b.channel_histogram.counts)


class TestAnalyzerEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(batch=clip_batches, chunk_size=chunk_sizes)
    def test_chunked_bit_identical_to_perframe(self, batch, chunk_size):
        clip = ArrayClip(batch, name="prop")
        reference = StreamAnalyzer("perframe").analyze(clip)
        chunked = StreamAnalyzer(EngineConfig(kind="chunked", chunk_size=chunk_size)).analyze(clip)
        assert len(chunked) == len(reference)
        for ref, got in zip(reference, chunked):
            assert_stats_identical(ref, got)

    @settings(max_examples=10, deadline=None)
    @given(batch=clip_batches)
    def test_threads_bit_identical_to_perframe(self, batch):
        clip = ArrayClip(batch, name="prop")
        reference = StreamAnalyzer("perframe").analyze(clip)
        threaded = StreamAnalyzer(
            EngineConfig(kind="threads", chunk_size=3, max_workers=2)
        ).analyze(clip)
        for ref, got in zip(reference, threaded):
            assert_stats_identical(ref, got)

    def test_chunk_size_larger_than_clip(self):
        rng = np.random.default_rng(0)
        clip = ArrayClip(rng.integers(0, 256, (5, 6, 6, 3), dtype=np.uint8))
        reference = StreamAnalyzer("perframe").analyze(clip)
        got = StreamAnalyzer(EngineConfig(chunk_size=1000)).analyze(clip)
        for ref, g in zip(reference, got):
            assert_stats_identical(ref, g)

    def test_analyze_frames_preserves_indices(self):
        rng = np.random.default_rng(1)
        frames = [
            Frame(rng.integers(0, 256, (5, 5, 3), dtype=np.uint8), index=i)
            for i in (7, 2, 19, 4)
        ]
        stats = StreamAnalyzer().analyze_frames(frames)
        assert [s.index for s in stats] == [7, 2, 19, 4]
        reference = StreamAnalyzer("perframe").analyze_frames(frames)
        for ref, got in zip(reference, stats):
            assert_stats_identical(ref, got)

    def test_heterogeneous_stream_falls_back(self):
        rng = np.random.default_rng(2)
        frames = [
            Frame(rng.integers(0, 256, (4, 4, 3), dtype=np.uint8), index=0),
            Frame(rng.integers(0, 256, (6, 5, 3), dtype=np.uint8), index=1),
        ]
        stats = StreamAnalyzer().analyze_frames(frames)
        reference = StreamAnalyzer("perframe").analyze_frames(frames)
        for ref, got in zip(reference, stats):
            assert_stats_identical(ref, got)

    def test_empty_stream_raises_for_all_engines(self):
        for engine in ("perframe", "chunked", "threads"):
            with pytest.raises(ValueError):
                StreamAnalyzer(engine).analyze_frames([])

    def test_library_clip_matches(self, library_clip):
        reference = StreamAnalyzer("perframe").analyze(library_clip)
        chunked = StreamAnalyzer().analyze(library_clip)
        for ref, got in zip(reference, chunked):
            assert_stats_identical(ref, got)


class TestEngineResolution:
    def test_default_is_chunked(self):
        assert resolve_engine(None).kind == "chunked"

    def test_string_and_config_pass_through(self):
        assert resolve_engine("threads").kind == "threads"
        config = EngineConfig(kind="perframe")
        assert resolve_engine(config) is config

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            resolve_engine("warp")
        with pytest.raises(TypeError):
            resolve_engine(42)
        with pytest.raises(ValueError):
            EngineConfig(chunk_size=0)
        with pytest.raises(ValueError):
            EngineConfig(kind="threads", max_workers=0)


class TestBatchedCompensation:
    @settings(max_examples=30, deadline=None)
    @given(
        batch=clip_batches,
        gain=st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
    )
    def test_batch_matches_per_frame(self, batch, gain):
        pixels, fractions = contrast_enhancement_batch(batch, gain)
        for k in range(batch.shape[0]):
            reference = contrast_enhancement(Frame(batch[k]), gain)
            assert np.array_equal(pixels[k], reference.frame.pixels)
            assert fractions[k] == reference.clipped_fraction

    def test_per_frame_gains_and_passthrough(self):
        rng = np.random.default_rng(3)
        batch = rng.integers(0, 256, (4, 6, 6, 3), dtype=np.uint8)
        gains = np.array([1.0, 2.0, 0.5, 3.0])
        pixels, fractions = contrast_enhancement_batch(batch, gains)
        # gain <= 1 rows pass through untouched with zero clipping
        assert np.array_equal(pixels[0], batch[0])
        assert np.array_equal(pixels[2], batch[2])
        assert fractions[0] == 0.0 and fractions[2] == 0.0
        for k in (1, 3):
            reference = contrast_enhancement(Frame(batch[k]), float(gains[k]))
            assert np.array_equal(pixels[k], reference.frame.pixels)
            assert fractions[k] == reference.clipped_fraction

    def test_rejects_bad_inputs(self):
        batch = np.zeros((2, 4, 4, 3), dtype=np.uint8)
        with pytest.raises(ValueError):
            contrast_enhancement_batch(batch, 0.0)
        with pytest.raises(ValueError):
            contrast_enhancement_batch(batch, np.array([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError):
            contrast_enhancement_batch(batch.astype(np.float64), 2.0)
        with pytest.raises(ValueError):
            contrast_enhancement_batch(batch[0], 2.0)

    def test_output_is_fresh_memory(self):
        batch = np.full((2, 4, 4, 3), 100, dtype=np.uint8)
        pixels, _ = contrast_enhancement_batch(batch, 1.0)
        pixels[...] = 0
        assert batch[0, 0, 0, 0] == 100


class TestAnnotatedStreamEquivalence:
    def build_streams(self, clip):
        device = ipaq_5555()
        params = SchemeParameters(quality=0.05, min_scene_interval_frames=5)
        chunked = AnnotationPipeline(params).build_stream(clip, device)
        perframe = AnnotationPipeline(params, engine="perframe").build_stream(clip, device)
        return chunked, perframe

    def test_iteration_matches_per_frame_api(self, library_clip):
        clip = ArrayClip.from_clip(library_clip)
        stream, reference = self.build_streams(clip)
        for i, (frame, level) in enumerate(stream):
            ref = reference.compensated_frame(i)
            assert frame.index == i
            assert np.array_equal(frame.pixels, ref.frame.pixels)
            assert level == int(reference.backlight_levels()[i])

    def test_iter_chunks_fractions_match(self, library_clip):
        clip = ArrayClip.from_clip(library_clip)
        stream, reference = self.build_streams(clip)
        for chunk in stream.iter_chunks(chunk_size=7):
            for k in range(len(chunk)):
                ref = reference.compensated_frame(chunk.start + k)
                assert chunk.clipped_fractions[k] == ref.clipped_fraction
                assert np.array_equal(chunk.frame(k).pixels, ref.frame.pixels)

    def test_mean_clipped_fraction_matches_reference(self, library_clip):
        clip = ArrayClip.from_clip(library_clip)
        stream, reference = self.build_streams(clip)
        for sample_every in (1, 3):
            expected = float(
                np.mean(
                    [
                        reference.compensated_frame(i).clipped_fraction
                        for i in range(0, clip.frame_count, sample_every)
                    ]
                )
            )
            assert stream.mean_clipped_fraction(sample_every) == expected
        # Second call must hit the caches and agree
        assert stream.mean_clipped_fraction(3) == stream.mean_clipped_fraction(3)
