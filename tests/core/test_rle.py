"""Unit tests for repro.core.rle."""

import numpy as np
import pytest

from repro.core import (
    compression_ratio,
    decode_varint,
    encode_varint,
    expand_runs,
    rle_decode,
    rle_encode,
    runs_of,
)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 255, 300, 16383, 16384, 2**32])
    def test_round_trip(self, value):
        data = encode_varint(value)
        decoded, offset = decode_varint(data)
        assert decoded == value
        assert offset == len(data)

    def test_single_byte_below_128(self):
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_varint(b"\x80")

    def test_offset_respected(self):
        data = b"\x05" + encode_varint(300)
        value, offset = decode_varint(data, 1)
        assert value == 300
        assert offset == len(data)

    def test_overlong_rejected(self):
        with pytest.raises(ValueError, match="too long"):
            decode_varint(b"\xff" * 11)


class TestRuns:
    def test_runs_of_basic(self):
        assert runs_of([1, 1, 2, 2, 2, 3]) == [(1, 2), (2, 3), (3, 1)]

    def test_runs_of_empty(self):
        assert runs_of([]) == []

    def test_runs_of_single(self):
        assert runs_of([7]) == [(7, 1)]

    def test_expand_inverse(self):
        values = [5, 5, 5, 1, 2, 2]
        assert list(expand_runs(runs_of(values))) == values

    def test_expand_rejects_zero_length(self):
        with pytest.raises(ValueError):
            expand_runs([(1, 0)])

    def test_runs_rejects_2d(self):
        with pytest.raises(ValueError):
            runs_of(np.zeros((2, 2)))


class TestRleCodec:
    @pytest.mark.parametrize("values", [
        [0], [255], [0, 255], [128] * 1000,
        list(range(256)), [3, 3, 7, 7, 7, 3],
    ])
    def test_round_trip(self, values):
        assert list(rle_decode(rle_encode(values))) == values

    def test_empty_round_trip(self):
        assert rle_decode(rle_encode([])).size == 0

    def test_out_of_byte_range(self):
        with pytest.raises(ValueError):
            rle_encode([256])
        with pytest.raises(ValueError):
            rle_encode([-1])

    def test_constant_run_compact(self):
        """A constant 10000-frame schedule fits in a handful of bytes."""
        encoded = rle_encode([200] * 10_000)
        assert len(encoded) <= 4

    def test_trailing_garbage_rejected(self):
        data = rle_encode([1, 1, 2]) + b"\x00"
        with pytest.raises(ValueError, match="trailing"):
            rle_decode(data)

    def test_truncated_rejected(self):
        data = rle_encode([1, 1, 2])
        with pytest.raises(ValueError):
            rle_decode(data[:-1])


class TestCompressionRatio:
    def test_scene_schedules_compress_well(self):
        """Per-frame levels constant over scenes: the paper's 'overhead is
        minimal' claim."""
        levels = [50] * 300 + [200] * 300 + [80] * 300
        assert compression_ratio(levels) > 50

    def test_adversarial_input_near_one(self):
        levels = list(range(250)) * 2
        assert compression_ratio(levels) < 1.0  # RLE loses on noise

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compression_ratio([])
