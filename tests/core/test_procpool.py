"""Tests for the process-pool engine, persistent pools and the autotuner."""

import numpy as np
import pytest

from repro.core import (
    EngineConfig,
    ProcessEngineUnavailable,
    StreamAnalyzer,
    analyze_clip_processes,
    shutdown_pools,
)
from repro.core.engine import shared_thread_pool
from repro.core.procpool import shared_process_pool, shutdown_process_pool
from repro.video import (
    DEFAULT_CHUNK_SIZE,
    ArrayClip,
    VideoClip,
    autotune_chunk_size,
)
from repro.video.chunks import MAX_AUTOTUNE_CHUNK, MIN_AUTOTUNE_CHUNK


@pytest.fixture
def random_clip():
    rng = np.random.default_rng(42)
    pixels = rng.integers(0, 256, size=(37, 20, 28, 3), dtype=np.uint8)
    return ArrayClip(pixels, fps=24.0, name="rand")


def _assert_stats_equal(got, ref):
    assert len(got) == len(ref)
    for a, b in zip(got, ref):
        assert a.index == b.index
        assert np.array_equal(a.histogram.counts, b.histogram.counts)
        assert np.array_equal(a.channel_histogram.counts, b.channel_histogram.counts)
        assert a.max_luminance == b.max_luminance
        assert a.max_channel_value == b.max_channel_value
        assert a.mean_luminance == b.mean_luminance


class TestProcessEngine:
    def test_bit_identical_to_perframe(self, random_clip):
        ref = StreamAnalyzer("perframe").analyze(random_clip)
        got = StreamAnalyzer("processes").analyze(random_clip)
        _assert_stats_equal(got, ref)

    def test_non_array_clip(self, tiny_clip):
        ref = StreamAnalyzer("perframe").analyze(tiny_clip)
        got = StreamAnalyzer("processes").analyze(tiny_clip)
        _assert_stats_equal(got, ref)

    def test_small_chunks_many_spans(self, random_clip):
        config = EngineConfig(kind="processes", chunk_size=5)
        ref = StreamAnalyzer("chunked").analyze(random_clip)
        got = analyze_clip_processes(random_clip, config)
        _assert_stats_equal(got, ref)

    def test_heterogeneous_clip_falls_back(self):
        rng = np.random.default_rng(9)
        frames = [rng.integers(0, 256, size=(10, 12, 3), dtype=np.uint8) for _ in range(3)]
        frames += [rng.integers(0, 256, size=(6, 8, 3), dtype=np.uint8) for _ in range(3)]
        clip = VideoClip(frames, fps=24.0, name="mixed")
        ref = StreamAnalyzer("perframe").analyze(clip)
        got = StreamAnalyzer("processes").analyze(clip)
        _assert_stats_equal(got, ref)

    def test_unavailable_pool_degrades_to_chunked(self, random_clip, monkeypatch):
        import repro.core.procpool as procpool

        def boom(clip, config):
            raise ProcessEngineUnavailable("forced by test")

        monkeypatch.setattr(procpool, "analyze_clip_processes", boom)
        ref = StreamAnalyzer("chunked").analyze(random_clip)
        got = StreamAnalyzer("processes").analyze(random_clip)
        _assert_stats_equal(got, ref)


class TestPersistentPools:
    def test_thread_pool_reused_across_calls(self):
        assert shared_thread_pool(2) is shared_thread_pool(2)
        assert shared_thread_pool(2) is not shared_thread_pool(3)

    def test_process_pool_reused_across_calls(self):
        assert shared_process_pool(1) is shared_process_pool(1)

    def test_shutdown_recreates_lazily(self):
        before = shared_thread_pool(2)
        shutdown_pools()
        after = shared_thread_pool(2)
        assert after is not before
        assert after.submit(lambda: 21 * 2).result() == 42

    def test_process_pool_survives_repeated_analyze(self, random_clip):
        analyzer = StreamAnalyzer("processes")
        analyzer.analyze(random_clip)
        pool = shared_process_pool(EngineConfig(kind="processes").resolved_workers())
        analyzer.analyze(random_clip)
        assert (
            shared_process_pool(EngineConfig(kind="processes").resolved_workers())
            is pool
        )

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            shared_thread_pool(0)
        with pytest.raises(ValueError):
            shared_process_pool(0)


class TestAutotuner:
    def test_bounds(self):
        assert autotune_chunk_size(1, 1) == MAX_AUTOTUNE_CHUNK
        assert autotune_chunk_size(4000, 4000) == MIN_AUTOTUNE_CHUNK

    def test_monotone_in_frame_area(self):
        sizes = [autotune_chunk_size(h, h) for h in (16, 64, 256, 1024, 4096)]
        assert sizes == sorted(sizes, reverse=True)

    def test_explicit_target_bytes(self):
        # 100x100x3 bytes/frame * 8 bytes of float64 scratch per byte
        per_frame = 100 * 100 * 3 * 8
        assert autotune_chunk_size(100, 100, target_bytes=per_frame * 20) == 20

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            autotune_chunk_size(0, 100)
        with pytest.raises(ValueError):
            autotune_chunk_size(100, 100, target_bytes=0)

    def test_engine_config_resolution(self):
        config = EngineConfig()
        assert config.resolved_chunk_size(None) == DEFAULT_CHUNK_SIZE
        assert config.resolved_chunk_size((24, 32)) == autotune_chunk_size(24, 32)
        pinned = EngineConfig(chunk_size=7)
        assert pinned.resolved_chunk_size((24, 32)) == 7
        with pytest.raises(ValueError):
            EngineConfig(chunk_size=0)


def teardown_module(module):
    # Leave no worker processes behind for the rest of the suite.
    shutdown_process_pool()
