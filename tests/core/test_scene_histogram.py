"""Unit tests for repro.core.scene_histogram (ablation detector)."""

import pytest

from repro.core import (
    HistogramSceneDetector,
    SceneDetector,
    SchemeParameters,
    StreamAnalyzer,
)
from repro.video import Frame


def _stats(maxima):
    frames = [
        Frame.solid_gray(4, 4, int(round(m * 255)), index=i)
        for i, m in enumerate(maxima)
    ]
    return StreamAnalyzer().analyze_frames(frames)


class TestHistogramSceneDetector:
    def test_constant_stream_single_scene(self):
        scenes = HistogramSceneDetector().detect(_stats([0.5] * 20))
        assert len(scenes) == 1

    def test_content_cut_detected(self):
        params = SchemeParameters(min_scene_interval_frames=3)
        scenes = HistogramSceneDetector(params).detect(
            _stats([0.3] * 10 + [0.8] * 10)
        )
        assert len(scenes) == 2
        assert scenes[0].end == 10

    def test_partition_valid(self, library_clip):
        stats = StreamAnalyzer().analyze(library_clip)
        params = SchemeParameters(min_scene_interval_frames=5)
        scenes = HistogramSceneDetector(params, distance_threshold=0.4).detect(stats)
        SceneDetector.validate_partition(scenes, len(stats))

    def test_scene_max_covers_members(self, library_clip):
        stats = StreamAnalyzer().analyze(library_clip)
        params = SchemeParameters(min_scene_interval_frames=5)
        scenes = HistogramSceneDetector(params, distance_threshold=0.4).detect(stats)
        for scene in scenes:
            member_max = max(s.max_value(True) for s in stats[scene.start:scene.end])
            assert scene.max_luminance >= member_max - 1e-9

    def test_rate_limit(self):
        maxima = [0.3, 0.8] * 15
        params = SchemeParameters(min_scene_interval_frames=10)
        scenes = HistogramSceneDetector(params).detect(_stats(maxima))
        for scene in scenes[:-1]:
            assert scene.length >= 10

    def test_sees_cuts_max_luminance_misses(self):
        """Two dark rooms with different mid-tone distributions but equal
        maxima: the histogram detector cuts, the max-luminance one does
        not — the core of the ablation."""
        import numpy as np
        from repro.video import Frame as F

        def room(level_body):
            lum = np.full((8, 8), level_body)
            lum[0, 0] = 0.6  # identical max in both rooms
            return F.from_luminance(lum)

        frames = [room(0.10) for _ in range(10)] + [room(0.45) for _ in range(10)]
        for i, f in enumerate(frames):
            f.index = i
        stats = StreamAnalyzer().analyze_frames(frames)
        params = SchemeParameters(min_scene_interval_frames=3)
        hist_scenes = HistogramSceneDetector(params).detect(stats)
        max_scenes = SceneDetector(params).detect(stats)
        assert len(hist_scenes) == 2
        assert len(max_scenes) == 1

    def test_extra_cuts_do_not_change_power(self):
        """The backlight only consumes the scene max: splitting a
        constant-max stream into more scenes saves nothing — the paper's
        implicit argument for the simpler detector."""
        import numpy as np
        from repro.core import AnnotationTrack, SceneAnnotation
        from repro.display import ipaq_5555

        stats = _stats([0.5] * 20)
        params = SchemeParameters(min_scene_interval_frames=3)
        device = ipaq_5555()

        def track_for(scenes):
            anns = [SceneAnnotation(s.start, s.end, s.max_luminance) for s in scenes]
            return AnnotationTrack("c", 20, 30.0, 0.0, anns).bind(device)

        one = track_for(SceneDetector(params).detect(stats))
        many = track_for(HistogramSceneDetector(params).detect(stats))
        assert np.array_equal(one.per_frame_levels(), many.per_frame_levels())

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            HistogramSceneDetector(distance_threshold=0.0)
        with pytest.raises(ValueError):
            HistogramSceneDetector(distance_threshold=3.0)

    def test_empty_stream(self):
        with pytest.raises(ValueError):
            HistogramSceneDetector().detect([])
