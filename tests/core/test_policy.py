"""Unit tests for repro.core.policy."""

import pytest

from repro.core import QUALITY_LABELS, QUALITY_LEVELS, SchemeParameters, quality_label


class TestQualityLevels:
    def test_paper_levels(self):
        assert QUALITY_LEVELS == (0.0, 0.05, 0.10, 0.15, 0.20)

    def test_labels_match(self):
        assert len(QUALITY_LABELS) == len(QUALITY_LEVELS)
        for q, label in zip(QUALITY_LEVELS, QUALITY_LABELS):
            assert quality_label(q) == label

    def test_quality_label_formats(self):
        assert quality_label(0.05) == "5%"
        assert quality_label(0.0) == "0%"

    def test_quality_label_invalid(self):
        with pytest.raises(ValueError):
            quality_label(1.5)


class TestSchemeParameters:
    def test_paper_defaults(self):
        params = SchemeParameters()
        assert params.quality == 0.0
        assert params.scene_change_threshold == 0.10  # "a change of 10 % or more"
        assert params.min_scene_interval_frames == 15
        assert not params.per_frame
        assert params.color_safe

    @pytest.mark.parametrize("kwargs", [
        {"quality": -0.1}, {"quality": 1.1},
        {"scene_change_threshold": 0.0}, {"scene_change_threshold": 1.5},
        {"min_scene_interval_frames": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SchemeParameters(**kwargs)

    def test_with_quality_preserves_rest(self):
        params = SchemeParameters(
            quality=0.0, scene_change_threshold=0.2,
            min_scene_interval_frames=7, per_frame=True, color_safe=False,
        )
        updated = params.with_quality(0.15)
        assert updated.quality == 0.15
        assert updated.scene_change_threshold == 0.2
        assert updated.min_scene_interval_frames == 7
        assert updated.per_frame
        assert not updated.color_safe

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SchemeParameters().quality = 0.5
