"""Unit tests for repro.core.dvfs_annotation."""

import numpy as np
import pytest

from repro.core import (
    AnnotationPipeline,
    DvfsAnnotator,
    DvfsSceneAnnotation,
    DvfsTrack,
    Scene,
)
from repro.player import DecoderModel
from repro.power import DvfsCpuModel


@pytest.fixture
def annotator():
    return DvfsAnnotator(decoder=DecoderModel(reference_pixels=160 * 120))


class TestDvfsSceneAnnotation:
    @pytest.mark.parametrize("args", [(5, 5, 1e6), (0, 5, -1.0)])
    def test_validation(self, args):
        with pytest.raises(ValueError):
            DvfsSceneAnnotation(*args)


class TestDvfsTrack:
    def _track(self):
        return DvfsTrack("c", 10, 30.0, [
            DvfsSceneAnnotation(0, 4, 4e6),
            DvfsSceneAnnotation(4, 10, 8e6),
        ])

    def test_per_frame_cycles(self):
        cycles = self._track().per_frame_cycles()
        assert cycles.shape == (10,)
        assert cycles[0] == 4e6 and cycles[9] == 8e6

    def test_frequency_schedule(self):
        cpu = DvfsCpuModel()
        schedule = self._track().frequency_schedule(cpu)
        assert len(schedule) == 10
        # 4e6 cycles / (1/30)s = 120 MHz -> 200 MHz point;
        # 8e6 -> 240 MHz -> 300 MHz point.
        assert schedule[0].hz == 200e6
        assert schedule[9].hz == 300e6

    def test_serialization_round_trip(self):
        track = self._track()
        restored = DvfsTrack.from_bytes(track.to_bytes(), clip_name="c")
        assert restored.frame_count == 10
        assert restored.fps == pytest.approx(30.0)
        assert len(restored.scenes) == 2
        # kilocycle quantization
        assert restored.scenes[0].cycles_per_frame == pytest.approx(4e6, rel=1e-3)

    def test_from_bytes_wrong_magic(self):
        with pytest.raises(ValueError, match="not a DVFS"):
            DvfsTrack.from_bytes(b"XXXX" + b"\x00" * 8)

    def test_contiguity_enforced(self):
        with pytest.raises(ValueError, match="gap"):
            DvfsTrack("c", 10, 30.0, [
                DvfsSceneAnnotation(0, 4, 1e6),
                DvfsSceneAnnotation(5, 10, 1e6),
            ])

    def test_coverage_enforced(self):
        with pytest.raises(ValueError, match="cover"):
            DvfsTrack("c", 10, 30.0, [DvfsSceneAnnotation(0, 9, 1e6)])

    def test_nbytes_small(self):
        assert self._track().nbytes < 40


class TestDvfsAnnotator:
    def test_annotate_over_scenes(self, annotator, tiny_clip):
        scenes = [Scene(0, 12, 0.6), Scene(12, 24, 0.9), Scene(24, 36, 0.6)]
        track = annotator.annotate(tiny_clip, scenes)
        assert track.frame_count == 36
        assert len(track.scenes) == 3

    def test_scene_cycles_cover_members(self, annotator, tiny_clip):
        """Annotated cycles dominate every member frame's true cost."""
        scenes = [Scene(0, 36, 0.9)]
        track = annotator.annotate(tiny_clip, scenes)
        decoder = annotator.decoder
        worst = max(
            decoder.decode_time_s(f) * decoder.cpu_hz for f in tiny_clip
        )
        assert track.scenes[0].cycles_per_frame >= worst

    def test_headroom_applied(self, tiny_clip):
        lean = DvfsAnnotator(decoder=DecoderModel(), headroom=1.0)
        padded = DvfsAnnotator(decoder=DecoderModel(), headroom=1.5)
        scenes = [Scene(0, 36, 0.9)]
        a = lean.annotate(tiny_clip, scenes).scenes[0].cycles_per_frame
        b = padded.annotate(tiny_clip, scenes).scenes[0].cycles_per_frame
        assert b == pytest.approx(1.5 * a)

    def test_headroom_validation(self):
        with pytest.raises(ValueError):
            DvfsAnnotator(headroom=0.9)

    def test_annotate_with_profile_shares_boundaries(self, annotator, tiny_clip, fast_params):
        pipeline = AnnotationPipeline(fast_params)
        profile = pipeline.profile(tiny_clip)
        track = annotator.annotate_with_profile(tiny_clip, profile)
        assert [(s.start, s.end) for s in track.scenes] == [
            (s.start, s.end) for s in profile.scenes
        ]


class TestCodecAwareAnnotation:
    def test_frame_type_factors_applied(self, tiny_clip):
        from repro.video import CodecModel, GopPattern
        from repro.player import DecoderModel

        decoder = DecoderModel(reference_pixels=160 * 120)
        codec = CodecModel(gop=GopPattern("IPPP"))
        plain = DvfsAnnotator(decoder=decoder, headroom=1.0)
        aware = DvfsAnnotator(decoder=decoder, headroom=1.0, codec=codec)
        frame = tiny_clip.frame(0)
        i_cycles = aware.frame_cycles(frame, index=0)  # I frame
        p_cycles = aware.frame_cycles(frame, index=1)  # P frame
        base = plain.frame_cycles(frame)
        assert i_cycles == pytest.approx(base * codec.decode_factor_i)
        assert p_cycles == pytest.approx(base * codec.decode_factor_p)

    def test_codec_annotation_still_covers_truth(self, tiny_clip):
        """B-frame factors raise the annotated worst case, never lower it
        below the flat decoder estimate times the I factor."""
        from repro.video import CodecModel
        from repro.player import DecoderModel
        from repro.core import Scene

        decoder = DecoderModel(reference_pixels=160 * 120)
        annotator = DvfsAnnotator(decoder=decoder, codec=CodecModel())
        track = annotator.annotate(tiny_clip, [Scene(0, 36, 0.9)])
        flat = DvfsAnnotator(decoder=decoder).annotate(tiny_clip, [Scene(0, 36, 0.9)])
        # default GOP contains B frames (factor 1.15 > 1), so the codec-
        # aware worst case exceeds the flat one
        assert track.scenes[0].cycles_per_frame > flat.scenes[0].cycles_per_frame
