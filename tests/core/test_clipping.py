"""Unit tests for repro.core.clipping."""

import pytest

from repro.core import (
    FixedPercentPerFrame,
    FixedPercentPerScene,
    NoClipping,
    Scene,
    StreamAnalyzer,
    policy_for_quality,
)
from repro.video import Frame


@pytest.fixture
def stream_stats(tiny_clip):
    return StreamAnalyzer().analyze(tiny_clip)


@pytest.fixture
def dark_scene(tiny_clip):
    return Scene(0, 12, 0.9)


class TestNoClipping:
    def test_returns_scene_true_max(self, stream_stats, dark_scene):
        policy = NoClipping()
        eff = policy.effective_max(dark_scene, stream_stats)
        member_max = max(s.max_channel_value for s in stream_stats[0:12])
        assert eff == pytest.approx(member_max)

    def test_luminance_mode(self, stream_stats, dark_scene):
        policy = NoClipping(color_safe=False)
        eff = policy.effective_max(dark_scene, stream_stats)
        member_max = max(s.max_luminance for s in stream_stats[0:12])
        assert eff == pytest.approx(member_max)


class TestFixedPercentPerFrame:
    def test_zero_equals_lossless(self, stream_stats, dark_scene):
        lossless = NoClipping().effective_max(dark_scene, stream_stats)
        zero = FixedPercentPerFrame(0.0).effective_max(dark_scene, stream_stats)
        assert zero == pytest.approx(lossless)

    def test_monotone_in_fraction(self, stream_stats, dark_scene):
        values = [
            FixedPercentPerFrame(q).effective_max(dark_scene, stream_stats)
            for q in (0.0, 0.05, 0.10, 0.20)
        ]
        assert values == sorted(values, reverse=True)

    def test_every_member_within_budget(self, stream_stats, dark_scene, tiny_clip):
        """No member frame clips more than the budget at the scene's
        effective max — the per-frame guarantee."""
        q = 0.10
        eff = FixedPercentPerFrame(q).effective_max(dark_scene, stream_stats)
        for i in range(dark_scene.start, dark_scene.end):
            frame = tiny_clip.frame(i)
            over = float((frame.peak_channel > eff + 1e-9).mean())
            assert over <= q + 0.01, f"frame {i} clips {over:.3f}"

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            FixedPercentPerFrame(1.5)

    def test_scene_outside_stream(self, stream_stats):
        policy = FixedPercentPerFrame(0.05)
        with pytest.raises(ValueError, match="exceeds"):
            policy.effective_max(Scene(0, 999, 0.5), stream_stats)


class TestFixedPercentPerScene:
    def test_at_most_per_frame_value(self, stream_stats, dark_scene):
        """Pooling can only lower (or match) the conservative per-frame
        effective max."""
        for q in (0.05, 0.10, 0.20):
            pooled = FixedPercentPerScene(q).effective_max(dark_scene, stream_stats)
            per_frame = FixedPercentPerFrame(q).effective_max(dark_scene, stream_stats)
            assert pooled <= per_frame + 1e-12

    def test_scene_budget_honored(self, stream_stats, dark_scene, tiny_clip):
        q = 0.10
        eff = FixedPercentPerScene(q).effective_max(dark_scene, stream_stats)
        total = 0.0
        count = 0
        for i in range(dark_scene.start, dark_scene.end):
            frame = tiny_clip.frame(i)
            total += float((frame.peak_channel > eff + 1e-9).sum())
            count += frame.pixel_count
        assert total / count <= q + 0.01

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            FixedPercentPerScene(-0.1)


class TestPolicyFactory:
    def test_zero_gives_lossless(self):
        assert isinstance(policy_for_quality(0.0), NoClipping)

    def test_default_per_frame(self):
        assert isinstance(policy_for_quality(0.05), FixedPercentPerFrame)

    def test_per_scene_flag(self):
        assert isinstance(policy_for_quality(0.05, per_scene=True), FixedPercentPerScene)

    def test_color_safe_passed(self):
        assert policy_for_quality(0.05, color_safe=False).color_safe is False

    def test_repr(self):
        assert "0.05" in repr(FixedPercentPerFrame(0.05))
        assert "0.05" in repr(FixedPercentPerScene(0.05))
