"""Unit tests for repro.core.roi (user-supervised annotation)."""

import numpy as np
import pytest

from repro.core import (
    AnnotationPipeline,
    ImportanceMap,
    RoiStreamAnalyzer,
    SchemeParameters,
    roi_clipped_mass,
    weighted_frame_stats,
)
from repro.display import ipaq_5555
from repro.video import Frame, VideoClip


def _corner_flare_clip(n=8):
    """Dark content with a bright flare in the top-left corner."""
    lum = np.full((40, 60), 0.2)
    lum[1:4, 1:4] = 0.95
    return VideoClip([Frame.from_luminance(lum) for _ in range(n)], name="flare")


def _center_subject_clip(n=8):
    """Dark content with a bright subject dead center."""
    lum = np.full((40, 60), 0.2)
    lum[18:22, 28:32] = 0.95
    return VideoClip([Frame.from_luminance(lum) for _ in range(n)], name="subject")


@pytest.fixture
def roi():
    """Center matters, border does not."""
    return ImportanceMap.rectangle(40, 60, 8, 8, 36, 56, inside=1.0, outside=0.0)


class TestImportanceMap:
    def test_uniform(self):
        m = ImportanceMap.uniform(4, 6)
        assert m.shape == (4, 6)
        assert np.all(m.weights == 1.0)

    def test_center_weighted_peaks_at_center(self):
        m = ImportanceMap.center_weighted(21, 31)
        assert m.weights[10, 15] == m.weights.max()
        assert m.weights[0, 0] < m.weights[10, 15]

    def test_center_weighted_floor(self):
        m = ImportanceMap.center_weighted(21, 31, floor=0.2)
        assert m.weights.min() >= 0.2

    def test_rectangle(self):
        m = ImportanceMap.rectangle(10, 10, 2, 3, 5, 8, inside=1.0, outside=0.1)
        assert m.weights[3, 4] == 1.0
        assert m.weights[0, 0] == 0.1

    def test_rectangle_bounds_checked(self):
        with pytest.raises(ValueError):
            ImportanceMap.rectangle(10, 10, 5, 5, 5, 8)
        with pytest.raises(ValueError):
            ImportanceMap.rectangle(10, 10, 0, 0, 11, 5)

    @pytest.mark.parametrize("weights", [
        np.full((4, 4), -1.0), np.zeros((4, 4)), np.zeros((4, 4, 3)),
    ])
    def test_validation(self, weights):
        with pytest.raises(ValueError):
            ImportanceMap(weights)

    def test_for_frame_geometry_checked(self):
        m = ImportanceMap.uniform(4, 4)
        with pytest.raises(ValueError, match="match"):
            m.for_frame(Frame.solid_gray(5, 5, 0))

    def test_important_fraction(self):
        m = ImportanceMap.rectangle(10, 10, 0, 0, 5, 10, inside=1.0, outside=0.0)
        assert m.important_fraction() == pytest.approx(0.5)


class TestWeightedFrameStats:
    def test_uniform_matches_plain(self, dark_frame):
        from repro.core import FrameStats
        uniform = ImportanceMap.uniform(dark_frame.height, dark_frame.width)
        weighted = weighted_frame_stats(dark_frame, uniform)
        plain = FrameStats.of(dark_frame)
        assert weighted.max_luminance == pytest.approx(plain.max_luminance)
        assert weighted.effective_max(0.05) == pytest.approx(
            plain.effective_max(0.05), abs=1 / 255
        )

    def test_dont_care_region_excluded(self, roi):
        frame = _corner_flare_clip(1).frame(0)
        stats = weighted_frame_stats(frame, roi)
        # the flare lies outside the ROI, so even lossless analysis
        # ignores it
        assert stats.max_luminance < 0.3

    def test_positive_weight_protects(self):
        frame = _corner_flare_clip(1).frame(0)
        m = ImportanceMap.rectangle(40, 60, 8, 8, 36, 56, inside=1.0, outside=0.01)
        stats = weighted_frame_stats(frame, m)
        # tiny but non-zero weight: the flare still counts toward the max
        assert stats.max_luminance > 0.9


class TestRoiPipeline:
    def test_flare_outside_roi_freed(self, roi):
        """The headline ROI effect: a don't-care flare no longer forces
        the backlight up."""
        clip = _corner_flare_clip()
        device = ipaq_5555()
        params = SchemeParameters(quality=0.0, min_scene_interval_frames=4)
        plain = AnnotationPipeline(params).build_stream(clip, device)
        weighted = AnnotationPipeline(params, importance=roi).build_stream(clip, device)
        assert weighted.predicted_backlight_savings() > plain.predicted_backlight_savings() + 0.3

    def test_subject_inside_roi_protected(self, roi):
        """A bright subject inside the ROI is treated exactly as without
        ROI: no extra savings squeezed out of it."""
        clip = _center_subject_clip()
        device = ipaq_5555()
        params = SchemeParameters(quality=0.0, min_scene_interval_frames=4)
        plain = AnnotationPipeline(params).build_stream(clip, device)
        weighted = AnnotationPipeline(params, importance=roi).build_stream(clip, device)
        assert weighted.predicted_backlight_savings() == pytest.approx(
            plain.predicted_backlight_savings(), abs=0.02
        )

    def test_importance_mass_budget_held(self, roi):
        """At quality q, at most q of the importance mass clips."""
        clip = _corner_flare_clip()
        device = ipaq_5555()
        q = 0.05
        params = SchemeParameters(quality=q, min_scene_interval_frames=4)
        stream = AnnotationPipeline(params, importance=roi).build_stream(clip, device)
        gains = stream.track.per_frame_gains()
        for i in range(clip.frame_count):
            mass = roi_clipped_mass(clip.frame(i), roi, float(gains[i]))
            assert mass <= q + 0.01


class TestRoiClippedMass:
    def test_unit_gain_no_clipping(self, roi):
        frame = _corner_flare_clip(1).frame(0)
        assert roi_clipped_mass(frame, roi, 1.0) == 0.0

    def test_flare_clipping_is_free(self, roi):
        frame = _corner_flare_clip(1).frame(0)
        # gain that clips the flare but not the 0.2 background
        assert roi_clipped_mass(frame, roi, 2.0) == 0.0

    def test_invalid_gain(self, roi):
        frame = _corner_flare_clip(1).frame(0)
        with pytest.raises(ValueError):
            roi_clipped_mass(frame, roi, 0.0)


class TestRoiStreamAnalyzer:
    def test_analyze_clip(self, roi):
        clip = _corner_flare_clip(5)
        stats = RoiStreamAnalyzer(roi).analyze(clip)
        assert len(stats) == 5

    def test_empty_rejected(self, roi):
        with pytest.raises(ValueError):
            RoiStreamAnalyzer(roi).analyze_frames(iter([]))
