"""ClipQualityPolicy must be bit-identical to the pre-policy pipeline.

The policy refactor moved the paper's scheme behind the
:class:`~repro.core.policies.BacklightPolicy` interface.  These tests
pin the default policy to an inline transcription of the *pre-refactor*
pipeline — analyze, detect scenes, clip, bind, per-frame contrast
enhancement — on both fixture clips and hypothesis-generated pixel
batches, across every execution engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import SchemeParameters
from repro.core.analyzer import StreamAnalyzer
from repro.core.annotation import (
    AnnotationTrack,
    DeviceAnnotationTrack,
    DeviceSceneAnnotation,
    SceneAnnotation,
)
from repro.core.clipping import policy_for_quality
from repro.core.compensation import CompensationResult, contrast_enhancement
from repro.core.engine import ENGINE_KINDS
from repro.core.pipeline import AnnotationPipeline, sweep_quality_levels
from repro.core.scene import SceneDetector
from repro.display import ipaq_3650, ipaq_5555
from repro.video import VideoClip


def reference_device_track(clip, device, params, per_scene_clipping=False):
    """The pre-refactor pipeline, transcribed stage by stage."""
    stats = StreamAnalyzer().analyze(clip)
    scenes = SceneDetector(params).detect(stats)
    clipping = policy_for_quality(
        params.quality, per_scene=per_scene_clipping, color_safe=params.color_safe
    )
    annotations = [
        SceneAnnotation(
            start=scene.start,
            end=scene.end,
            effective_max_luminance=clipping.effective_max(scene, stats),
        )
        for scene in scenes
    ]
    transfer = device.transfer
    bound = []
    for scene in annotations:
        level = transfer.level_for_scene(scene.effective_max_luminance)
        gain = transfer.compensation_gain_for_level(level) if level > 0 else 1.0
        bound.append(
            DeviceSceneAnnotation(
                start=scene.start,
                end=scene.end,
                backlight_level=level,
                compensation_gain=max(gain, 1.0),
            )
        )
    return DeviceAnnotationTrack(
        clip_name=clip.name,
        device_name=device.name,
        frame_count=clip.frame_count,
        fps=clip.fps,
        quality=params.quality,
        scenes=bound,
    )


def reference_compensated(clip, track):
    """Pre-refactor per-frame compensation for a bound track."""
    gains = track.per_frame_gains()
    results = []
    for i in range(clip.frame_count):
        frame = clip.frame(i)
        gain = float(gains[i])
        if gain <= 1.0:
            results.append(CompensationResult(frame=frame.copy(), clipped_fraction=0.0))
        else:
            results.append(contrast_enhancement(frame, gain))
    return results


def assert_stream_matches_reference(clip, device, params, engine=None,
                                    per_scene_clipping=False):
    pipeline = AnnotationPipeline(
        params, per_scene_clipping=per_scene_clipping, engine=engine
    )
    stream = pipeline.build_stream(clip, device)
    reference = reference_device_track(
        clip, device, params, per_scene_clipping=per_scene_clipping
    )
    assert stream.track.to_bytes() == reference.to_bytes()
    assert np.array_equal(stream.track.per_frame_levels(),
                          reference.per_frame_levels())
    assert np.array_equal(stream.track.per_frame_gains(),
                          reference.per_frame_gains())

    expected = reference_compensated(clip, reference)
    for i in (0, clip.frame_count // 2, clip.frame_count - 1):
        got = stream.compensated_frame(i)
        assert np.array_equal(got.frame.pixels, expected[i].frame.pixels)
        assert got.clipped_fraction == pytest.approx(expected[i].clipped_fraction)
    for chunk in stream.iter_chunks(chunk_size=5):
        for offset in range(len(chunk)):
            i = chunk.start + offset
            assert np.array_equal(chunk.pixels[offset], expected[i].frame.pixels), (
                f"frame {i} diverges from the pre-refactor pipeline"
            )
            assert chunk.clipped_fractions[offset] == pytest.approx(
                expected[i].clipped_fraction
            )


CLIP_PIXELS = arrays(
    dtype=np.uint8,
    shape=st.tuples(
        st.integers(min_value=6, max_value=14),   # frames
        st.just(12), st.just(16), st.just(3),     # H, W, C
    ),
    elements=st.integers(min_value=0, max_value=255),
)


class TestHypothesisEquivalence:
    @given(pixels=CLIP_PIXELS, quality=st.sampled_from([0.0, 0.01, 0.05, 0.2]))
    @settings(max_examples=10, deadline=None)
    def test_random_clips_bit_identical(self, pixels, quality):
        clip = VideoClip(list(pixels), fps=24.0, name="hypo")
        params = SchemeParameters(quality=quality, min_scene_interval_frames=3)
        assert_stream_matches_reference(clip, ipaq_5555(), params)

    @given(pixels=CLIP_PIXELS)
    @settings(max_examples=6, deadline=None)
    def test_per_scene_variant_bit_identical(self, pixels):
        clip = VideoClip(list(pixels), fps=24.0, name="hypo")
        params = SchemeParameters(quality=0.05, min_scene_interval_frames=3)
        assert_stream_matches_reference(
            clip, ipaq_3650(), params, per_scene_clipping=True
        )


class TestEngineEquivalence:
    @pytest.mark.parametrize("engine", ENGINE_KINDS)
    def test_every_engine_bit_identical(self, tiny_clip, fast_params, device, engine):
        assert_stream_matches_reference(
            tiny_clip, device, fast_params, engine=engine
        )


class TestSweepEquivalence:
    def test_sweep_matches_reference_per_quality(self, tiny_clip, device, fast_params):
        qualities = (0.01, 0.1)
        streams = sweep_quality_levels(
            tiny_clip, device, qualities, params=fast_params
        )
        for q, stream in zip(qualities, streams):
            reference = reference_device_track(
                tiny_clip, device, fast_params.with_quality(q)
            )
            assert stream.track.to_bytes() == reference.to_bytes()

    def test_explicit_policy_name_matches_default(self, tiny_clip, device, fast_params):
        by_name = AnnotationPipeline(fast_params, policy="clip-quality").build_stream(
            tiny_clip, device
        )
        by_default = AnnotationPipeline(fast_params).build_stream(tiny_clip, device)
        assert by_name.track.to_bytes() == by_default.track.to_bytes()


class TestTrackBytesUnchanged:
    """The device-independent track stays byte-stable too."""

    def test_annotation_track_bytes(self, tiny_clip, fast_params):
        track = AnnotationPipeline(fast_params).annotate(tiny_clip)
        stats = StreamAnalyzer().analyze(tiny_clip)
        scenes = SceneDetector(fast_params).detect(stats)
        clipping = policy_for_quality(
            fast_params.quality, per_scene=False, color_safe=fast_params.color_safe
        )
        reference = AnnotationTrack(
            clip_name=tiny_clip.name,
            frame_count=tiny_clip.frame_count,
            fps=tiny_clip.fps,
            quality=fast_params.quality,
            scenes=[
                SceneAnnotation(
                    start=s.start,
                    end=s.end,
                    effective_max_luminance=clipping.effective_max(s, stats),
                )
                for s in scenes
            ],
        )
        assert track.to_bytes() == reference.to_bytes()
