"""The `repro.api` facade: equivalence, engine defaults, deprecations.

The facade is a thin routing layer — every service call must produce
byte-identical results to the scattered pre-facade spellings it
replaces.  The pre-facade top-level aliases finished their deprecation
cycle and must now be gone.
"""

import asyncio
import warnings

import numpy as np
import pytest

import repro
from repro import api
from repro.core import EngineConfig, SchemeParameters
from repro.core.pipeline import AnnotationPipeline, sweep_quality_levels
from repro.streaming import (
    ClientCapabilities,
    MediaServer,
    MobileClient,
    PacketType,
    SessionRequest,
)


@pytest.fixture(autouse=True)
def _engine_default_isolation():
    """Restore the process-wide engine default around every test."""
    previous = api.default_engine()
    yield
    api.configure_engine(previous)


class TestConfigureEngine:
    def test_returns_previous_default(self):
        assert api.configure_engine("perframe") is None
        assert api.configure_engine("threads") == "perframe"
        assert api.default_engine() == "threads"

    def test_kind_refined_with_chunk_size(self):
        api.configure_engine("chunked", chunk_size=7, max_workers=2)
        engine = api.default_engine()
        assert isinstance(engine, EngineConfig)
        assert engine.kind == "chunked"
        assert engine.chunk_size == 7
        assert engine.max_workers == 2

    def test_invalid_kind_rejected_eagerly(self):
        with pytest.raises(ValueError):
            api.configure_engine("warp-drive")
        assert api.default_engine() is None

    def test_services_pick_up_the_default(self):
        api.configure_engine("perframe")
        assert api.AnnotationService().engine == "perframe"
        from repro.core.engine import resolve_engine

        service = api.StreamingService()
        assert resolve_engine(service.server.engine).kind == "perframe"

    def test_explicit_engine_overrides_default(self):
        api.configure_engine("perframe")
        assert api.AnnotationService(engine="threads").engine == "threads"


class TestAnnotationService:
    def test_build_stream_matches_pipeline(self, tiny_clip, device, fast_params):
        facade = api.AnnotationService(fast_params).build_stream(tiny_clip, device)
        direct = AnnotationPipeline(fast_params).build_stream(tiny_clip, device)
        assert facade.track.to_bytes() == direct.track.to_bytes()
        assert facade.predicted_backlight_savings() == pytest.approx(
            direct.predicted_backlight_savings()
        )

    def test_device_accepted_by_name(self, tiny_clip, device, fast_params):
        service = api.AnnotationService(fast_params)
        by_name = service.build_stream(tiny_clip, "ipaq5555")
        by_profile = service.build_stream(tiny_clip, device)
        assert by_name.track.to_bytes() == by_profile.track.to_bytes()

    def test_annotate_quality_override(self, tiny_clip, fast_params):
        service = api.AnnotationService(fast_params)
        track = service.annotate(tiny_clip, quality=0.2)
        direct = AnnotationPipeline(fast_params.with_quality(0.2)).annotate(
            tiny_clip
        )
        assert track.to_bytes() == direct.to_bytes()

    def test_annotate_for_device_binds(self, tiny_clip, device, fast_params):
        bound = api.AnnotationService(fast_params).annotate_for_device(
            tiny_clip, "ipaq5555"
        )
        assert bound.device_name == device.name

    def test_profile_covers_clip(self, tiny_clip, fast_params):
        profile = api.AnnotationService(fast_params).profile(tiny_clip)
        assert profile.max_luminance_series().size == tiny_clip.frame_count

    def test_sweep_matches_legacy_helper(self, tiny_clip, device, fast_params):
        qualities = (0.05, 0.2)
        facade = api.AnnotationService(fast_params).sweep(
            tiny_clip, "ipaq5555", qualities
        )
        direct = sweep_quality_levels(
            tiny_clip, device, qualities, params=fast_params
        )
        assert len(facade) == len(direct) == 2
        for got, ref in zip(facade, direct):
            assert got.track.to_bytes() == ref.track.to_bytes()


class TestStreamingService:
    def test_play_matches_manual_serving_path(self, tiny_clip, device, fast_params):
        service = api.StreamingService(fast_params).add_clip(tiny_clip)
        facade = service.play(tiny_clip.name, "ipaq5555", 0.05)

        manual_server = MediaServer(params=fast_params)
        manual_server.add_clip(tiny_clip)
        client = MobileClient(device)
        session = manual_server.open_session(client.request(tiny_clip.name, 0.05))
        manual = client.play_stream(
            session, list(manual_server.stream(session))
        )
        assert facade.total_savings == pytest.approx(manual.total_savings)
        assert np.array_equal(facade.applied_levels, manual.applied_levels)

    def test_catalog_and_chaining(self, tiny_clip, fast_params):
        service = api.StreamingService(fast_params).add_clip(tiny_clip)
        assert service.catalog() == (tiny_clip.name,)

    def test_open_session_and_stream(self, tiny_clip, fast_params):
        service = api.StreamingService(fast_params).add_clip(tiny_clip)
        session = service.open_session(tiny_clip.name, "ipaq5555", 0.05)
        packets = service.stream(session)
        frames = [p for p in packets if p.ptype is PacketType.FRAME]
        assert len(frames) == tiny_clip.frame_count
        assert packets[0].ptype is PacketType.ANNOTATION

    def test_serve_and_fetch_round_trip(self, tiny_clip, device, fast_params):
        service = api.StreamingService(fast_params).add_clip(tiny_clip)
        reference = service.stream(
            service.open_session(tiny_clip.name, "ipaq5555", 0.05)
        )

        async def run():
            async with service.serve() as server:
                return await service.fetch(
                    *server.address, tiny_clip.name, 0.05, "ipaq5555"
                )

        fetched = asyncio.run(run())
        assert fetched.attempts == 1
        assert len(fetched.packets) == len(reference)
        for got, ref in zip(fetched.packets, reference):
            assert got.ptype is ref.ptype and got.seq == ref.seq
            if ref.ptype is PacketType.FRAME:
                assert np.array_equal(got.frame.pixels, ref.frame.pixels)

    def test_archive_round_trip(self, tiny_clip, fast_params, tmp_path):
        service = api.StreamingService(fast_params).add_clip(tiny_clip)
        service.open_session(tiny_clip.name, "ipaq5555", 0.05)
        path = tmp_path / "clip.npz"
        service.export_archive(tiny_clip.name, path)
        fresh = api.StreamingService(fast_params)
        assert fresh.add_archive(path) == tiny_clip.name
        assert fresh.catalog() == (tiny_clip.name,)


class TestConfigObjectSurface:
    """The redesigned config-object API is one definition, visible
    from every public home (facade, top level, and repro.net)."""

    @pytest.mark.parametrize("name", ["ServeConfig", "FetchOptions"])
    def test_config_objects_are_single_definitions(self, name):
        import repro.net as net

        assert getattr(repro, name) is getattr(api, name)
        assert getattr(api, name) is getattr(net, name)

    @pytest.mark.parametrize("name", ["ServeConfig", "FetchOptions"])
    def test_config_objects_are_curated_exports(self, name):
        import repro.net as net

        assert name in repro.__all__
        assert name in api.__all__
        assert name in net.__all__

    def test_fleet_subpackage_reachable_from_top_level(self):
        assert "fleet" in repro.__all__
        assert repro.fleet.FleetCoordinator is not None

    def test_fetch_options_importable_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            _ = repro.ServeConfig(queue_depth=4)
            _ = repro.FetchOptions(max_retries=1)


class TestRetiredSpellings:
    """The pre-facade shims completed their deprecation cycle and are gone."""

    @pytest.mark.parametrize(
        "name", ["MediaServer", "MobileClient", "TranscodingProxy",
                 "AnnotationPipeline", "sweep_quality_levels", "EngineConfig",
                 "run_pipeline"]
    )
    def test_retired_top_level_aliases_raise(self, name):
        with pytest.raises(AttributeError):
            getattr(repro, name)

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_an_api

    def test_retired_names_not_in_all(self):
        for name in ("MediaServer", "AnnotationPipeline", "run_pipeline"):
            assert name not in repro.__all__

    def test_run_pipeline_removed_from_core(self):
        with pytest.raises(ImportError):
            from repro.core import run_pipeline  # noqa: F401
        import repro.core as core

        assert "run_pipeline" not in core.__all__

    def test_canonical_homes_still_export_the_building_blocks(self):
        from repro.core.pipeline import AnnotationPipeline  # noqa: F401
        from repro.core.pipeline import sweep_quality_levels  # noqa: F401
        from repro.streaming import MediaServer, MobileClient  # noqa: F401

    def test_supported_surface_importable_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            _ = repro.AnnotationService
            _ = repro.StreamingService
            _ = repro.configure_engine
            _ = repro.api
