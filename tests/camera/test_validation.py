"""Unit tests for repro.camera.validation (the Figure 2/4 methodology)."""

import numpy as np
import pytest

from repro.camera import CompensationValidator, DigitalCamera
from repro.core import compensate_for_backlight
from repro.display import MAX_BACKLIGHT_LEVEL, ipaq_5555
from repro.video import Frame


@pytest.fixture
def device():
    return ipaq_5555()


@pytest.fixture
def validator(device):
    return CompensationValidator(device, DigitalCamera(noise_sigma=0.0))


def _compensated_pair(device, frame, target_luminance):
    """Annotation-style compensation of one frame for a dimmed backlight."""
    level = device.transfer.level_for_scene(target_luminance)
    gain = device.transfer.compensation_gain_for_level(level)
    compensated = compensate_for_backlight(
        frame, 1.0 / gain
    ).frame
    return compensated, level


class TestValidationReport:
    def test_good_compensation_accepted(self, device, validator, dark_frame):
        eff = dark_frame.max_peak_channel
        compensated, level = _compensated_pair(device, dark_frame, eff)
        report = validator.validate(dark_frame, compensated, level)
        assert report.acceptable()
        assert abs(report.average_shift) < 10

    def test_backlight_saved_fraction(self, device, validator, dark_frame):
        compensated, level = _compensated_pair(device, dark_frame, dark_frame.max_peak_channel)
        report = validator.validate(dark_frame, compensated, level)
        assert report.backlight_saved_fraction == pytest.approx(
            1 - level / MAX_BACKLIGHT_LEVEL
        )

    def test_uncompensated_dimming_rejected(self, validator, dark_frame):
        """Dimming without compensation shifts the histogram visibly."""
        report = validator.validate(dark_frame, dark_frame, compensated_backlight=64)
        assert not report.acceptable()
        assert report.average_shift < -10

    def test_overcompensation_detected(self, device, validator, dark_frame):
        """A deliberately wrong gain (too much clipping) fails validation."""
        from repro.core import contrast_enhancement
        broken = contrast_enhancement(dark_frame, 30.0).frame
        level = device.transfer.level_for_scene(0.5)
        report = validator.validate(dark_frame, broken, level)
        assert not report.acceptable()

    def test_boost_rejected(self, validator, dark_frame):
        with pytest.raises(ValueError, match="dim"):
            validator.validate(dark_frame, dark_frame, compensated_backlight=255,
                               reference_backlight=128)

    def test_report_repr(self, validator, dark_frame):
        report = validator.validate(dark_frame, dark_frame, 255)
        assert "ValidationReport" in repr(report)

    def test_identity_comparison_is_null(self, validator, dark_frame):
        report = validator.validate(dark_frame, dark_frame, MAX_BACKLIGHT_LEVEL)
        assert report.average_shift == pytest.approx(0.0)
        assert report.emd == pytest.approx(0.0)
        assert report.dynamic_range_shift == 0


class TestCameraCapturesDisplayCharacteristics:
    def test_nonlinear_display_affects_snapshot(self, dark_frame):
        """'The picture taken by the camera incorporates the actual
        characteristics of the handheld display.'"""
        from repro.display import ipaq_3650
        cam = DigitalCamera(noise_sigma=0.0)
        a = CompensationValidator(ipaq_5555(), cam).snapshot(dark_frame, 128)
        b = CompensationValidator(ipaq_3650(), cam).snapshot(dark_frame, 128)
        assert not np.array_equal(a, b)

    def test_snapshot_camera_noise_present(self, device, dark_frame):
        noisy = CompensationValidator(device, DigitalCamera(noise_sigma=0.01, seed=2))
        clean = CompensationValidator(device, DigitalCamera(noise_sigma=0.0))
        assert not np.array_equal(
            noisy.snapshot(dark_frame, 255), clean.snapshot(dark_frame, 255)
        )

    def test_validation_robust_to_camera_noise(self, device, dark_frame):
        """Histogram comparison (not pixel diff) survives sensor noise —
        the reason the paper chose histograms."""
        validator = CompensationValidator(device, DigitalCamera(noise_sigma=0.01, seed=3))
        compensated, level = _compensated_pair(device, dark_frame, dark_frame.max_peak_channel)
        report = validator.validate(dark_frame, compensated, level)
        assert report.acceptable()
