"""Unit tests for repro.camera.response."""

import numpy as np
import pytest

from repro.camera import (
    GammaResponse,
    LinearResponse,
    SRGBLikeResponse,
    TabulatedResponse,
)

ALL_RESPONSES = [
    LinearResponse(),
    GammaResponse(2.2),
    GammaResponse(1.8),
    SRGBLikeResponse(),
    TabulatedResponse([0.0, 0.2, 0.5, 1.0], [0.0, 0.45, 0.73, 1.0]),
]


@pytest.mark.parametrize("response", ALL_RESPONSES, ids=lambda r: repr(r))
class TestResponseContract:
    """Invariants of every camera response curve."""

    def test_endpoints(self, response):
        assert float(response.apply(0.0)) == pytest.approx(0.0, abs=1e-9)
        assert float(response.apply(1.0)) == pytest.approx(1.0, abs=1e-9)

    def test_monotone(self, response):
        x = np.linspace(0, 1, 257)
        y = response.apply(x)
        assert np.all(np.diff(y) >= -1e-12)

    def test_nonlinear_except_linear(self, response):
        """Sanity: the curve stays within [0, 1]."""
        x = np.linspace(0, 1, 101)
        y = response.apply(x)
        assert y.min() >= -1e-12 and y.max() <= 1 + 1e-12

    def test_invert_round_trip(self, response):
        x = np.linspace(0.01, 0.99, 50)
        assert response.invert(response.apply(x)) == pytest.approx(x, abs=1e-6)

    def test_apply_round_trip(self, response):
        v = np.linspace(0.01, 0.99, 50)
        assert response.apply(response.invert(v)) == pytest.approx(v, abs=1e-6)

    def test_out_of_range_clipped(self, response):
        assert float(response.apply(1.7)) == pytest.approx(float(response.apply(1.0)))
        assert float(response.apply(-0.5)) == pytest.approx(0.0, abs=1e-9)


class TestSpecificCurves:
    def test_gamma_brightens_midtones(self):
        """Gamma encoding lifts mid-gray — the classic camera nonlinearity."""
        assert float(GammaResponse(2.2).apply(0.2)) > 0.2

    def test_srgb_matches_standard_points(self):
        r = SRGBLikeResponse()
        # 18 % gray encodes to about 46 % in sRGB.
        assert float(r.apply(0.18)) == pytest.approx(0.461, abs=0.01)

    def test_srgb_toe_linear(self):
        r = SRGBLikeResponse()
        tiny = 0.001
        assert float(r.apply(tiny)) == pytest.approx(12.92 * tiny, rel=1e-6)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            GammaResponse(0.0)


class TestTabulatedResponse:
    def test_interpolation(self):
        r = TabulatedResponse([0.0, 1.0], [0.0, 1.0])
        assert float(r.apply(0.5)) == pytest.approx(0.5)

    def test_non_monotone_rejected(self):
        with pytest.raises(ValueError, match="monotone"):
            TabulatedResponse([0.0, 0.5, 1.0], [0.0, 0.8, 0.5])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TabulatedResponse([0.0, 0.0, 1.0], [0.0, 0.1, 1.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            TabulatedResponse([0.0, 1.0], [0.0, 0.5, 1.0])
