"""Unit tests for repro.camera.camera."""

import numpy as np
import pytest

from repro.camera import DigitalCamera, GammaResponse, LinearResponse


class TestSnapshot:
    def test_dtype_and_shape(self):
        cam = DigitalCamera()
        photo = cam.snapshot(np.full((4, 6), 0.5))
        assert photo.dtype == np.uint8
        assert photo.shape == (4, 6)

    def test_full_scale(self):
        cam = DigitalCamera(response=LinearResponse())
        assert cam.snapshot(np.ones((2, 2)))[0, 0] == 255
        assert cam.snapshot(np.zeros((2, 2)))[0, 0] == 0

    def test_monotone_in_radiance(self):
        cam = DigitalCamera()
        ramp = np.linspace(0, 1, 64)[None, :]
        photo = cam.snapshot(ramp).astype(int)
        assert np.all(np.diff(photo[0]) >= 0)

    def test_nonlinear_response_visible(self):
        linear = DigitalCamera(response=LinearResponse())
        gamma = DigitalCamera(response=GammaResponse(2.2))
        mid = np.full((2, 2), 0.25)
        assert gamma.snapshot(mid)[0, 0] > linear.snapshot(mid)[0, 0]

    def test_exposure_scales_radiance(self):
        cam = DigitalCamera(response=LinearResponse(), exposure=2.0)
        assert cam.snapshot(np.full((1, 1), 0.25))[0, 0] == 128

    def test_overexposure_clips(self):
        cam = DigitalCamera(response=LinearResponse(), exposure=4.0)
        assert cam.snapshot(np.full((1, 1), 0.5))[0, 0] == 255

    def test_noise_reproducible(self):
        a = DigitalCamera(noise_sigma=0.02, seed=5).snapshot(np.full((8, 8), 0.5))
        b = DigitalCamera(noise_sigma=0.02, seed=5).snapshot(np.full((8, 8), 0.5))
        assert np.array_equal(a, b)

    def test_noise_perturbs(self):
        clean = DigitalCamera(noise_sigma=0.0).snapshot(np.full((8, 8), 0.5))
        noisy = DigitalCamera(noise_sigma=0.05, seed=1).snapshot(np.full((8, 8), 0.5))
        assert not np.array_equal(clean, noisy)

    def test_validation(self):
        with pytest.raises(ValueError):
            DigitalCamera(exposure=0.0)
        with pytest.raises(ValueError):
            DigitalCamera(noise_sigma=-0.1)


class TestEstimateRadiance:
    def test_round_trip_through_response(self):
        cam = DigitalCamera(noise_sigma=0.0)
        radiance = np.linspace(0.05, 0.95, 32).reshape(4, 8)
        photo = cam.snapshot(radiance)
        recovered = cam.estimate_radiance(photo)
        assert recovered == pytest.approx(radiance, abs=0.01)

    def test_exposure_divided_out(self):
        cam = DigitalCamera(response=LinearResponse(), exposure=2.0, noise_sigma=0.0)
        photo = cam.snapshot(np.full((2, 2), 0.3))
        assert cam.estimate_radiance(photo) == pytest.approx(np.full((2, 2), 0.3), abs=0.01)

    def test_repr(self):
        assert "DigitalCamera" in repr(DigitalCamera())
