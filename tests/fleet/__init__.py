"""Tests for the sharded serving fleet (:mod:`repro.fleet`)."""
