"""End-to-end fleet tests: real worker processes behind the router.

Each test spawns a small :class:`~repro.fleet.FleetCoordinator` (two
shard processes over the same deterministic catalog) and talks to it
through the router's single address, exactly as a client would.  Covers
the acceptance path of the fleet tentpole:

* streams served through the router are byte-identical to streaming the
  catalog directly;
* ``port=0`` shards report their actually-bound ports through both the
  coordinator and the router's fleet snapshot;
* killing a shard mid-stream re-routes the portable resume token to the
  replica, which replays the remainder byte-identically;
* with no routable shard the router answers ``busy`` (retriable), never
  a fabricated authoritative error.
"""

import asyncio

import numpy as np
import pytest

from repro.api import fetch_stream, server_stats
from repro.core import ProfileCache, SchemeParameters
from repro.fleet import FleetCoordinator
from repro.net import FetchOptions, decode_portable_token, encode_packet_bytes
from repro.net.codec import read_packet
from repro.net.messages import decode_control, encode_hello, encode_resume
from repro.streaming import (
    ClientCapabilities,
    MediaServer,
    PacketType,
    SessionRequest,
)
from repro.telemetry import registry
from repro.video import ArrayClip

FAST_PARAMS = SchemeParameters(quality=0.05, min_scene_interval_frames=5)
QUALITY = 0.05
DEVICE = "ipaq5555"
CLIPS = (("alpha", 1), ("bravo", 2), ("charlie", 3))


def _fleet_catalog():
    """Picklable catalog factory shared by every worker process.

    Must be a module-level function: the coordinator ships it to each
    shard inside a :class:`~repro.fleet.WorkerSpec`, and byte-identical
    failover relies on every call producing the same catalog.
    """
    server = MediaServer(
        params=FAST_PARAMS, profile_cache=ProfileCache(max_entries=8)
    )
    for name, seed in CLIPS:
        pixels = np.random.default_rng(seed).integers(
            0, 256, size=(36, 24, 18, 3), dtype=np.uint8
        )
        server.add_clip(ArrayClip(pixels, fps=24.0, name=name))
    return server


def _reference(clip_name):
    media = _fleet_catalog()
    request = SessionRequest(clip_name, QUALITY, ClientCapabilities(DEVICE))
    return list(media.stream(media.open_session(request)))


def _assert_streams_identical(packets, reference):
    assert len(packets) == len(reference)
    for mine, ref in zip(packets, reference):
        assert mine.ptype is ref.ptype
        assert mine.seq == ref.seq
        if ref.ptype is PacketType.ANNOTATION:
            assert mine.payload == ref.payload
        elif ref.ptype is PacketType.FRAME:
            assert np.array_equal(mine.frame.pixels, ref.frame.pixels)


def _counter(name):
    metric = registry().get(name)
    return 0 if metric is None else metric.value


def _options():
    return FetchOptions(backoff_base_s=0.01, backoff_max_s=0.2, jitter_s=0.0)


async def _drain_stream(reader):
    """Read media packets until the server's ``end`` control packet."""
    packets = []
    while True:
        packet = await asyncio.wait_for(read_packet(reader), timeout=15.0)
        if packet is None:
            break
        if packet.ptype is PacketType.CONTROL:
            if decode_control(packet).kind == "end":
                break
            continue
        packets.append(packet)
    return packets


def test_fleet_streams_byte_identical_to_direct():
    """Every clip fetched through the router matches a direct stream."""

    async def run():
        results = {}
        async with FleetCoordinator(_fleet_catalog, shards=2,
                                    health_interval_s=0.2) as fleet:
            host, port = fleet.address
            for name, _ in CLIPS:
                result = await fetch_stream(host, port, name, QUALITY,
                                            DEVICE, options=_options())
                results[name] = result.packets
        return results

    results = asyncio.run(run())
    for name, _ in CLIPS:
        _assert_streams_identical(results[name], _reference(name))


def test_fleet_reports_actually_bound_ports():
    """port=0 everywhere, yet status and stats expose the real ports."""

    async def run():
        async with FleetCoordinator(_fleet_catalog, shards=2,
                                    health_interval_s=0.2) as fleet:
            status = fleet.status()
            stats = await server_stats(*fleet.address)
            health = fleet.router.healthz()
            return status, stats, health

    status, stats, health = asyncio.run(run())
    assert status["router"]["port"] != 0
    coord_ports = {s["shard"]: s["port"] for s in status["shards"]}
    assert all(p not in (None, 0) for p in coord_ports.values())
    assert len(set(coord_ports.values())) == 2  # distinct sockets
    fleet_section = stats["fleet"]
    router_ports = {s["shard"]: s["port"] for s in fleet_section["shards"]}
    assert router_ports == coord_ports  # router agrees with coordinator
    assert all(s["alive"] for s in fleet_section["shards"])
    assert health["accepting"]
    assert health["state"] == "ready"


def test_mid_stream_kill_fails_over_byte_identically():
    """The tentpole: kill the owner mid-stream, resume on the replica."""
    reference = _reference("alpha")
    received = 6

    async def run():
        async with FleetCoordinator(_fleet_catalog, shards=2,
                                    health_interval_s=0.2) as fleet:
            reader, writer = await asyncio.open_connection(*fleet.address)
            request = SessionRequest(
                "alpha", QUALITY, ClientCapabilities(DEVICE)
            )
            writer.write(encode_packet_bytes(encode_hello(request)))
            await writer.drain()
            session_msg = decode_control(
                await asyncio.wait_for(read_packet(reader), timeout=15.0)
            )
            assert session_msg.kind == "session"
            token = session_msg.token
            assert decode_portable_token(token) is not None
            head = []
            while len(head) < received:
                packet = await asyncio.wait_for(read_packet(reader),
                                                timeout=15.0)
                if packet.ptype is not PacketType.CONTROL:
                    head.append(packet)

            owner = fleet.router.ring.lookup("alpha")
            fleet.kill_shard(owner)
            writer.transport.abort()

            reader, writer = await asyncio.open_connection(*fleet.address)
            writer.write(encode_packet_bytes(encode_resume(token, received)))
            await writer.drain()
            resumed = decode_control(
                await asyncio.wait_for(read_packet(reader), timeout=15.0)
            )
            assert resumed.kind == "session"
            assert resumed.resumed_at == received
            tail = await _drain_stream(reader)
            writer.close()
            return head, tail

    head, tail = asyncio.run(run())
    _assert_streams_identical(head + tail, reference)
    assert _counter("repro_fleet_failover_sessions_total") >= 1


def test_refetch_after_kill_spills_over_to_replica():
    """A fresh hello for a dead shard's clip lands on the replica and
    still produces the identical stream (deterministic catalog)."""

    async def run():
        async with FleetCoordinator(_fleet_catalog, shards=2,
                                    health_interval_s=0.2) as fleet:
            host, port = fleet.address
            before = await fetch_stream(host, port, "bravo", QUALITY,
                                        DEVICE, options=_options())
            fleet.kill_shard(fleet.router.ring.lookup("bravo"))
            after = await fetch_stream(host, port, "bravo", QUALITY,
                                       DEVICE, options=_options())
            return before.packets, after.packets

    before, after = asyncio.run(run())
    _assert_streams_identical(after, before)
    assert _counter("repro_fleet_spillover_sessions_total") >= 1


def test_no_routable_shard_answers_busy_not_error():
    """With every shard dead the router must answer retriable busy."""

    async def run():
        async with FleetCoordinator(_fleet_catalog, shards=2,
                                    health_interval_s=0.2) as fleet:
            for shard_id in fleet.shard_ids():
                fleet.kill_shard(shard_id)
            reader, writer = await asyncio.open_connection(*fleet.address)
            request = SessionRequest(
                "alpha", QUALITY, ClientCapabilities(DEVICE)
            )
            writer.write(encode_packet_bytes(encode_hello(request)))
            await writer.drain()
            message = decode_control(
                await asyncio.wait_for(read_packet(reader), timeout=15.0)
            )
            writer.close()
            return message

    message = asyncio.run(run())
    assert message.kind == "busy"
    assert message.busy.retry_after_s > 0
    assert _counter("repro_fleet_unroutable_total") >= 1
