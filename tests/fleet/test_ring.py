"""Consistent-hash ring properties: distribution, stability, movement.

The ring is the routing contract of the fleet: the router, every test,
and any external tooling must agree on clip → shard placement, and a
fleet resize must only re-home ~1/N of the catalog (the rest keeps its
warm shard).  These tests pin those properties numerically.
"""

import pytest

from repro.fleet import HashRing

KEYS = [f"clip-{i:04d}" for i in range(3000)]


def _placement(ring):
    return {key: ring.lookup(key) for key in KEYS}


class TestRingBasics:
    def test_empty_ring_lookup_raises(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.lookup("anything")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_duplicate_add_rejected(self):
        ring = HashRing(("a",))
        with pytest.raises(ValueError):
            ring.add("a")

    def test_remove_unknown_rejected(self):
        ring = HashRing(("a",))
        with pytest.raises(ValueError):
            ring.remove("b")

    def test_len_contains_shards(self):
        ring = HashRing(("a", "b"))
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        assert ring.shards == ("a", "b")
        ring.remove("a")
        assert ring.shards == ("b",)

    def test_single_shard_owns_everything(self):
        ring = HashRing(("only",))
        assert all(ring.lookup(key) == "only" for key in KEYS[:100])


class TestRingDeterminism:
    def test_placement_is_instance_independent(self):
        """Two rings built separately (different insertion order) agree —
        the property the router and worker processes rely on."""
        a = HashRing(("s0", "s1", "s2"))
        b = HashRing(("s2", "s0", "s1"))
        assert _placement(a) == _placement(b)

    def test_lookup_is_stable(self):
        ring = HashRing(("s0", "s1"))
        for key in KEYS[:50]:
            assert ring.lookup(key) == ring.lookup(key)


class TestRingDistribution:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_load_is_roughly_even(self, n):
        shards = tuple(f"shard-{i}" for i in range(n))
        ring = HashRing(shards)
        counts = {s: 0 for s in shards}
        for key in KEYS:
            counts[ring.lookup(key)] += 1
        expected = len(KEYS) / n
        for shard, count in counts.items():
            # 64 vnodes keeps every shard within 50% of fair share.
            assert 0.5 * expected <= count <= 1.5 * expected, (shard, counts)


class TestRingMovement:
    def test_removal_moves_only_the_dead_shards_keys(self):
        ring = HashRing(("s0", "s1", "s2"))
        before = _placement(ring)
        ring.remove("s1")
        after = _placement(ring)
        moved = [k for k in KEYS if before[k] != after[k]]
        # Exactly the removed shard's keys moved; survivors kept theirs.
        assert all(before[k] == "s1" for k in moved)
        assert len(moved) == sum(1 for k in KEYS if before[k] == "s1")

    def test_addition_moves_about_one_over_n(self):
        ring = HashRing(("s0", "s1", "s2"))
        before = _placement(ring)
        ring.add("s3")
        after = _placement(ring)
        moved = [k for k in KEYS if before[k] != after[k]]
        # Only keys that landed on the new shard moved.
        assert all(after[k] == "s3" for k in moved)
        # ~1/4 of keys, with generous slack for vnode unevenness.
        assert 0.10 * len(KEYS) <= len(moved) <= 0.40 * len(KEYS)


class TestPreference:
    def test_preference_starts_with_owner_and_covers_all(self):
        shards = ("s0", "s1", "s2", "s3")
        ring = HashRing(shards)
        for key in KEYS[:200]:
            order = list(ring.preference(key))
            assert order[0] == ring.lookup(key)
            assert sorted(order) == sorted(shards)  # each exactly once

    def test_preference_is_failover_consistent(self):
        """The second preference equals the owner after removing the
        first — a dead shard's sessions land where the resized ring
        would have put them."""
        ring = HashRing(("s0", "s1", "s2"))
        for key in KEYS[:200]:
            order = list(ring.preference(key))
            shrunk = HashRing(tuple(s for s in ring.shards if s != order[0]))
            assert shrunk.lookup(key) == order[1]

    def test_preference_on_empty_ring_is_empty(self):
        assert list(HashRing().preference("x")) == []
