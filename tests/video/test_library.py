"""Unit tests for repro.video.library (the ten paper titles)."""

import numpy as np
import pytest

from repro.video import PAPER_CLIP_NAMES, clip_script, make_clip, paper_library

RES = (32, 24)


class TestCatalog:
    def test_ten_titles(self):
        assert len(PAPER_CLIP_NAMES) == 10

    def test_expected_names(self):
        assert "ice_age" in PAPER_CLIP_NAMES
        assert "hunter_subres" in PAPER_CLIP_NAMES
        assert "theincredibles-tlr2" in PAPER_CLIP_NAMES

    def test_every_title_has_script(self):
        for name in PAPER_CLIP_NAMES:
            assert clip_script(name)

    def test_unknown_title(self):
        with pytest.raises(KeyError, match="unknown clip"):
            clip_script("nosferatu")

    def test_script_returns_copy(self):
        a = clip_script("ice_age")
        a.pop()
        assert len(clip_script("ice_age")) != len(a)


class TestMakeClip:
    def test_basic_construction(self):
        clip = make_clip("shrek2", resolution=RES, duration_scale=0.1)
        assert clip.name == "shrek2"
        assert clip.frame_count > 0
        assert clip.frame(0).resolution == RES

    def test_duration_scale(self):
        full = make_clip("shrek2", resolution=RES)
        half = make_clip("shrek2", resolution=RES, duration_scale=0.5)
        assert half.frame_count < full.frame_count
        assert half.frame_count >= full.frame_count // 2  # ceil per scene

    def test_duration_scale_floor(self):
        tiny = make_clip("shrek2", resolution=RES, duration_scale=0.001)
        # 4-frame floor per scene keeps the scene mix intact.
        assert tiny.frame_count == 4 * len(clip_script("shrek2"))

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            make_clip("shrek2", duration_scale=0.0)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_clip("not_a_movie")

    def test_deterministic(self):
        a = make_clip("i_robot", resolution=RES, duration_scale=0.1)
        b = make_clip("i_robot", resolution=RES, duration_scale=0.1)
        assert a.frame(3) == b.frame(3)

    def test_titles_differ(self):
        a = make_clip("i_robot", resolution=RES, duration_scale=0.1)
        b = make_clip("shrek2", resolution=RES, duration_scale=0.1)
        assert a.frame(0) != b.frame(0)


class TestPaperLibrary:
    def test_full_library(self):
        clips = paper_library(resolution=RES, duration_scale=0.05)
        assert [c.name for c in clips] == list(PAPER_CLIP_NAMES)

    def test_subset(self):
        clips = paper_library(resolution=RES, duration_scale=0.05,
                              names=("ice_age", "catwoman"))
        assert [c.name for c in clips] == ["ice_age", "catwoman"]


class TestLuminanceStructure:
    """The library must reproduce the paper's per-title behaviour."""

    @pytest.fixture(scope="class")
    def mean_lum(self):
        def compute(name):
            clip = make_clip(name, resolution=RES, duration_scale=0.08)
            return float(np.mean([f.mean_luminance for f in clip]))
        return compute

    def test_ice_age_bright(self, mean_lum):
        assert mean_lum("ice_age") > 0.6

    def test_hunter_bright(self, mean_lum):
        assert mean_lum("hunter_subres") > 0.5

    def test_dark_titles_dark(self, mean_lum):
        for name in ("catwoman", "spiderman2", "returnoftheking"):
            assert mean_lum(name) < 0.45, name

    def test_bright_titles_brighter_than_dark(self, mean_lum):
        assert mean_lum("ice_age") > mean_lum("catwoman") + 0.2

    def test_dark_titles_have_high_max(self):
        """Dark scenes still carry highlights (spots), so the lossless
        scheme alone saves little on the brightest frames."""
        clip = make_clip("spiderman2", resolution=RES, duration_scale=0.08)
        max_lum = max(f.max_luminance for f in clip)
        assert max_lum > 0.7
