"""Unit tests for repro.video.codec."""

import numpy as np
import pytest

from repro.video import CodecModel, Frame, GopPattern, VideoClip


class TestGopPattern:
    def test_default_n12_m3(self):
        gop = GopPattern()
        assert gop.length == 12
        assert gop.frame_type(0) == "I"
        assert gop.frame_type(3) == "P"
        assert gop.frame_type(1) == "B"

    def test_repeats(self):
        gop = GopPattern("IPP")
        assert gop.frame_type(3) == "I"
        assert gop.frame_type(4) == "P"

    def test_from_n_m_ippp(self):
        gop = GopPattern.from_n_m(4, 1)
        assert gop.structure == "IPPP"

    def test_from_n_m_with_b(self):
        gop = GopPattern.from_n_m(6, 3)
        assert gop.structure == "IBBPBB"

    @pytest.mark.parametrize("structure", ["", "PIB", "IXB"])
    def test_invalid_structure(self, structure):
        with pytest.raises(ValueError):
            GopPattern(structure)

    def test_from_n_m_validation(self):
        with pytest.raises(ValueError):
            GopPattern.from_n_m(2, 3)

    def test_negative_index(self):
        with pytest.raises(ValueError):
            GopPattern().frame_type(-1)


class TestFrameSizeEstimation:
    @pytest.fixture
    def codec(self):
        return CodecModel()

    def test_i_larger_than_p_larger_than_b(self, codec, dark_frame):
        sizes = {
            ftype: codec.estimate_frame_bytes(dark_frame, dark_frame, ftype)
            for ftype in "IPB"
        }
        assert sizes["I"] > sizes["P"] > sizes["B"]

    def test_complex_content_costs_more(self, codec):
        flat = Frame.solid_gray(48, 48, 100)
        rng = np.random.default_rng(1)
        busy = Frame.from_luminance(rng.random((48, 48)))
        assert codec.estimate_frame_bytes(busy, None, "I") > codec.estimate_frame_bytes(
            flat, None, "I"
        )

    def test_motion_costs_more(self, codec, dark_frame):
        still = codec.estimate_frame_bytes(dark_frame, dark_frame, "P")
        cut = codec.estimate_frame_bytes(dark_frame, Frame.solid_gray(
            dark_frame.height, dark_frame.width, 255), "P")
        assert cut > still

    def test_minimum_size_floor(self, codec):
        tiny = Frame.solid_gray(2, 2, 0)
        assert codec.estimate_frame_bytes(tiny, tiny, "B") == codec.min_frame_bytes

    def test_invalid_type(self, codec, dark_frame):
        with pytest.raises(ValueError):
            codec.estimate_frame_bytes(dark_frame, None, "X")

    def test_decode_factors_ordered(self, codec):
        assert (codec.decode_cycles_factor("B") > codec.decode_cycles_factor("P")
                > codec.decode_cycles_factor("I"))

    @pytest.mark.parametrize("kwargs", [
        {"bpp_i": 0}, {"complexity_gain": -1}, {"min_frame_bytes": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CodecModel(**kwargs)


class TestEncodeClip:
    def test_encoded_metadata(self, tiny_clip):
        enc = CodecModel().encode(tiny_clip)
        assert enc.frame_bytes.shape == (tiny_clip.frame_count,)
        assert enc.frame_types[0] == "I"
        assert enc.total_bytes == enc.frame_bytes.sum()

    def test_substantial_compression(self, tiny_clip):
        enc = CodecModel().encode(tiny_clip)
        raw = tiny_clip.frame(0).pixels.nbytes
        assert enc.compression_ratio(raw) > 5

    def test_bitrate_plausible(self, library_clip):
        """Small-resolution 2005-era streams ran tens to hundreds of kbps."""
        enc = CodecModel().encode(library_clip)
        assert 10e3 < enc.bitrate_bps < 2e6

    def test_mean_bytes_by_type_ordering(self, library_clip):
        enc = CodecModel().encode(library_clip)
        by_type = enc.mean_bytes_by_type()
        assert by_type["I"] > by_type["P"] > by_type["B"]

    def test_intra_only_pattern(self, tiny_clip):
        enc = CodecModel(gop=GopPattern("I")).encode(tiny_clip)
        assert set(enc.frame_types) == {"I"}


class TestServerCodecIntegration:
    def test_wire_size_uses_encoded_bytes(self, tiny_clip, fast_params):
        from repro.streaming import MediaServer, MobileClient, PacketType
        from repro.display import ipaq_5555
        codec = CodecModel()
        server = MediaServer(params=fast_params, codec=codec)
        server.add_clip(tiny_clip)
        client = MobileClient(ipaq_5555())
        session = server.open_session(client.request("tiny", 0.05))
        packets = [p for p in server.stream(session) if p.ptype is PacketType.FRAME]
        enc = server.encoded_clip("tiny")
        for i, packet in enumerate(packets):
            assert packet.size_bytes == int(enc.frame_bytes[i]) + 32

    def test_codecless_server_rejects_query(self, tiny_clip, fast_params):
        from repro.streaming import MediaServer, NegotiationError
        server = MediaServer(params=fast_params)
        server.add_clip(tiny_clip)
        with pytest.raises(NegotiationError, match="codec"):
            server.encoded_clip("tiny")

    def test_encoded_transport_lowers_radio_power(self, tiny_clip, fast_params):
        from repro.streaming import MediaServer, MobileClient, NetworkPath
        from repro.display import ipaq_5555
        results = {}
        for codec in (None, CodecModel()):
            server = MediaServer(params=fast_params, codec=codec)
            server.add_clip(tiny_clip)
            client = MobileClient(ipaq_5555())
            session = server.open_session(client.request("tiny", 0.05))
            packets = list(server.stream(session))
            delivery = NetworkPath().deliver(packets)
            results[codec is not None] = client.play_stream(
                session, packets, delivery=delivery
            ).mean_power_w
        assert results[True] < results[False]
