"""Unit tests for repro.video.clip."""

import numpy as np
import pytest

from repro.video import Frame, LazyClip, VideoClip, concatenate


def _frames(n, level=50):
    return [Frame.solid_gray(4, 4, level + i) for i in range(n)]


class TestVideoClip:
    def test_reindexes_frames(self):
        frames = [Frame.solid_gray(2, 2, 0, index=99) for _ in range(3)]
        clip = VideoClip(frames)
        assert [f.index for f in clip] == [0, 1, 2]

    def test_len_and_duration(self):
        clip = VideoClip(_frames(60), fps=30.0)
        assert len(clip) == 60
        assert clip.duration == pytest.approx(2.0)
        assert clip.frame_period == pytest.approx(1 / 30)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one frame"):
            VideoClip([])

    def test_bad_fps_rejected(self):
        with pytest.raises(ValueError, match="fps"):
            VideoClip(_frames(1), fps=0)

    def test_frame_out_of_range(self):
        clip = VideoClip(_frames(3))
        with pytest.raises(IndexError):
            clip.frame(3)
        with pytest.raises(IndexError):
            clip.frame(-1)

    def test_accepts_raw_arrays(self):
        clip = VideoClip([np.zeros((2, 2, 3), dtype=np.uint8)])
        assert isinstance(clip.frame(0), Frame)

    def test_timestamps(self):
        clip = VideoClip(_frames(3), fps=10.0)
        assert clip.timestamps() == pytest.approx([0.0, 0.1, 0.2])

    def test_subclip(self):
        clip = VideoClip(_frames(10, level=0))
        sub = clip.subclip(2, 5)
        assert sub.frame_count == 3
        assert sub.frame(0).pixels[0, 0, 0] == 2
        assert sub.frame(0).index == 0

    def test_subclip_invalid_range(self):
        clip = VideoClip(_frames(5))
        with pytest.raises(ValueError):
            clip.subclip(3, 3)
        with pytest.raises(ValueError):
            clip.subclip(0, 6)

    def test_subclip_copies(self):
        clip = VideoClip(_frames(4))
        sub = clip.subclip(0, 2)
        sub.frame(0).pixels[0, 0, 0] = 200
        assert clip.frame(0).pixels[0, 0, 0] != 200

    def test_repr(self):
        clip = VideoClip(_frames(5), fps=25.0, name="demo")
        assert "demo" in repr(clip)
        assert "frames=5" in repr(clip)


class TestLazyClip:
    def test_factory_called_per_access(self):
        calls = []

        def factory(i):
            calls.append(i)
            return Frame.solid_gray(2, 2, i)

        clip = LazyClip(factory, frame_count=4)
        clip.frame(2)
        clip.frame(2)
        assert calls == [2, 2]  # no caching, by design

    def test_index_set_on_frames(self):
        clip = LazyClip(lambda i: Frame.solid_gray(2, 2, 0), frame_count=3)
        assert clip.frame(2).index == 2

    def test_out_of_range(self):
        clip = LazyClip(lambda i: Frame.solid_gray(2, 2, 0), frame_count=2)
        with pytest.raises(IndexError):
            clip.frame(2)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LazyClip(lambda i: None, frame_count=0)
        with pytest.raises(ValueError):
            LazyClip(lambda i: None, frame_count=1, fps=-1)

    def test_materialize_preserves_content(self, tiny_clip):
        eager = tiny_clip.materialize()
        assert eager.frame_count == tiny_clip.frame_count
        assert eager.fps == tiny_clip.fps
        assert eager.name == tiny_clip.name
        for i in (0, 15, tiny_clip.frame_count - 1):
            assert eager.frame(i) == tiny_clip.frame(i)

    def test_deterministic_re_reads(self, tiny_clip):
        assert tiny_clip.frame(5) == tiny_clip.frame(5)

    def test_resolution_advertised(self, tiny_clip):
        assert tiny_clip.resolution == (48, 36)


class TestConcatenate:
    def test_basic(self):
        a = VideoClip(_frames(3, level=0), fps=30.0)
        b = VideoClip(_frames(2, level=100), fps=30.0)
        joined = concatenate([a, b], name="ab")
        assert joined.frame_count == 5
        assert joined.frame(3).pixels[0, 0, 0] == 100
        assert joined.name == "ab"

    def test_fps_mismatch(self):
        a = VideoClip(_frames(1), fps=30.0)
        b = VideoClip(_frames(1), fps=25.0)
        with pytest.raises(ValueError, match="fps"):
            concatenate([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concatenate([])

    def test_source_frames_copied(self):
        a = VideoClip(_frames(1))
        joined = concatenate([a])
        joined.frame(0).pixels[0, 0, 0] = 250
        assert a.frame(0).pixels[0, 0, 0] != 250
