"""Unit tests for the extended clip library titles."""

import numpy as np
import pytest

from repro.core import (
    AnnotationPipeline,
    ImportanceMap,
    SchemeParameters,
)
from repro.display import ipaq_5555
from repro.video import EXTENDED_CLIP_NAMES, PAPER_CLIP_NAMES, clip_script, make_clip

RES = (48, 36)


class TestCatalog:
    def test_four_extended_titles(self):
        assert len(EXTENDED_CLIP_NAMES) == 4

    def test_no_overlap_with_paper_titles(self):
        assert not set(EXTENDED_CLIP_NAMES) & set(PAPER_CLIP_NAMES)

    def test_scripts_exist(self):
        for name in EXTENDED_CLIP_NAMES:
            assert clip_script(name)

    def test_all_buildable_and_deterministic(self):
        for name in EXTENDED_CLIP_NAMES:
            a = make_clip(name, resolution=RES, duration_scale=0.1)
            b = make_clip(name, resolution=RES, duration_scale=0.1)
            assert a.frame(2) == b.frame(2), name


class TestWorkloadCharacter:
    def test_sports_bright(self):
        clip = make_clip("sports_highlights", resolution=RES, duration_scale=0.1)
        mean = np.mean([f.mean_luminance for f in clip])
        assert mean > 0.45

    def test_concert_strobe_spikes(self):
        clip = make_clip("concert_strobe", resolution=RES, duration_scale=0.3)
        maxima = np.array([f.mean_luminance for f in clip])
        # strobes: both very dark and very bright frames occur
        assert maxima.min() < 0.25 and maxima.max() > 0.6

    def test_noir_dark_and_rewarding(self):
        clip = make_clip("noir_documentary", resolution=RES, duration_scale=0.15)
        device = ipaq_5555()
        stream = AnnotationPipeline(
            SchemeParameters(quality=0.05, min_scene_interval_frames=5)
        ).build_stream(clip, device)
        assert stream.predicted_backlight_savings() > 0.4


class TestLetterbox:
    @pytest.fixture
    def clip(self):
        return make_clip("widescreen_letterbox", resolution=RES, duration_scale=0.15)

    def test_bars_are_black(self, clip):
        bars = int(RES[1] * 0.15)
        for i in (0, clip.frame_count // 2):
            frame = clip.frame(i)
            assert frame.pixels[:bars].max() == 0
            assert frame.pixels[-bars:].max() == 0

    def test_active_area_not_black(self, clip):
        frame = clip.frame(0)
        assert frame.pixels[RES[1] // 2].max() > 0

    def test_roi_keeps_budget_honest_on_letterbox(self, clip):
        """Black bars inflate the plain scheme's budget: 5 % of *all*
        pixels is ~7 % of the active picture.  The ROI analysis counts
        the budget over content only, so it is slightly stricter (and
        saves slightly less) — the honest reading of the quality level."""
        device = ipaq_5555()
        bars = int(RES[1] * 0.15)
        roi = ImportanceMap.rectangle(RES[1], RES[0], bars, 0, RES[1] - bars, RES[0])
        params = SchemeParameters(quality=0.05, min_scene_interval_frames=5)
        plain = AnnotationPipeline(params).build_stream(clip, device)
        weighted = AnnotationPipeline(params, importance=roi).build_stream(clip, device)
        assert weighted.predicted_backlight_savings() <= (
            plain.predicted_backlight_savings() + 1e-9
        )
        # and the content-area budget truly holds under ROI
        from repro.core import roi_clipped_mass
        gains = weighted.track.per_frame_gains()
        for i in range(0, clip.frame_count, 5):
            assert roi_clipped_mass(clip.frame(i), roi, float(gains[i])) <= 0.06

    def test_strobe_rate_limited(self):
        """The flicker guard holds even under strobe content."""
        clip = make_clip("concert_strobe", resolution=RES, duration_scale=0.3)
        device = ipaq_5555()
        params = SchemeParameters(quality=0.05, min_scene_interval_frames=10)
        stream = AnnotationPipeline(params).build_stream(clip, device)
        switches_per_s = stream.track.switch_count() / clip.duration
        assert switches_per_s <= clip.fps / 10 + 1
