"""Unit tests for repro.video.frame."""

import numpy as np
import pytest

from repro.video import Frame, LUMA_COEFFS, luminance_to_gray_rgb, rgb_to_luminance


class TestRgbToLuminance:
    def test_white_is_one(self):
        white = np.full((2, 2, 3), 255, dtype=np.uint8)
        assert rgb_to_luminance(white) == pytest.approx(np.ones((2, 2)))

    def test_black_is_zero(self):
        black = np.zeros((2, 2, 3), dtype=np.uint8)
        assert rgb_to_luminance(black) == pytest.approx(np.zeros((2, 2)))

    def test_coefficients_sum_to_one(self):
        assert sum(LUMA_COEFFS) == pytest.approx(1.0)

    def test_pure_channels_match_coefficients(self):
        for channel, coeff in enumerate(LUMA_COEFFS):
            rgb = np.zeros((1, 1, 3), dtype=np.uint8)
            rgb[0, 0, channel] = 255
            assert rgb_to_luminance(rgb)[0, 0] == pytest.approx(coeff)

    def test_float_input_taken_as_normalized(self):
        rgb = np.full((1, 1, 3), 0.5)
        assert rgb_to_luminance(rgb)[0, 0] == pytest.approx(0.5)

    def test_rejects_wrong_trailing_axis(self):
        with pytest.raises(ValueError, match="trailing RGB axis"):
            rgb_to_luminance(np.zeros((2, 2, 4)))

    def test_gray_equals_channel_value(self):
        rgb = np.full((3, 3, 3), 100, dtype=np.uint8)
        assert rgb_to_luminance(rgb) == pytest.approx(np.full((3, 3), 100 / 255))


class TestLuminanceToGrayRgb:
    def test_round_trip(self):
        lum = np.linspace(0, 1, 16).reshape(4, 4)
        rgb = luminance_to_gray_rgb(lum)
        back = rgb_to_luminance(rgb)
        assert np.max(np.abs(back - lum)) < 1 / 255

    def test_clips_out_of_range(self):
        rgb = luminance_to_gray_rgb(np.array([[-0.5, 1.5]]))
        assert rgb[0, 0, 0] == 0
        assert rgb[0, 1, 0] == 255

    def test_channels_equal(self):
        rgb = luminance_to_gray_rgb(np.array([[0.3]]))
        assert rgb[0, 0, 0] == rgb[0, 0, 1] == rgb[0, 0, 2]


class TestFrameConstruction:
    def test_uint8_kept_verbatim(self):
        pixels = np.arange(2 * 3 * 3, dtype=np.uint8).reshape(2, 3, 3)
        frame = Frame(pixels)
        assert np.array_equal(frame.pixels, pixels)

    def test_float_input_quantized(self):
        frame = Frame(np.full((2, 2, 3), 0.5))
        assert frame.pixels.dtype == np.uint8
        assert frame.pixels[0, 0, 0] == 128  # round(0.5 * 255)

    def test_float_input_clipped(self):
        frame = Frame(np.full((1, 1, 3), 2.0))
        assert frame.pixels[0, 0, 0] == 255

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError, match=r"\(H, W, 3\)"):
            Frame(np.zeros((4, 4)))

    def test_rejects_wrong_channel_count(self):
        with pytest.raises(ValueError):
            Frame(np.zeros((4, 4, 2), dtype=np.uint8))

    def test_int_input_converted_and_clipped(self):
        frame = Frame(np.full((1, 1, 3), 300, dtype=np.int32))
        assert frame.pixels.dtype == np.uint8
        assert frame.pixels[0, 0, 0] == 255


class TestFrameFactories:
    def test_solid_color(self):
        frame = Frame.solid(4, 6, (10, 20, 30))
        assert frame.resolution == (6, 4)
        assert frame.pixels[2, 3, 0] == 10
        assert frame.pixels[2, 3, 1] == 20
        assert frame.pixels[2, 3, 2] == 30

    def test_solid_gray(self):
        frame = Frame.solid_gray(3, 3, 77)
        assert np.all(frame.pixels == 77)

    def test_from_luminance(self):
        lum = np.array([[0.0, 1.0]])
        frame = Frame.from_luminance(lum)
        assert frame.max_luminance == pytest.approx(1.0)
        assert frame.luminance[0, 0] == pytest.approx(0.0)


class TestFrameStatistics:
    def test_max_luminance(self):
        lum = np.array([[0.1, 0.9], [0.2, 0.3]])
        frame = Frame.from_luminance(lum)
        assert frame.max_luminance == pytest.approx(0.9, abs=1 / 255)

    def test_mean_luminance(self):
        frame = Frame.solid_gray(4, 4, 51)
        assert frame.mean_luminance == pytest.approx(0.2)

    def test_luminance_cached(self):
        frame = Frame.solid_gray(2, 2, 100)
        assert frame.luminance is frame.luminance

    def test_luminance_percentile_bounds(self):
        frame = Frame.solid_gray(4, 4, 100)
        assert frame.luminance_percentile(0.0) == frame.luminance_percentile(1.0)

    def test_luminance_percentile_invalid(self):
        frame = Frame.solid_gray(2, 2, 0)
        with pytest.raises(ValueError):
            frame.luminance_percentile(1.5)

    def test_percentile_on_ramp(self, gray_ramp_frame):
        p95 = gray_ramp_frame.luminance_percentile(0.95)
        assert 0.92 <= p95 <= 0.97


class TestPeakChannel:
    def test_gray_peak_equals_luminance(self):
        frame = Frame.solid_gray(3, 3, 100)
        assert frame.peak_channel == pytest.approx(frame.luminance)

    def test_saturated_color_peak_above_luminance(self):
        frame = Frame.solid(2, 2, (0, 0, 255))  # pure blue
        assert frame.max_peak_channel == pytest.approx(1.0)
        assert frame.max_luminance == pytest.approx(0.114)

    def test_peak_channel_cached(self):
        frame = Frame.solid_gray(2, 2, 10)
        assert frame.peak_channel is frame.peak_channel

    def test_peak_dominates_luminance_everywhere(self, dark_frame):
        assert np.all(dark_frame.peak_channel >= dark_frame.luminance - 1e-12)


class TestFrameDunder:
    def test_copy_is_independent(self):
        frame = Frame.solid_gray(2, 2, 10, index=5)
        dup = frame.copy()
        dup.pixels[0, 0, 0] = 99
        assert frame.pixels[0, 0, 0] == 10
        assert dup.index == 5

    def test_equality_by_pixels(self):
        a = Frame.solid_gray(2, 2, 10, index=0)
        b = Frame.solid_gray(2, 2, 10, index=7)
        assert a == b  # index does not participate

    def test_inequality(self):
        assert Frame.solid_gray(2, 2, 10) != Frame.solid_gray(2, 2, 11)

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Frame.solid_gray(2, 2, 0))

    def test_repr_mentions_size(self):
        assert "4x2" in repr(Frame.solid_gray(2, 4, 0))

    def test_normalized_range(self, dark_frame):
        values = dark_frame.normalized()
        assert values.min() >= 0.0 and values.max() <= 1.0
