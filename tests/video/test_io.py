"""Unit tests for repro.video.io (clip serialization)."""

import numpy as np
import pytest

from repro.video import Frame, VideoClip, clip_nbytes, load_clip, save_clip


@pytest.fixture
def small_clip():
    frames = [Frame.solid_gray(4, 6, 10 * i) for i in range(5)]
    return VideoClip(frames, fps=24.0, name="small")


class TestRoundTrip:
    def test_exact_pixels(self, small_clip, tmp_path):
        path = tmp_path / "clip.npz"
        save_clip(small_clip, path)
        loaded = load_clip(path)
        assert loaded.frame_count == 5
        for i in range(5):
            assert loaded.frame(i) == small_clip.frame(i)

    def test_metadata(self, small_clip, tmp_path):
        path = tmp_path / "clip.npz"
        save_clip(small_clip, path)
        loaded = load_clip(path)
        assert loaded.fps == 24.0
        assert loaded.name == "small"

    def test_lazy_clip_saved(self, tiny_clip, tmp_path):
        path = tmp_path / "lazy.npz"
        save_clip(tiny_clip, path)
        loaded = load_clip(path)
        assert loaded.frame_count == tiny_clip.frame_count
        assert loaded.frame(7) == tiny_clip.frame(7)


class TestCorruption:
    def test_bad_version(self, small_clip, tmp_path):
        path = tmp_path / "clip.npz"
        frames = np.stack([f.pixels for f in small_clip])
        np.savez(path, frames=frames, fps=np.float64(30), name=np.str_("x"),
                 version=np.int64(99))
        with pytest.raises(ValueError, match="version"):
            load_clip(path)

    def test_bad_shape(self, tmp_path):
        path = tmp_path / "clip.npz"
        np.savez(path, frames=np.zeros((3, 4, 4)), fps=np.float64(30),
                 name=np.str_("x"), version=np.int64(1))
        with pytest.raises(ValueError, match="frames shape"):
            load_clip(path)


class TestClipNbytes:
    def test_counts_raw_pixels(self, small_clip):
        assert clip_nbytes(small_clip) == 5 * 4 * 6 * 3

    def test_library_clip_megabyte_scale(self):
        """At QVGA the paper's clips are MB-scale, dwarfing annotations."""
        from repro.video import make_clip
        clip = make_clip("officexp", resolution=(240, 320), duration_scale=0.05)
        assert clip_nbytes(clip) > 1_000_000
