"""Unit tests for repro.video.synthesis."""

import numpy as np
import pytest

from repro.video.synthesis import (
    ActionScene,
    BrightScene,
    CreditsScene,
    DarkScene,
    FadeScene,
    FlashScene,
    GradientScene,
    SceneSpec,
    ScriptedClipFactory,
    _tint,
)

RES = (32, 24)


class TestTint:
    def test_neutral_tint_preserves_luminance(self):
        lum = np.linspace(0, 1, 12).reshape(3, 4)
        frame = _tint(lum, (1.0, 1.0, 1.0))
        assert frame.luminance == pytest.approx(lum, abs=2 / 255)

    def test_color_tint_never_exceeds_unity_channels(self):
        lum = np.ones((2, 2))
        frame = _tint(lum, (0.8, 0.8, 1.2))
        assert frame.pixels.max() <= 255

    def test_tint_scales_luminance_down_at_most(self):
        lum = np.full((2, 2), 0.5)
        frame = _tint(lum, (0.5, 0.5, 2.0))
        # Peak-normalized gains can only dim, never brighten.
        assert frame.max_luminance <= 0.5 + 1 / 255

    def test_invalid_tint_rejected(self):
        with pytest.raises(ValueError):
            _tint(np.ones((2, 2)), (0.0, 0.0, 0.0))


class TestSceneGeneratorBasics:
    def test_render_range_checked(self):
        gen = DarkScene(duration=5, resolution=RES)
        with pytest.raises(IndexError):
            gen.render(5)
        with pytest.raises(IndexError):
            gen.render(-1)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            DarkScene(duration=0, resolution=RES)

    def test_determinism_across_instances(self):
        a = DarkScene(duration=8, resolution=RES, seed=5)
        b = DarkScene(duration=8, resolution=RES, seed=5)
        assert a.render(3) == b.render(3)

    def test_different_seeds_differ(self):
        a = DarkScene(duration=4, resolution=RES, seed=1)
        b = DarkScene(duration=4, resolution=RES, seed=2)
        assert a.render(0) != b.render(0)

    def test_resolution_respected(self):
        gen = BrightScene(duration=2, resolution=(20, 10))
        frame = gen.render(0)
        assert frame.resolution == (20, 10)


class TestDarkScene:
    def test_mostly_dark(self):
        gen = DarkScene(duration=3, resolution=RES, seed=2)
        frame = gen.render(0)
        assert frame.mean_luminance < 0.45

    def test_highlights_present(self):
        gen = DarkScene(duration=3, resolution=RES, seed=2, highlight=0.9)
        frame = gen.render(0)
        assert frame.max_luminance > 0.6

    def test_sparse_bright_tail(self):
        """Most pixels sit well below the maximum (clipping wins here)."""
        gen = DarkScene(duration=3, resolution=(64, 48), seed=2)
        frame = gen.render(0)
        p80 = frame.luminance_percentile(0.80)
        assert p80 < 0.75 * frame.max_luminance

    def test_quantiles_fall_gradually(self):
        """The highlight falloff gives a graded tail: q=5% and q=20%
        clip points must be distinct (Figure 9's monotone growth)."""
        gen = DarkScene(duration=3, resolution=(64, 48), seed=2)
        frame = gen.render(0)
        assert frame.luminance_percentile(0.80) < frame.luminance_percentile(0.95) - 0.02


class TestBrightScene:
    def test_mostly_bright(self):
        gen = BrightScene(duration=3, resolution=RES, seed=4)
        frame = gen.render(1)
        assert frame.mean_luminance > 0.7

    def test_narrow_dynamic_range(self):
        gen = BrightScene(duration=3, resolution=RES, seed=4)
        frame = gen.render(0)
        assert frame.luminance_percentile(0.05) > 0.5


class TestGradientAndFade:
    def test_gradient_span(self):
        gen = GradientScene(duration=2, resolution=RES, low=0.1, high=0.8)
        frame = gen.render(0)
        assert frame.luminance.min() == pytest.approx(0.1, abs=0.05)
        assert frame.luminance.max() == pytest.approx(0.8, abs=0.05)

    def test_fade_monotone_mean(self):
        gen = FadeScene(duration=10, resolution=RES, start_level=0.1, end_level=0.8)
        means = [gen.render(i).mean_luminance for i in range(10)]
        assert all(b > a for a, b in zip(means, means[1:]))

    def test_fade_endpoints(self):
        gen = FadeScene(duration=10, resolution=RES, start_level=0.1, end_level=0.8)
        assert gen.render(0).mean_luminance == pytest.approx(0.1, abs=0.05)
        assert gen.render(9).mean_luminance == pytest.approx(0.8, abs=0.05)


class TestCreditsScene:
    def test_text_rows_bright_background_dark(self):
        gen = CreditsScene(duration=10, resolution=RES, seed=3)
        frame = gen.render(0)
        assert frame.max_luminance > 0.8
        assert frame.luminance_percentile(0.3) < 0.1

    def test_substantial_text_mass(self):
        """Text covers enough pixels that a 20 % budget cannot clip it all
        (the paper's credits warning)."""
        gen = CreditsScene(duration=10, resolution=(64, 48), seed=3)
        frame = gen.render(0)
        bright = float((frame.luminance > 0.5).mean())
        assert bright > 0.1

    def test_scrolling_changes_content(self):
        gen = CreditsScene(duration=40, resolution=RES, seed=3)
        assert gen.render(0) != gen.render(30)


class TestActionScene:
    def test_jitter_bounded(self):
        gen = ActionScene(duration=20, resolution=RES, base=0.3, peak=0.7,
                          jitter=0.05, seed=6)
        maxima = [gen.render(i).max_luminance for i in range(20)]
        assert max(maxima) - min(maxima) < 0.15

    def test_motion_between_frames(self):
        gen = ActionScene(duration=10, resolution=RES, seed=6)
        assert gen.render(0) != gen.render(4)


class TestFlashScene:
    def test_flash_frames_bright(self):
        gen = FlashScene(duration=20, resolution=RES, flash_every=10,
                         flash_len=2, seed=8)
        assert gen.render(0).mean_luminance > 0.8  # frame 0 is in a flash
        assert gen.render(5).mean_luminance < 0.3

    def test_flash_period(self):
        gen = FlashScene(duration=30, resolution=RES, flash_every=10,
                         flash_len=1, seed=8)
        flash_frames = [i for i in range(30) if gen.render(i).mean_luminance > 0.5]
        assert flash_frames == [0, 10, 20]


class TestSceneSpec:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown scene kind"):
            SceneSpec("wibble", 5).build(RES, seed=0)

    def test_build_passes_params(self):
        gen = SceneSpec("dark", 5, {"background": 0.3}).build(RES, seed=0)
        assert gen.background == 0.3

    def test_all_kinds_buildable(self):
        for kind in SceneSpec.GENERATORS:
            gen = SceneSpec(kind, 5).build(RES, seed=1)
            assert gen.render(0).resolution == RES


class TestScriptedClipFactory:
    def test_scene_boundaries(self):
        factory = ScriptedClipFactory(
            [SceneSpec("dark", 5), SceneSpec("bright", 7)], resolution=RES, seed=1
        )
        assert factory.frame_count == 12
        assert factory.scene_starts == [0, 5, 12]
        assert factory.scene_of(0) == 0
        assert factory.scene_of(4) == 0
        assert factory.scene_of(5) == 1
        assert factory.scene_of(11) == 1

    def test_scene_of_out_of_range(self):
        factory = ScriptedClipFactory([SceneSpec("dark", 3)], resolution=RES, seed=1)
        with pytest.raises(IndexError):
            factory.scene_of(3)

    def test_empty_script_rejected(self):
        with pytest.raises(ValueError):
            ScriptedClipFactory([], resolution=RES, seed=1)

    def test_frames_change_at_boundary(self):
        factory = ScriptedClipFactory(
            [SceneSpec("dark", 5, {"background": 0.1}),
             SceneSpec("bright", 5, {"background": 0.9})],
            resolution=RES, seed=1,
        )
        assert factory(4).mean_luminance < 0.5 < factory(5).mean_luminance
