"""Unit tests for repro.video.chunks — batched frame planes and caches."""

import numpy as np
import pytest

from repro.video import (
    ArrayClip,
    DEFAULT_CHUNK_SIZE,
    Frame,
    FrameChunk,
    HeterogeneousFrameError,
    PlaneCache,
    VideoClip,
    chunk_spans,
)


def random_batch(n, h=9, w=7, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, (n, h, w, 3), dtype=np.uint8)


class TestChunkSpans:
    def test_exact_division(self):
        assert list(chunk_spans(8, 4)) == [(0, 4), (4, 8)]

    def test_remainder(self):
        assert list(chunk_spans(10, 4)) == [(0, 4), (4, 8), (8, 10)]

    def test_oversized_chunk(self):
        assert list(chunk_spans(3, 100)) == [(0, 3)]

    def test_empty(self):
        assert list(chunk_spans(0, 4)) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            list(chunk_spans(-1, 4))
        with pytest.raises(ValueError):
            list(chunk_spans(4, 0))

    def test_lead_shrinks_first_span_only(self):
        assert list(chunk_spans(10, 4, lead=2)) == [(0, 2), (2, 6), (6, 10)]

    def test_lead_covers_every_frame_exactly_once(self):
        for n in (0, 1, 5, 17):
            for lead in (1, 3, 8, 100):
                spans = list(chunk_spans(n, 4, lead=lead))
                covered = [i for lo, hi in spans for i in range(lo, hi)]
                assert covered == list(range(n)), (n, lead)

    def test_lead_larger_than_clip_degenerates(self):
        assert list(chunk_spans(3, 4, lead=100)) == [(0, 3)]

    def test_lead_none_is_identity(self):
        assert list(chunk_spans(10, 4, lead=None)) == list(chunk_spans(10, 4))

    def test_lead_invalid(self):
        with pytest.raises(ValueError):
            list(chunk_spans(10, 4, lead=0))

    def test_clip_iter_chunks_honors_lead(self):
        pixels = random_batch(10)
        clip = ArrayClip(pixels, fps=24.0, name="lead")
        chunks = list(clip.iter_chunks(4, lead=2))
        assert [(c.start, c.stop) for c in chunks] == [(0, 2), (2, 6), (6, 10)]
        assert np.array_equal(
            np.concatenate([c.pixels for c in chunks]), pixels
        )


class TestFrameChunk:
    def test_validation(self):
        with pytest.raises(ValueError):
            FrameChunk(np.zeros((4, 4, 3), dtype=np.uint8))
        with pytest.raises(ValueError):
            FrameChunk(np.zeros((2, 4, 4, 3), dtype=np.float64))
        with pytest.raises(ValueError):
            FrameChunk(np.zeros((0, 4, 4, 3), dtype=np.uint8))

    def test_geometry(self):
        chunk = FrameChunk(random_batch(5, h=9, w=7), start=12)
        assert len(chunk) == 5
        assert chunk.stop == 17
        assert list(chunk.indices) == [12, 13, 14, 15, 16]
        assert chunk.frame_shape == (9, 7)

    def test_planes_match_per_frame(self):
        batch = random_batch(6)
        chunk = FrameChunk(batch, start=3)
        for k in range(6):
            frame = Frame(batch[k])
            assert np.array_equal(chunk.luminance[k], frame.luminance)
            assert np.array_equal(chunk.peak_channel[k], frame.peak_channel)

    def test_luminance_codes_match_quantization(self):
        batch = random_batch(4, seed=5)
        chunk = FrameChunk(batch)
        codes = chunk.luminance_codes()
        for k in range(4):
            frame = Frame(batch[k])
            expected = np.round(np.clip(frame.luminance, 0.0, 1.0) * 255)
            assert np.array_equal(codes[k], expected.astype(np.int64))

    def test_from_frames_roundtrip(self):
        batch = random_batch(3)
        frames = [Frame(batch[k], index=10 + k) for k in range(3)]
        chunk = FrameChunk.from_frames(frames, start=10)
        assert np.array_equal(chunk.pixels, batch)
        out = chunk.frames()
        assert [f.index for f in out] == [10, 11, 12]
        assert np.array_equal(out[1].pixels, batch[1])

    def test_from_frames_mixed_resolutions(self):
        frames = [
            Frame(np.zeros((4, 4, 3), dtype=np.uint8)),
            Frame(np.zeros((4, 5, 3), dtype=np.uint8)),
        ]
        with pytest.raises(HeterogeneousFrameError):
            FrameChunk.from_frames(frames)

    def test_frame_inherits_computed_planes(self):
        chunk = FrameChunk(random_batch(2))
        lum = chunk.luminance
        frame = chunk.frame(0)
        assert frame._luminance is not None
        assert np.array_equal(frame.luminance, lum[0])

    def test_frame_offset_bounds(self):
        chunk = FrameChunk(random_batch(2))
        with pytest.raises(IndexError):
            chunk.frame(2)


class TestClipChunking:
    def test_videoclip_chunks_cover_clip(self):
        batch = random_batch(11)
        clip = VideoClip([Frame(batch[k]) for k in range(11)], name="v")
        chunks = list(clip.iter_chunks(chunk_size=4))
        assert [c.start for c in chunks] == [0, 4, 8]
        assert np.array_equal(np.concatenate([c.pixels for c in chunks]), batch)

    def test_arrayclip_chunks_are_views(self):
        batch = random_batch(10)
        clip = ArrayClip(batch, name="a")
        chunk = next(clip.iter_chunks(chunk_size=4))
        assert chunk.pixels.base is clip.pixels

    def test_arrayclip_from_clip(self):
        batch = random_batch(7)
        eager = VideoClip([Frame(batch[k]) for k in range(7)], fps=24.0, name="v")
        arr = ArrayClip.from_clip(eager)
        assert arr.fps == 24.0
        assert arr.name == "v"
        assert np.array_equal(arr.pixels, batch)
        assert arr.resolution == (7, 9)

    def test_arrayclip_float_quantization(self):
        floats = np.full((2, 3, 3, 3), 0.5)
        clip = ArrayClip(floats)
        assert np.array_equal(clip.pixels, Frame(floats[0]).pixels[None].repeat(2, 0))

    def test_default_iter_chunks_on_lazy(self, tiny_clip):
        chunks = list(tiny_clip.iter_chunks(chunk_size=10))
        assert sum(len(c) for c in chunks) == tiny_clip.frame_count
        assert np.array_equal(chunks[0].pixels[3], tiny_clip.frame(3).pixels)


class TestPlaneCache:
    def test_hit_and_miss_counters(self):
        cache = PlaneCache()
        assert cache.get(0, "lum") is None
        plane = np.zeros((4, 4))
        cache.put(0, "lum", plane)
        assert cache.get(0, "lum") is plane
        assert cache.hits == 1
        assert cache.misses == 1

    def test_byte_bound_evicts_lru(self):
        plane = np.zeros((4, 4))  # 128 bytes
        cache = PlaneCache(max_bytes=3 * plane.nbytes)
        for i in range(4):
            cache.put(i, "lum", np.full((4, 4), float(i)))
        assert cache.get(0, "lum") is None  # oldest evicted
        assert cache.get(3, "lum") is not None
        assert cache.nbytes <= cache.max_bytes
        assert len(cache) == 3

    def test_zero_budget_disables(self):
        cache = PlaneCache(max_bytes=0)
        cache.put(0, "lum", np.zeros((4, 4)))
        assert len(cache) == 0

    def test_clear(self):
        cache = PlaneCache()
        cache.put(0, "lum", np.zeros((4, 4)))
        cache.clear()
        assert len(cache) == 0
        assert cache.nbytes == 0

    def test_clip_plane_accessors_cache(self):
        batch = random_batch(5)
        clip = ArrayClip(batch, name="a")
        first = clip.luminance_plane(2)
        second = clip.luminance_plane(2)
        assert first is second
        assert clip.plane_cache.hits == 1
        assert np.array_equal(first, Frame(batch[2]).luminance)
        peak = clip.peak_channel_plane(2)
        assert np.array_equal(peak, Frame(batch[2]).peak_channel)

    def test_plane_cache_is_assignable(self):
        clip = ArrayClip(random_batch(2))
        replacement = PlaneCache(max_bytes=1024)
        clip.plane_cache = replacement
        assert clip.plane_cache is replacement
