"""Unit tests for repro.player.playback."""

import numpy as np
import pytest

from repro.core import AnnotationPipeline, SchemeParameters
from repro.display import MAX_BACKLIGHT_LEVEL, ipaq_5555, ipaq_3650
from repro.player import PlaybackEngine


@pytest.fixture
def device():
    return ipaq_5555()


@pytest.fixture
def stream(device, tiny_clip, fast_params):
    return AnnotationPipeline(fast_params).build_stream(tiny_clip, device)


@pytest.fixture
def engine(device):
    return PlaybackEngine(device)


class TestPlay:
    def test_result_arrays_sized(self, engine, stream, tiny_clip):
        result = engine.play(stream)
        n = tiny_clip.frame_count
        assert result.applied_levels.shape == (n,)
        assert result.cpu_loads.shape == (n,)
        assert result.per_frame_power_w.shape == (n,)
        assert result.duration_s == pytest.approx(n / 30.0)

    def test_levels_follow_annotations(self, engine, stream):
        result = engine.play(stream)
        assert np.array_equal(result.applied_levels, stream.backlight_levels())

    def test_total_savings_positive(self, engine, stream):
        result = engine.play(stream)
        assert 0.0 < result.total_savings < 1.0

    def test_baseline_power_higher(self, engine, stream):
        result = engine.play(stream)
        assert np.all(result.baseline_power_w >= result.per_frame_power_w)

    def test_device_mismatch_rejected(self, stream):
        other = PlaybackEngine(ipaq_3650())
        with pytest.raises(ValueError, match="annotated for"):
            other.play(stream)

    def test_no_dropped_deadlines_on_tiny_frames(self, engine, stream):
        assert engine.play(stream).dropped_deadline_count == 0

    def test_backlight_savings_matches_stream(self, engine, stream):
        result = engine.play(stream)
        assert engine.backlight_savings(result) == pytest.approx(
            stream.predicted_backlight_savings()
        )

    def test_switch_count_matches_track(self, engine, stream):
        result = engine.play(stream)
        assert result.switch_count >= stream.track.switch_count() - 1
        # +1 possible: initial switch away from the power-on level
        assert result.switch_count <= stream.track.switch_count() + 1

    def test_full_backlight_baseline_run(self, device, tiny_clip):
        params = SchemeParameters(quality=0.0, min_scene_interval_frames=5)
        pipeline = AnnotationPipeline(params)
        track = pipeline.annotate(tiny_clip)
        # force full backlight by replacing effective max with 1.0
        from repro.core import SceneAnnotation, AnnotationTrack
        full = AnnotationTrack(
            track.clip_name, track.frame_count, track.fps, 0.0,
            [SceneAnnotation(0, track.frame_count, 1.0)],
        )
        from repro.core.pipeline import AnnotatedStream
        stream = AnnotatedStream(tiny_clip, full.bind(device), device)
        result = PlaybackEngine(device).play(stream)
        assert result.total_savings == pytest.approx(0.0)
        assert np.all(result.applied_levels == MAX_BACKLIGHT_LEVEL)


class TestMeasurement:
    def test_daq_measurement_close_to_truth(self, engine, stream):
        result = engine.play(stream)
        trace = result.measure()
        assert trace.mean_power_w == pytest.approx(result.mean_power_w, rel=0.03)

    def test_measured_savings_close_to_truth(self, engine, stream):
        result = engine.play(stream)
        measured = result.measure().savings_vs(result.measure_baseline())
        assert measured == pytest.approx(result.total_savings, abs=0.02)


class TestEngineConfig:
    def test_invalid_network_duty(self, device):
        with pytest.raises(ValueError):
            PlaybackEngine(device, network_duty=1.5)

    def test_network_duty_affects_power(self, device, stream):
        quiet = PlaybackEngine(device, network_duty=0.0).play(stream)
        busy = PlaybackEngine(device, network_duty=1.0).play(stream)
        assert busy.mean_power_w > quiet.mean_power_w

    def test_controller_interval_limits_switches(self, device, tiny_clip):
        params = SchemeParameters(quality=0.10, per_frame=True)
        stream = AnnotationPipeline(params).build_stream(tiny_clip, device)
        free = PlaybackEngine(device, min_switch_interval_s=0.0).play(stream)
        guarded = PlaybackEngine(device, min_switch_interval_s=0.5).play(stream)
        assert guarded.switch_count < free.switch_count
