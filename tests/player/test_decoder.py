"""Unit tests for repro.player.decoder."""

import pytest

from repro.player import DecoderModel
from repro.video import Frame


class TestSpatialComplexity:
    def test_flat_frame_zero(self):
        assert DecoderModel.spatial_complexity(Frame.solid_gray(8, 8, 128)) == 0.0

    def test_busy_frame_higher(self, dark_frame):
        flat = DecoderModel.spatial_complexity(Frame.solid_gray(36, 48, 100))
        busy = DecoderModel.spatial_complexity(dark_frame)
        assert busy > flat

    def test_capped_at_one(self):
        import numpy as np
        rng = np.random.default_rng(0)
        noise = Frame.from_luminance(rng.random((32, 32)))
        assert DecoderModel.spatial_complexity(noise) <= 1.0

    def test_single_pixel_frame(self):
        assert DecoderModel.spatial_complexity(Frame.solid_gray(1, 1, 0)) == 0.0


class TestTiming:
    def test_decode_time_scales_with_pixels(self):
        decoder = DecoderModel()
        small = decoder.decode_time_s(Frame.solid_gray(10, 10, 0))
        large = decoder.decode_time_s(Frame.solid_gray(20, 20, 0))
        assert large == pytest.approx(4 * small)

    def test_complexity_increases_time(self, dark_frame):
        decoder = DecoderModel()
        flat = decoder.decode_time_s(Frame.solid_gray(36, 48, 100))
        busy = decoder.decode_time_s(dark_frame)
        assert busy > flat

    def test_cpu_load_bounds(self, dark_frame):
        decoder = DecoderModel()
        load = decoder.cpu_load(dark_frame, frame_period_s=1 / 30)
        assert 0.0 < load <= 1.0

    def test_cpu_load_saturates(self):
        decoder = DecoderModel(cpu_hz=1e6)  # hopeless CPU
        frame = Frame.solid_gray(240, 320, 0)
        assert decoder.cpu_load(frame, 1 / 30) == 1.0

    def test_invalid_period(self, dark_frame):
        with pytest.raises(ValueError):
            DecoderModel().cpu_load(dark_frame, 0.0)

    def test_xscale_sustains_qvga(self):
        """The paper's 400 MHz XScale plays QVGA MPEG in real time."""
        decoder = DecoderModel()
        frame = Frame.solid_gray(320, 240, 128)
        assert decoder.can_sustain(frame, fps=30.0)

    def test_weak_cpu_cannot_sustain(self):
        decoder = DecoderModel(cpu_hz=50e6)
        frame = Frame.solid_gray(320, 240, 128)
        assert not decoder.can_sustain(frame, fps=30.0)

    @pytest.mark.parametrize("kwargs", [
        {"cycles_per_pixel": 0}, {"complexity_cycles_per_pixel": -1}, {"cpu_hz": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DecoderModel(**kwargs)
