"""Unit tests for repro.player.backlight_control."""

import pytest

from repro.display import led_backlight, ccfl_backlight
from repro.player import BacklightController


@pytest.fixture
def controller():
    return BacklightController(led_backlight(), min_switch_interval_s=0.5)


class TestBasicSwitching:
    def test_starts_at_full(self, controller):
        assert controller.current_level == 255

    def test_first_request_applies(self, controller):
        assert controller.request(0.0, 100) == 100
        assert controller.switch_count == 1

    def test_identical_request_free(self, controller):
        controller.request(0.0, 100)
        controller.request(0.1, 100)
        assert controller.switch_count == 1

    def test_invalid_level(self, controller):
        with pytest.raises(ValueError):
            controller.request(0.0, 300)


class TestRateLimiting:
    def test_fast_change_deferred(self, controller):
        controller.request(0.0, 100)
        level = controller.request(0.1, 200)  # within 0.5 s guard
        assert level == 100  # not applied yet

    def test_deferred_change_applied_later(self, controller):
        controller.request(0.0, 100)
        controller.request(0.1, 200)
        level = controller.request(0.7, 200)
        assert level == 200

    def test_pending_applied_on_next_request_even_if_same(self, controller):
        controller.request(0.0, 100)
        controller.request(0.1, 200)     # deferred
        level = controller.request(0.6, 150)  # new request after guard
        assert level == 150

    def test_pending_superseded(self, controller):
        controller.request(0.0, 100)
        controller.request(0.1, 200)  # deferred
        controller.request(0.2, 100)  # back to current -> pending cleared
        level = controller.request(0.8, 100)
        assert level == 100
        assert controller.switch_count == 1

    def test_min_interval_enforced(self, controller):
        for i in range(20):
            controller.request(i * 0.1, 50 + i * 10)
        assert controller.min_observed_interval() >= 0.5 - 1e-9

    def test_response_time_floor(self):
        """A CCFL's 40 ms response time bounds the interval even when no
        policy interval is configured."""
        controller = BacklightController(ccfl_backlight(), min_switch_interval_s=0.0)
        assert controller.min_switch_interval_s == pytest.approx(0.04)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            BacklightController(led_backlight(), min_switch_interval_s=-1.0)


class TestStatistics:
    def test_switches_per_second(self, controller):
        controller.request(0.0, 100)
        controller.request(1.0, 200)
        assert controller.switches_per_second(2.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            controller.switches_per_second(0.0)

    def test_min_interval_empty(self, controller):
        assert controller.min_observed_interval() == float("inf")

    def test_events_recorded(self, controller):
        controller.request(0.0, 100)
        controller.request(1.0, 50)
        assert [e.level for e in controller.events] == [100, 50]
        assert [e.time_s for e in controller.events] == [0.0, 1.0]
