"""Unit tests for repro.player.dvfs_playback."""

import numpy as np
import pytest

from repro.core import AnnotationPipeline, DvfsAnnotator, SchemeParameters
from repro.display import ipaq_5555
from repro.player import DecoderModel, DvfsPlaybackEngine


SUBRES = 160 * 120


@pytest.fixture
def device():
    return ipaq_5555()


@pytest.fixture
def decoder():
    return DecoderModel(reference_pixels=SUBRES)


@pytest.fixture
def stream_and_track(tiny_clip, fast_params, device, decoder):
    pipeline = AnnotationPipeline(fast_params.with_quality(0.10))
    profile = pipeline.profile(tiny_clip)
    stream = pipeline.build_stream(tiny_clip, device)
    track = DvfsAnnotator(decoder=decoder).annotate_with_profile(tiny_clip, profile)
    return stream, track


class TestDvfsPlayback:
    def test_no_late_frames(self, stream_and_track, device, decoder):
        """The annotated worst case plus headroom covers every frame."""
        stream, track = stream_and_track
        result = DvfsPlaybackEngine(device, decoder=decoder).play(stream, track)
        assert result.late_frames == 0

    def test_dvfs_adds_savings(self, stream_and_track, device, decoder):
        stream, track = stream_and_track
        result = DvfsPlaybackEngine(device, decoder=decoder).play(stream, track)
        assert result.dvfs_extra_savings > 0.0
        assert result.combined_savings > result.backlight_only_savings

    def test_savings_decomposition(self, stream_and_track, device, decoder):
        stream, track = stream_and_track
        result = DvfsPlaybackEngine(device, decoder=decoder).play(stream, track)
        assert result.combined_savings == pytest.approx(
            result.backlight_only_savings + result.dvfs_extra_savings
        )

    def test_slows_cpu_below_max(self, stream_and_track, device, decoder):
        stream, track = stream_and_track
        engine = DvfsPlaybackEngine(device, decoder=decoder)
        result = engine.play(stream, track)
        assert result.mean_frequency_hz < engine.cpu.max_level.hz

    def test_frame_count_mismatch(self, stream_and_track, device, decoder, library_clip, fast_params):
        stream, _ = stream_and_track
        other_pipeline = AnnotationPipeline(fast_params)
        other_profile = other_pipeline.profile(library_clip)
        wrong_track = DvfsAnnotator(decoder=decoder).annotate_with_profile(
            library_clip, other_profile
        )
        with pytest.raises(ValueError, match="covers"):
            DvfsPlaybackEngine(device, decoder=decoder).play(stream, wrong_track)

    def test_cpu_calibrated_from_device(self, device):
        engine = DvfsPlaybackEngine(device)
        assert engine.cpu.active_power_w(engine.cpu.max_level) == pytest.approx(
            device.power.cpu_active_w
        )

    def test_qvga_decoder_pins_max_frequency(self, tiny_clip, fast_params, device):
        """At full QVGA the XScale has no slack: DVFS adds ~nothing (why
        the paper's own player could not have used it)."""
        decoder = DecoderModel(reference_pixels=320 * 240)
        pipeline = AnnotationPipeline(fast_params.with_quality(0.10))
        profile = pipeline.profile(tiny_clip)
        stream = pipeline.build_stream(tiny_clip, device)
        track = DvfsAnnotator(decoder=decoder).annotate_with_profile(tiny_clip, profile)
        result = DvfsPlaybackEngine(device, decoder=decoder).play(stream, track)
        assert result.mean_frequency_hz == pytest.approx(400e6)
        assert result.dvfs_extra_savings == pytest.approx(0.0, abs=1e-9)

    def test_network_duty_validation(self, device):
        with pytest.raises(ValueError):
            DvfsPlaybackEngine(device, network_duty=1.5)
