"""Cross-module integration tests: the full system end to end."""

import numpy as np
import pytest

from repro.camera import CompensationValidator, DigitalCamera
from repro.core import AnnotationPipeline, DeviceAnnotationTrack, SchemeParameters
from repro.display import ipaq_5555, ipaq_3650, zaurus_sl5600
from repro.player import PlaybackEngine
from repro.power import simulated_backlight_savings
from repro.streaming import (
    MediaServer,
    MobileClient,
    NetworkPath,
    TranscodingProxy,
)


@pytest.fixture
def device():
    return ipaq_5555()


class TestServerToClientEquivalence:
    def test_streamed_levels_equal_offline_pipeline(self, tiny_clip, fast_params, device):
        """The server/client path must apply exactly the schedule the
        offline pipeline computes — no drift through serialization,
        packetization or playback."""
        server = MediaServer(params=fast_params)
        server.add_clip(tiny_clip)
        client = MobileClient(device)
        session = server.open_session(client.request("tiny", 0.05))
        packets = list(server.stream(session))
        result = client.play_stream(session, packets)

        offline = AnnotationPipeline(fast_params.with_quality(0.05)).build_stream(
            tiny_clip, device
        )
        assert np.array_equal(result.applied_levels, offline.backlight_levels())

    def test_all_devices_end_to_end(self, tiny_clip, fast_params):
        server = MediaServer(params=fast_params)
        server.add_clip(tiny_clip)
        for dev in (ipaq_5555(), ipaq_3650(), zaurus_sl5600()):
            client = MobileClient(dev)
            session = server.open_session(client.request("tiny", 0.10))
            packets = list(server.stream(session))
            result = client.play_stream(session, packets)
            assert result.total_savings > 0.0, dev.name

    def test_network_delivery_sustains_playback(self, tiny_clip, fast_params, device):
        server = MediaServer(params=fast_params)
        server.add_clip(tiny_clip)
        client = MobileClient(device)
        session = server.open_session(client.request("tiny", 0.05))
        packets = list(server.stream(session))
        schedule = NetworkPath().deliver(packets)
        # every frame arrives before its presentation deadline (+ startup)
        deadlines = 0.5 + np.arange(len(packets) - 1) / tiny_clip.fps
        assert np.all(schedule.arrival_times_s[1:] <= deadlines)


class TestProxyEquivalence:
    def test_proxy_stream_plays_on_client(self, tiny_clip, fast_params, device):
        server = MediaServer(params=fast_params)
        server.add_clip(tiny_clip)
        client = MobileClient(device)
        session = server.open_session(client.request("tiny", 0.05))
        proxy = TranscodingProxy(device, fast_params.with_quality(0.05), chunk_frames=12)
        packets = list(proxy.process(iter(tiny_clip), fps=tiny_clip.fps))
        result = client.play_stream(session, packets)
        assert result.applied_levels.shape == (tiny_clip.frame_count,)


class TestCameraClosesTheLoop:
    def test_streamed_frames_validate_against_originals(self, tiny_clip, fast_params, device):
        """Figure 2 end-to-end: photograph what the client displays and
        compare to the original at full backlight."""
        pipeline = AnnotationPipeline(fast_params.with_quality(0.05))
        stream = pipeline.build_stream(tiny_clip, device)
        validator = CompensationValidator(device, DigitalCamera(noise_sigma=0.002, seed=4))
        checked = 0
        for i in range(0, tiny_clip.frame_count, 6):
            comp = stream.compensated_frame(i).frame
            level = int(stream.backlight_levels()[i])
            report = validator.validate(tiny_clip.frame(i), comp, level)
            assert report.acceptable(), f"frame {i}: {report!r}"
            checked += 1
        assert checked >= 6

    def test_validation_catches_wrong_device_annotations(self, tiny_clip, fast_params):
        """Annotations bound to the wrong device's transfer produce a
        visibly darker image — the validator must notice."""
        pipeline = AnnotationPipeline(fast_params.with_quality(0.05))
        target = ipaq_3650()  # convex transfer: level numbers mean less light
        wrong_stream = pipeline.build_stream(tiny_clip, ipaq_5555())
        validator = CompensationValidator(target, DigitalCamera(noise_sigma=0.0))
        i = 3  # dark scene, deep dimming
        comp = wrong_stream.compensated_frame(i).frame
        level = int(wrong_stream.backlight_levels()[i])
        report = validator.validate(tiny_clip.frame(i), comp, level)
        assert not report.acceptable()


class TestAnnotationPortability:
    def test_one_track_many_devices(self, tiny_clip, fast_params):
        """'same for all types of PDA clients': one luminance track binds
        to every device, each getting its own levels."""
        pipeline = AnnotationPipeline(fast_params.with_quality(0.10))
        track = pipeline.annotate(tiny_clip)
        levels = {}
        for dev in (ipaq_5555(), ipaq_3650(), zaurus_sl5600()):
            bound = track.bind(dev)
            assert bound.frame_count == tiny_clip.frame_count
            levels[dev.name] = tuple(bound.per_frame_levels())
        assert len(set(levels.values())) == 3

    def test_serialized_track_drives_playback(self, tiny_clip, fast_params, device):
        pipeline = AnnotationPipeline(fast_params.with_quality(0.05))
        bound = pipeline.annotate_for_device(tiny_clip, device)
        data = bound.to_bytes()
        restored = DeviceAnnotationTrack.from_bytes(data)
        assert np.array_equal(restored.per_frame_levels(), bound.per_frame_levels())


class TestPowerAccounting:
    def test_playback_and_measurement_agree(self, library_clip, fast_params, device):
        pipeline = AnnotationPipeline(fast_params.with_quality(0.10))
        stream = pipeline.build_stream(library_clip, device)
        result = PlaybackEngine(device).play(stream)
        measured = result.measure().savings_vs(result.measure_baseline())
        assert measured == pytest.approx(result.total_savings, abs=0.02)

    def test_backlight_vs_total_savings_relation(self, library_clip, fast_params, device):
        """Whole-device savings ~ backlight savings x backlight share of
        this run's baseline power — Figure 10 vs Figure 9."""
        pipeline = AnnotationPipeline(fast_params.with_quality(0.20))
        stream = pipeline.build_stream(library_clip, device)
        result = PlaybackEngine(device).play(stream)
        bl_savings = simulated_backlight_savings(result.applied_levels, device)
        share = float(device.backlight.power(255)) / result.baseline_mean_power_w
        assert result.total_savings == pytest.approx(bl_savings * share, abs=0.02)

    def test_battery_runtime_extension(self, library_clip, fast_params, device):
        from repro.power import Battery
        pipeline = AnnotationPipeline(fast_params.with_quality(0.20))
        stream = pipeline.build_stream(library_clip, device)
        result = PlaybackEngine(device).play(stream)
        extension = Battery().runtime_extension(
            result.baseline_mean_power_w, result.mean_power_w
        )
        assert extension > 0.05  # >5 % more playback time
