"""Docs gate: the markdown tree must not rot.

Checks every markdown file at the repo root and under ``docs/`` for
broken *relative* links (files that moved or were renamed) and keeps the
docs site's required pages present.  External links are not fetched —
this gate must pass offline.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` markdown links; images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Inline ``code spans`` are stripped first so example snippets like
#: ``[a](b)`` inside backticks do not count as links.
_CODE_SPAN = re.compile(r"`[^`]*`")

_FENCE = re.compile(r"^(```|~~~)")


def _markdown_files():
    files = sorted(REPO_ROOT.glob("*.md")) + sorted(
        (REPO_ROOT / "docs").glob("**/*.md")
    )
    assert files, "no markdown files found — wrong repo root?"
    return files


def _links(path: Path):
    """Yield (line_number, target) for every link outside code blocks."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(_CODE_SPAN.sub("", line)):
            yield lineno, match.group(1)


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "#"))


@pytest.mark.parametrize("path", _markdown_files(), ids=lambda p: p.name)
def test_relative_links_resolve(path):
    """Every relative link in every markdown file points at a real file."""
    broken = []
    for lineno, target in _links(path):
        if _is_external(target):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(f"{path.name}:{lineno}: {target}")
    assert not broken, "broken relative links:\n" + "\n".join(broken)


def test_docs_site_pages_present():
    """The documented docs tree exists with non-trivial content."""
    for name in ("architecture.md", "operations.md", "protocol.md"):
        page = REPO_ROOT / "docs" / name
        assert page.is_file(), f"docs/{name} is missing"
        assert len(page.read_text()) > 500, f"docs/{name} looks like a stub"


def test_readme_links_docs_site():
    """The README routes readers to the docs tree."""
    readme = (REPO_ROOT / "README.md").read_text()
    for name in ("docs/architecture.md", "docs/operations.md", "docs/protocol.md"):
        assert name in readme, f"README does not link {name}"


def test_roadmap_open_items_populated():
    """ROADMAP's 'Open items' section must list real directions, not the
    placeholder it shipped with."""
    roadmap = (REPO_ROOT / "ROADMAP.md").read_text()
    assert "Open items" in roadmap
    assert "populated by the first re-anchor" not in roadmap
    section = roadmap.split("Open items", 1)[1]
    assert section.count("- ") >= 3, "Open items should list concrete directions"


def test_protocol_kind_table_matches_code():
    """Doc–code sync gate: the control-plane table tracks the wire.

    Every kind the codec speaks (``repro.net.messages.MESSAGE_KINDS``)
    must have a row in docs/protocol.md's control-plane table, and every
    kind the table documents must still exist in the code.  Adding or
    removing a message kind without regenerating the table fails CI.
    """
    from repro.net.messages import MESSAGE_KINDS

    text = (REPO_ROOT / "docs" / "protocol.md").read_text()
    rows = re.findall(r"^\| `([a-z]+)` \|", text, flags=re.MULTILINE)
    assert rows, "protocol.md lost its control-plane kind table"
    documented = set(rows)
    spoken = set(MESSAGE_KINDS)
    missing = spoken - documented
    stale = documented - spoken
    assert not missing, (
        f"wire kinds missing from docs/protocol.md: {sorted(missing)} — "
        "regenerate the control-plane table"
    )
    assert not stale, (
        f"docs/protocol.md documents kinds the wire no longer speaks: "
        f"{sorted(stale)}"
    )


def test_operations_documents_requality_metric():
    """The runbook covers the mid-stream adaptation loop."""
    operations = (REPO_ROOT / "docs" / "operations.md").read_text()
    assert "repro_requality_total" in operations
    assert "session_requality" in operations


def test_readme_links_adaptation_and_benchmarks():
    """The README routes readers to the adaptation note and bench docs."""
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/adaptation.md" in readme
    assert "docs/benchmarks.md" in readme
