"""Unit tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_clip_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["annotate", "nosferatu"])

    def test_unknown_device_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["savings", "catwoman", "--device", "palm"])


class TestCatalog:
    def test_lists_clips_and_devices(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "ice_age" in out
        assert "ipaq5555" in out
        assert "CCFL" in out


class TestAnnotate:
    def test_prints_scene_table(self, capsys):
        assert main(["annotate", "catwoman", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "scenes" in out
        assert "backlight" in out

    def test_writes_track_file(self, capsys, tmp_path):
        path = tmp_path / "track.bin"
        assert main(["annotate", "catwoman", "--scale", "0.2", "-o", str(path)]) == 0
        data = path.read_bytes()
        from repro.core import DeviceAnnotationTrack
        track = DeviceAnnotationTrack.from_bytes(data)
        assert track.frame_count > 0


class TestPolicyFlag:
    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["annotate", "catwoman", "--policy", "warp"])

    def test_annotate_with_alternative_policy(self, capsys):
        assert main(["annotate", "catwoman", "--scale", "0.2",
                     "--policy", "hebs"]) == 0
        out = capsys.readouterr().out
        assert "scenes" in out

    def test_stats_snapshot_distinguishes_policies(self, capsys):
        assert main(["annotate", "ice_age", "--scale", "0.1",
                     "--policy", "spatial", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "policy.spatial" in out
        assert "repro_policy_scenes_total{policy=spatial}" in out

    def test_policy_changes_the_annotation(self, capsys, tmp_path):
        tracks = {}
        for policy in ("clip-quality", "hebs"):
            path = tmp_path / f"{policy}.bin"
            assert main(["annotate", "catwoman", "--scale", "0.2",
                         "--policy", policy, "-o", str(path)]) == 0
            tracks[policy] = path.read_bytes()
        assert tracks["clip-quality"] != tracks["hebs"]
        assert tracks["clip-quality"][:4] == b"AND1"
        assert tracks["hebs"][:4] == b"AND2"


class TestSavings:
    def test_reports_both_savings(self, capsys):
        assert main(["savings", "spiderman2", "--scale", "0.15",
                     "--quality", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "backlight savings" in out
        assert "total savings" in out


class TestSweep:
    def test_subset_sweep(self, capsys):
        assert main(["sweep", "--clips", "ice_age", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "ice_age" in out
        assert "20%" in out

    def test_row_per_clip(self, capsys):
        main(["sweep", "--clips", "ice_age", "catwoman", "--scale", "0.1"])
        out = capsys.readouterr().out
        assert len([l for l in out.splitlines() if l.strip()]) == 3  # header + 2

    def test_positional_clips(self, capsys):
        assert main(["sweep", "ice_age", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "ice_age" in out

    def test_positional_and_flag_clips_merge(self, capsys):
        main(["sweep", "ice_age", "--clips", "catwoman", "--scale", "0.1"])
        out = capsys.readouterr().out
        assert "ice_age" in out and "catwoman" in out

    def test_unknown_positional_clip_rejected(self, capsys):
        assert main(["sweep", "nosferatu"]) == 2
        assert "unknown clip" in capsys.readouterr().err


class TestStatsFlags:
    def test_sweep_stats_adds_clipped_column_and_snapshot(self, capsys):
        assert main(["sweep", "ice_age", "--scale", "0.1", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "clipped" in out
        assert "telemetry snapshot" in out
        assert "pipeline.compensate" in out

    def test_annotate_stats_json_is_parseable(self, capsys):
        import json

        assert main(["annotate", "ice_age", "--scale", "0.1", "--stats-json"]) == 0
        out = capsys.readouterr().out
        records = [json.loads(l) for l in out.splitlines() if l.startswith("{")]
        assert any(r["name"] == "repro_span_seconds" for r in records)

    def test_no_stats_flag_prints_no_snapshot(self, capsys):
        assert main(["savings", "ice_age", "--scale", "0.1"]) == 0
        assert "telemetry snapshot" not in capsys.readouterr().out


class TestTelemetryCommand:
    def test_table_dump(self, capsys):
        assert main(["telemetry"]) == 0
        out = capsys.readouterr().out
        assert "telemetry snapshot" in out
        assert "repro_backlight_switches_total" in out

    def test_prometheus_dump(self, capsys):
        assert main(["telemetry", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_span_seconds histogram" in out

    def test_jsonl_dump(self, capsys):
        import json

        assert main(["telemetry", "--format", "jsonl"]) == 0
        for line in capsys.readouterr().out.splitlines():
            json.loads(line)


class TestCalibrate:
    def test_prints_transfer(self, capsys):
        assert main(["calibrate", "--device", "ipaq3650"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "gamma" in out


class TestTrace:
    def test_prints_sparklines(self, capsys):
        assert main(["trace", "themovie", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "frame max lum" in out
        assert "power saved" in out


class TestValidationErrors:
    def test_bad_quality(self, capsys):
        assert main(["savings", "catwoman", "--quality", "2.0"]) == 2
        assert "quality" in capsys.readouterr().err

    def test_bad_scale(self, capsys):
        assert main(["savings", "catwoman", "--scale", "-1"]) == 2
        assert "scale" in capsys.readouterr().err


class TestReport:
    def test_runs_full_sweep(self, capsys):
        assert main(["report", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "Figure 10" in out
        assert "headline" in out


class TestServe:
    def test_unknown_clip_rejected(self, capsys):
        assert main(["serve", "nosferatu"]) == 2
        assert "unknown clip" in capsys.readouterr().err

    def test_serves_for_duration_then_exits(self, capsys):
        assert main(["serve", "themovie", "--port", "0", "--scale", "0.05",
                     "--duration", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "serving 1 clip(s) on 127.0.0.1:" in out

    def test_capped_serve_prints_admission_and_drains(self, capsys):
        assert main(["serve", "themovie", "--port", "0", "--scale", "0.05",
                     "--duration", "0.3", "--max-sessions", "2"]) == 0
        out = capsys.readouterr().out
        assert "max sessions 2" in out
        assert "drained cleanly" in out

    def test_invalid_max_sessions_rejected(self, capsys):
        assert main(["serve", "themovie", "--port", "0",
                     "--max-sessions", "0"]) == 2
        assert "max-sessions" in capsys.readouterr().err


class TestStatus:
    def test_probes_live_server(self, capsys, tiny_clip, fast_params):
        from repro.api import StreamingService

        service = StreamingService(fast_params).add_clip(tiny_clip)
        (host, port), stop, thread = TestFetch._serve_in_thread(service)
        try:
            assert main(["status", "--host", host, "--port", str(port)]) == 0
        finally:
            stop.set()
            thread.join(10)
        out = capsys.readouterr().out
        assert ": ready" in out
        assert ": yes" in out
        assert "resumable sessions" in out

    def test_unreachable_server_exits_nonzero(self, capsys):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        assert main(["status", "--port", str(port), "--timeout", "1"]) == 1
        assert "unreachable" in capsys.readouterr().err


class TestFetch:
    @staticmethod
    def _serve_in_thread(service):
        """Host a StreamingService on a daemon thread; yields (addr, stop)."""
        import asyncio
        import threading

        ready = threading.Event()
        stop = threading.Event()
        box = {}

        async def run():
            async with service.serve() as srv:
                box["address"] = srv.address
                ready.set()
                while not stop.is_set():
                    await asyncio.sleep(0.02)

        thread = threading.Thread(target=lambda: asyncio.run(run()), daemon=True)
        thread.start()
        assert ready.wait(10), "server thread did not come up"
        return box["address"], stop, thread

    def test_round_trip_against_live_server(self, capsys, tiny_clip, fast_params):
        from repro.api import StreamingService

        service = StreamingService(fast_params).add_clip(tiny_clip)
        (host, port), stop, thread = self._serve_in_thread(service)
        try:
            assert main(["fetch", tiny_clip.name, "--host", host,
                         "--port", str(port), "--quality", "0.05"]) == 0
        finally:
            stop.set()
            thread.join(10)
        out = capsys.readouterr().out
        assert "fetched" in out
        assert "total savings" in out
        assert "attempt(s)" in out

    def test_unknown_clip_is_negotiation_error(self, capsys, tiny_clip, fast_params):
        from repro.api import StreamingService

        service = StreamingService(fast_params).add_clip(tiny_clip)
        (host, port), stop, thread = self._serve_in_thread(service)
        try:
            assert main(["fetch", "nosuch", "--host", host,
                         "--port", str(port), "--retries", "0"]) == 1
        finally:
            stop.set()
            thread.join(10)
        assert "rejected" in capsys.readouterr().err

    def test_dead_port_reports_error(self, capsys):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        assert main(["fetch", "themovie", "--port", str(port),
                     "--retries", "0"]) == 1
        assert "error" in capsys.readouterr().err


class TestStatusExitCode:
    def test_accepting_server_exits_zero(self, tiny_clip, fast_params):
        from repro.api import StreamingService

        service = StreamingService(fast_params).add_clip(tiny_clip)
        (host, port), stop, thread = TestFetch._serve_in_thread(service)
        try:
            assert main(["status", "--host", host, "--port", str(port)]) == 0
        finally:
            stop.set()
            thread.join(10)

    def test_non_accepting_server_exits_one(self, capsys, monkeypatch):
        """Exit-code contract: 0 only while the server accepts sessions,
        so shell scripts can gate deploys on `repro status`."""
        from repro import api
        from repro.net.messages import StatusInfo

        monkeypatch.setattr(
            api, "server_status_sync",
            lambda host, port, timeout_s=5.0: StatusInfo(
                state="draining", accepting=False,
                active_sessions=3, waiting_sessions=0,
            ),
        )
        assert main(["status", "--port", "1"]) == 1
        out = capsys.readouterr().out
        assert ": draining" in out
        assert ": no" in out


class TestStats:
    def test_table_snapshot_from_live_server(self, capsys, tiny_clip, fast_params):
        from repro.api import StreamingService

        service = StreamingService(fast_params).add_clip(tiny_clip)
        (host, port), stop, thread = TestFetch._serve_in_thread(service)
        try:
            assert main(["stats", "--host", host, "--port", str(port)]) == 0
        finally:
            stop.set()
            thread.join(10)
        out = capsys.readouterr().out
        assert "server health:" in out
        assert "accepting" in out
        assert "repro_net_stats_probes_total" in out

    def test_json_and_prometheus_formats(self, capsys, tiny_clip, fast_params):
        import json

        from repro.api import StreamingService

        service = StreamingService(fast_params).add_clip(tiny_clip)
        (host, port), stop, thread = TestFetch._serve_in_thread(service)
        try:
            assert main(["stats", "--host", host, "--port", str(port),
                         "--format", "json", "--events"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["health"]["accepting"] is True
            assert "metrics" in payload
            assert main(["stats", "--host", host, "--port", str(port),
                         "--format", "prometheus"]) == 0
            out = capsys.readouterr().out
            assert "# TYPE repro_net_stats_probes_total counter" in out
        finally:
            stop.set()
            thread.join(10)

    def test_watch_polls_count_times(self, capsys, tiny_clip, fast_params):
        from repro.api import StreamingService

        service = StreamingService(fast_params).add_clip(tiny_clip)
        (host, port), stop, thread = TestFetch._serve_in_thread(service)
        try:
            assert main(["stats", "--host", host, "--port", str(port),
                         "--watch", "0.01", "--count", "2",
                         "--format", "json"]) == 0
        finally:
            stop.set()
            thread.join(10)
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 2

    def test_unreachable_server_exits_one(self, capsys):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        assert main(["stats", "--port", str(port), "--timeout", "1"]) == 1
        assert "unreachable" in capsys.readouterr().err


class TestTraceWire:
    @pytest.fixture
    def served_library_clip(self, fast_params):
        from repro.api import StreamingService
        from repro.video import make_clip

        clip = make_clip("spiderman2", resolution=(32, 24), duration_scale=0.1)
        service = StreamingService(fast_params).add_clip(clip)
        (host, port), stop, thread = TestFetch._serve_in_thread(service)
        yield clip, host, port
        stop.set()
        thread.join(10)

    def test_wire_trace_prints_linked_tree(self, capsys, served_library_clip):
        clip, host, port = served_library_clip
        assert main(["trace", clip.name, "--wire", "--host", host,
                     "--port", str(port), "--quality", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "trace " in out
        assert "net.fetch" in out
        assert "net.connect" in out
        # server-side spans came back over the stats probe
        assert "net.session" in out

    def test_wire_trace_jsonl_output(self, capsys, served_library_clip):
        import json

        clip, host, port = served_library_clip
        assert main(["trace", clip.name, "--wire", "--host", host,
                     "--port", str(port), "--quality", "0.05",
                     "--jsonl"]) == 0
        rows = [json.loads(line)
                for line in capsys.readouterr().out.splitlines() if line]
        assert len(rows) >= 5
        assert len({r["trace_id"] for r in rows}) == 1
        names = {r["name"] for r in rows}
        assert "net.fetch" in names and "net.session" in names

    def test_sparkline_mode_unchanged_without_wire(self, capsys):
        assert main(["trace", "themovie", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6 series" in out
        assert "net.fetch" not in out
