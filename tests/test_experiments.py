"""Unit tests for repro.experiments (the programmatic reproduction API)."""

import numpy as np
import pytest

from repro import experiments

FAST = dict(resolution=(48, 36), duration_scale=0.08)


class TestFigure9:
    @pytest.fixture(scope="class")
    def fig9(self):
        return experiments.figure9(names=("catwoman", "ice_age"), **FAST)

    def test_rows_per_clip(self, fig9):
        assert set(fig9.rows) == {"catwoman", "ice_age"}
        assert all(len(v) == len(fig9.qualities) for v in fig9.rows.values())

    def test_monotone(self, fig9):
        for row in fig9.rows.values():
            assert all(b >= a - 1e-9 for a, b in zip(row, row[1:]))

    def test_best_clip(self, fig9):
        name, value = fig9.best_clip()
        assert name == "catwoman"
        assert value == fig9.rows["catwoman"][-1]

    def test_format_contains_clips(self, fig9):
        text = fig9.format()
        assert "catwoman" in text and "20%" in text


class TestFigure10:
    def test_measured_savings_band(self):
        fig10 = experiments.figure10(names=("catwoman",), **FAST)
        row = fig10.rows["catwoman"]
        assert all(-0.05 <= v <= 0.5 for v in row)
        assert row[-1] > row[0]

    def test_kind_label(self):
        fig10 = experiments.figure10(names=("ice_age",), qualities=(0.0,), **FAST)
        assert fig10.kind == "total-device"


class TestFigure6:
    def test_trace_shapes(self):
        trace = experiments.figure6("themovie", **FAST)
        n = trace.times_s.size
        assert trace.frame_max_luminance.shape == (n,)
        assert trace.scene_max_luminance.shape == (n,)
        assert trace.instantaneous_savings.shape == (n,)
        assert trace.scene_count >= 1

    def test_scene_dominates_frame(self):
        trace = experiments.figure6("spiderman2", **FAST)
        assert np.all(trace.scene_max_luminance >= trace.frame_max_luminance - 1e-9)

    def test_format(self):
        trace = experiments.figure6("themovie", **FAST)
        assert "power_saved" in trace.format()


class TestFigure7:
    @pytest.fixture(scope="class")
    def fig7(self):
        return experiments.figure7()

    def test_curve_per_device(self, fig7):
        assert set(fig7.curves) == {"ipaq5555", "ipaq3650", "zaurus_sl5600"}

    def test_monotone_curves(self, fig7):
        for curve in fig7.curves.values():
            assert all(b >= a - 0.02 for a, b in zip(curve, curve[1:]))

    def test_format_alignment(self, fig7):
        lines = fig7.format().splitlines()
        assert len(lines) == len(fig7.levels) + 1


class TestBacklightShare:
    def test_shares_in_band(self):
        breakdown = experiments.backlight_share()
        for name in breakdown.rows:
            assert 0.2 <= breakdown.share(name) <= 0.45

    def test_total_is_sum(self):
        breakdown = experiments.backlight_share()
        for row in breakdown.rows.values():
            parts = row["base"] + row["cpu"] + row["network"] + row["panel"] + row["backlight"]
            assert row["total"] == pytest.approx(parts)

    def test_format(self):
        assert "share" in experiments.backlight_share().format()


class TestFigure8:
    def test_white_sweep_shape(self):
        sweep = experiments.figure8()
        assert len(sweep.brightness_at_full) == len(sweep.gray_levels)
        assert sweep.fitted_gamma == pytest.approx(1.0, abs=0.1)

    def test_half_backlight_darker(self):
        sweep = experiments.figure8()
        assert sweep.brightness_at_half[-1] < sweep.brightness_at_full[-1]

    def test_format(self):
        assert "gamma" in experiments.figure8().format()
