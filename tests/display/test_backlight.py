"""Unit tests for repro.display.backlight."""

import numpy as np
import pytest

from repro.display import BacklightModel, ccfl_backlight, led_backlight
from repro.display.transfer import MAX_BACKLIGHT_LEVEL


class TestBacklightModel:
    def test_power_affine_endpoints(self):
        bl = BacklightModel(kind="LED", power_max_w=1.0, power_floor_w=0.1)
        assert float(bl.power(0)) == pytest.approx(0.1)
        assert float(bl.power(MAX_BACKLIGHT_LEVEL)) == pytest.approx(1.0)

    def test_power_midpoint(self):
        bl = BacklightModel(kind="LED", power_max_w=1.0, power_floor_w=0.0)
        assert float(bl.power(MAX_BACKLIGHT_LEVEL / 2)) == pytest.approx(0.5)

    def test_power_monotone(self):
        bl = led_backlight()
        levels = np.arange(256)
        assert np.all(np.diff(bl.power(levels)) > 0)

    def test_power_vectorized(self):
        bl = led_backlight()
        assert np.asarray(bl.power(np.array([0, 128, 255]))).shape == (3,)

    def test_out_of_range_level(self):
        bl = led_backlight()
        with pytest.raises(ValueError):
            bl.power(-1)
        with pytest.raises(ValueError):
            bl.power(300)

    def test_savings_fraction_bounds(self):
        bl = led_backlight()
        assert float(bl.savings_fraction(MAX_BACKLIGHT_LEVEL)) == pytest.approx(0.0)
        full_savings = float(bl.savings_fraction(0))
        assert 0.0 < full_savings <= 1.0

    def test_savings_fraction_with_floor(self):
        """The inverter floor caps achievable savings below 100 %."""
        bl = ccfl_backlight(power_max_w=1.5, inverter_floor_w=0.25)
        assert float(bl.savings_fraction(0)) == pytest.approx(1 - 0.25 / 1.5)


class TestValidation:
    def test_non_positive_max(self):
        with pytest.raises(ValueError):
            BacklightModel(kind="LED", power_max_w=0.0)

    def test_floor_exceeds_max(self):
        with pytest.raises(ValueError):
            BacklightModel(kind="LED", power_max_w=1.0, power_floor_w=1.0)

    def test_negative_response_time(self):
        with pytest.raises(ValueError):
            BacklightModel(kind="LED", power_max_w=1.0, response_time_ms=-1)


class TestFactories:
    def test_ccfl_properties(self):
        bl = ccfl_backlight()
        assert bl.kind == "CCFL"
        assert bl.power_floor_w > 0.1  # inverter overhead
        assert bl.response_time_ms > 10  # slow tube

    def test_led_properties(self):
        bl = led_backlight()
        assert bl.kind == "LED"
        assert bl.power_floor_w < 0.1
        assert bl.response_time_ms <= 5

    def test_led_cheaper_than_ccfl(self):
        """White LEDs offer 'lower power consumption' (Section 2)."""
        assert led_backlight().power_max_w < ccfl_backlight().power_max_w
