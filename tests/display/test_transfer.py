"""Unit tests for repro.display.transfer."""

import numpy as np
import pytest

from repro.display import (
    MAX_BACKLIGHT_LEVEL,
    DisplayTransfer,
    GammaBacklightTransfer,
    LinearBacklightTransfer,
    SaturatingBacklightTransfer,
    TabulatedBacklightTransfer,
    WhiteTransfer,
)

ALL_TRANSFERS = [
    LinearBacklightTransfer(),
    GammaBacklightTransfer(1.45),
    GammaBacklightTransfer(0.7),
    SaturatingBacklightTransfer(1.6),
    SaturatingBacklightTransfer(3.0),
    TabulatedBacklightTransfer([0, 64, 128, 192, 255], [0.0, 0.4, 0.7, 0.9, 1.0]),
]


@pytest.mark.parametrize("transfer", ALL_TRANSFERS, ids=lambda t: repr(t))
class TestTransferContract:
    """Invariants every backlight transfer must satisfy."""

    def test_endpoints(self, transfer):
        assert float(transfer.luminance(0)) == pytest.approx(0.0, abs=1e-9)
        assert float(transfer.luminance(MAX_BACKLIGHT_LEVEL)) == pytest.approx(1.0)

    def test_monotone(self, transfer):
        table = transfer.table()
        assert np.all(np.diff(table) >= -1e-12)

    def test_range(self, transfer):
        table = transfer.table()
        assert table.min() >= 0.0 and table.max() <= 1.0 + 1e-12

    def test_level_rejects_out_of_range(self, transfer):
        with pytest.raises(ValueError):
            transfer.luminance(-1)
        with pytest.raises(ValueError):
            transfer.luminance(256)

    def test_inverse_reaches_target(self, transfer):
        """level_for_luminance must never under-deliver."""
        for target in (0.05, 0.3, 0.55, 0.9, 1.0):
            level = transfer.level_for_luminance(target)
            assert float(transfer.luminance(level)) >= target - 1e-9

    def test_inverse_is_minimal(self, transfer):
        for target in (0.3, 0.7):
            level = transfer.level_for_luminance(target)
            if level > 0:
                assert float(transfer.luminance(level - 1)) < target

    def test_inverse_of_zero(self, transfer):
        assert transfer.level_for_luminance(0.0) == 0

    def test_inverse_saturates(self, transfer):
        assert transfer.level_for_luminance(2.0) <= MAX_BACKLIGHT_LEVEL

    def test_power_fraction(self, transfer):
        frac = transfer.power_fraction_for_luminance(0.5)
        assert 0.0 <= frac <= 1.0

    def test_vectorized(self, transfer):
        out = transfer.luminance(np.array([0, 128, 255]))
        assert np.asarray(out).shape == (3,)


class TestSpecificShapes:
    def test_linear_is_identity(self):
        t = LinearBacklightTransfer()
        assert float(t.luminance(128)) == pytest.approx(128 / 255)

    def test_convex_gamma_below_linear(self):
        t = GammaBacklightTransfer(1.45)
        assert float(t.luminance(128)) < 128 / 255

    def test_concave_saturating_above_linear(self):
        t = SaturatingBacklightTransfer(1.6)
        assert float(t.luminance(128)) > 128 / 255

    def test_saturating_concavity_monotone_in_knee(self):
        mild = SaturatingBacklightTransfer(1.0)
        strong = SaturatingBacklightTransfer(4.0)
        assert float(strong.luminance(64)) > float(mild.luminance(64))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GammaBacklightTransfer(0.0)
        with pytest.raises(ValueError):
            SaturatingBacklightTransfer(-1.0)


class TestTabulatedTransfer:
    def test_interpolates_between_samples(self):
        t = TabulatedBacklightTransfer([0, 255], [0.0, 1.0])
        assert float(t.luminance(128)) == pytest.approx(128 / 255, abs=1e-6)

    def test_normalizes_to_peak(self):
        t = TabulatedBacklightTransfer([0, 255], [0.0, 50.0])
        assert float(t.luminance(255)) == pytest.approx(1.0)

    def test_unsorted_samples_accepted(self):
        t = TabulatedBacklightTransfer([255, 0, 128], [1.0, 0.0, 0.6])
        assert float(t.luminance(128)) == pytest.approx(0.6)

    def test_duplicate_levels_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TabulatedBacklightTransfer([0, 0, 255], [0.0, 0.1, 1.0])

    def test_non_monotone_rejected(self):
        with pytest.raises(ValueError, match="monotone"):
            TabulatedBacklightTransfer([0, 128, 255], [0.0, 0.9, 0.5])

    def test_dark_calibration_rejected(self):
        with pytest.raises(ValueError, match="no light"):
            TabulatedBacklightTransfer([0, 255], [0.0, 0.0])

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            TabulatedBacklightTransfer([0], [0.0])


class TestWhiteTransfer:
    def test_linear_identity(self):
        w = WhiteTransfer(1.0)
        y = np.array([0.0, 0.25, 1.0])
        assert w.luminance(y) == pytest.approx(y)

    def test_gamma_applied(self):
        w = WhiteTransfer(2.0)
        assert float(w.luminance(0.5)) == pytest.approx(0.25)

    def test_range_check(self):
        w = WhiteTransfer(1.0)
        with pytest.raises(ValueError):
            w.luminance(1.5)
        with pytest.raises(ValueError):
            w.luminance(-0.1)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            WhiteTransfer(0.0)


class TestDisplayTransfer:
    @pytest.fixture
    def transfer(self):
        return DisplayTransfer(SaturatingBacklightTransfer(1.6), WhiteTransfer(1.0))

    def test_separable(self, transfer):
        bl = float(transfer.backlight.luminance(100))
        assert float(transfer.relative_luminance(100, 0.5)) == pytest.approx(bl * 0.5)

    def test_level_for_scene_supplies_enough(self, transfer):
        for y in (0.1, 0.4, 0.8, 1.0):
            level = transfer.level_for_scene(y)
            supplied = float(transfer.backlight.luminance(level))
            needed = float(transfer.white.luminance(y))
            assert supplied >= needed - 1e-9

    def test_level_for_scene_full_white_needs_full_backlight(self, transfer):
        assert transfer.level_for_scene(1.0) == MAX_BACKLIGHT_LEVEL

    def test_level_for_scene_range_check(self, transfer):
        with pytest.raises(ValueError):
            transfer.level_for_scene(1.5)

    def test_compensation_gain_restores_intensity(self, transfer):
        """For unclipped pixels, B(l) * W(kY) == W(Y)."""
        level = transfer.level_for_scene(0.4)
        k = transfer.compensation_gain_for_level(level)
        bl = float(transfer.backlight.luminance(level))
        for y in (0.05, 0.2, 0.39):
            original = float(transfer.white.luminance(y))
            compensated = bl * float(transfer.white.luminance(min(y * k, 1.0)))
            assert compensated == pytest.approx(original, rel=1e-6)

    def test_compensation_gain_with_white_gamma(self):
        transfer = DisplayTransfer(GammaBacklightTransfer(1.45), WhiteTransfer(1.2))
        level = transfer.level_for_scene(0.5)
        k = transfer.compensation_gain_for_level(level)
        bl = float(transfer.backlight.luminance(level))
        y = 0.3
        original = float(transfer.white.luminance(y))
        compensated = bl * float(transfer.white.luminance(min(y * k, 1.0)))
        assert compensated == pytest.approx(original, rel=1e-6)

    def test_gain_at_least_one_for_dimming(self, transfer):
        for y in (0.2, 0.6, 0.95):
            level = transfer.level_for_scene(y)
            if level > 0:
                assert transfer.compensation_gain_for_level(level) >= 1.0 - 1e-9

    def test_gain_at_dark_level_rejected(self, transfer):
        with pytest.raises(ValueError, match="no light"):
            transfer.compensation_gain_for_level(0)
