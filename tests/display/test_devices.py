"""Unit tests for repro.display.devices."""

import pytest

from repro.display import (
    DEVICE_REGISTRY,
    DeviceProfile,
    PowerBudget,
    all_devices,
    get_device,
    ipaq_3650,
    ipaq_5555,
    zaurus_sl5600,
)
from repro.display.panel import PanelType


class TestRegistry:
    def test_three_devices(self):
        assert set(DEVICE_REGISTRY) == {"ipaq5555", "ipaq3650", "zaurus_sl5600"}

    def test_get_device(self):
        assert get_device("ipaq5555").name == "ipaq5555"

    def test_unknown_device(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_device("nokia_ngage")

    def test_all_devices(self):
        devices = all_devices()
        assert len(devices) == 3
        assert all(isinstance(d, DeviceProfile) for d in devices)

    def test_fresh_instances(self):
        assert get_device("ipaq5555") is not get_device("ipaq5555")


class TestPaperProperties:
    """Section 5's device descriptions must hold in the models."""

    def test_ipaq5555_transflective_led(self):
        dev = ipaq_5555()
        assert dev.panel.panel_type is PanelType.TRANSFLECTIVE
        assert dev.backlight.kind == "LED"

    def test_ipaq3650_reflective_ccfl(self):
        dev = ipaq_3650()
        assert dev.panel.panel_type is PanelType.REFLECTIVE
        assert dev.backlight.kind == "CCFL"

    def test_zaurus_reflective_ccfl(self):
        dev = zaurus_sl5600()
        assert dev.panel.panel_type is PanelType.REFLECTIVE
        assert dev.backlight.kind == "CCFL"

    def test_ipaq5555_white_transfer_linear(self):
        """'measured luminance was almost linear with the luminance of
        the image' (Figure 7 discussion)."""
        assert ipaq_5555().transfer.white.gamma == pytest.approx(1.0)

    def test_transfer_characteristics_differ(self):
        """'Each display technology showed a different transfer
        characteristic.'"""
        tables = [tuple(d.transfer.backlight.table()[::32]) for d in all_devices()]
        assert len(set(tables)) == 3

    def test_backlight_share_in_paper_band(self):
        """Backlight is 'about 25-30 % of total power consumption'."""
        for dev in all_devices():
            assert 0.20 <= dev.backlight_share() <= 0.40, dev.name

    def test_max_total_power_plausible(self):
        for dev in all_devices():
            assert 2.0 <= dev.max_total_power_w() <= 5.0, dev.name


class TestPowerBudget:
    def test_negative_entry_rejected(self):
        with pytest.raises(ValueError):
            PowerBudget(-0.1, 0.1, 0.2, 0.0, 0.1)

    def test_cpu_ordering(self):
        with pytest.raises(ValueError, match="cpu_active"):
            PowerBudget(0.5, 0.5, 0.2, 0.0, 0.1)

    def test_network_ordering(self):
        with pytest.raises(ValueError, match="network_active"):
            PowerBudget(0.5, 0.1, 0.2, 0.5, 0.1)

    def test_backlight_transfer_shortcut(self):
        dev = ipaq_5555()
        assert dev.backlight_transfer is dev.transfer.backlight
