"""Unit tests for repro.display.rendering."""

import numpy as np
import pytest

from repro.display import (
    MAX_BACKLIGHT_LEVEL,
    ipaq_5555,
    mean_screen_luminance,
    render_frame,
    render_solid_gray,
)
from repro.video import Frame


@pytest.fixture
def device():
    return ipaq_5555()


class TestRenderFrame:
    def test_full_white_full_backlight_is_unity(self, device):
        frame = Frame.solid_gray(4, 4, 255)
        out = render_frame(frame, MAX_BACKLIGHT_LEVEL, device)
        assert out == pytest.approx(np.ones((4, 4)))

    def test_black_frame_dark(self, device):
        frame = Frame.solid_gray(4, 4, 0)
        out = render_frame(frame, MAX_BACKLIGHT_LEVEL, device)
        assert out == pytest.approx(np.zeros((4, 4)))

    def test_zero_backlight_dark_room(self, device):
        frame = Frame.solid_gray(4, 4, 255)
        out = render_frame(frame, 0, device, ambient=0.0)
        assert out == pytest.approx(np.zeros((4, 4)))

    def test_dimming_scales_output(self, device):
        frame = Frame.solid_gray(4, 4, 200)
        full = render_frame(frame, MAX_BACKLIGHT_LEVEL, device)
        half = render_frame(frame, 128, device)
        ratio = half / full
        expected = float(device.transfer.backlight.luminance(128))
        assert ratio == pytest.approx(np.full((4, 4), expected))

    def test_transflective_visible_in_sunlight(self, device):
        """With strong ambient, a transflective panel shows the image even
        with the backlight off (why handhelds use them, Section 4.1)."""
        frame = Frame.solid_gray(4, 4, 255)
        out = render_frame(frame, 0, device, ambient=1.0)
        assert float(out.mean()) > 0.0

    def test_out_of_range_level(self, device):
        frame = Frame.solid_gray(2, 2, 0)
        with pytest.raises(ValueError):
            render_frame(frame, 256, device)
        with pytest.raises(ValueError):
            render_frame(frame, -1, device)

    def test_compensation_round_trip(self, device):
        """A compensated frame at the annotated level looks like the
        original at full backlight (for unclipped pixels) — the physical
        core of the whole technique."""
        lum = np.full((4, 4), 0.4)
        frame = Frame.from_luminance(lum)
        level = device.transfer.level_for_scene(0.5)
        gain = device.transfer.compensation_gain_for_level(level)
        compensated = Frame.from_luminance(np.clip(lum * gain, 0, 1))
        original_view = render_frame(frame, MAX_BACKLIGHT_LEVEL, device)
        compensated_view = render_frame(compensated, level, device)
        assert compensated_view == pytest.approx(original_view, abs=0.02)


class TestHelpers:
    def test_render_solid_gray_shape(self, device):
        out = render_solid_gray(128, 200, device, size=6)
        assert out.shape == (6, 6)

    def test_mean_screen_luminance_scalar(self, device):
        frame = Frame.solid_gray(4, 4, 128)
        value = mean_screen_luminance(frame, 255, device)
        assert isinstance(value, float)
        assert 0.0 < value < 1.0
