"""Unit tests for repro.display.calibration (Figures 7-8 sweeps)."""

import numpy as np
import pytest

from repro.camera import DigitalCamera, LinearResponse, SRGBLikeResponse
from repro.display import (
    MAX_BACKLIGHT_LEVEL,
    fit_white_gamma,
    ipaq_3650,
    ipaq_5555,
    measure_backlight_transfer,
    measure_white_transfer,
)


@pytest.fixture
def device():
    return ipaq_5555()


@pytest.fixture
def camera():
    return DigitalCamera(response=SRGBLikeResponse(), noise_sigma=0.0)


class TestBacklightSweep:
    def test_recovers_true_transfer(self, device, camera):
        measured = measure_backlight_transfer(device, camera)
        true = device.transfer.backlight
        levels = np.arange(0, 256, 5)
        assert np.asarray(measured.luminance(levels)) == pytest.approx(
            np.asarray(true.luminance(levels)), abs=0.03
        )

    def test_recovery_with_noise(self, device):
        noisy = DigitalCamera(response=SRGBLikeResponse(), noise_sigma=0.005, seed=1)
        measured = measure_backlight_transfer(device, noisy)
        true = device.transfer.backlight
        levels = np.arange(0, 256, 17)
        assert np.asarray(measured.luminance(levels)) == pytest.approx(
            np.asarray(true.luminance(levels)), abs=0.08
        )

    def test_table_monotone(self, device, camera):
        measured = measure_backlight_transfer(device, camera)
        assert np.all(np.diff(measured.table()) >= -1e-12)

    def test_endpoint_always_included(self, device, camera):
        measured = measure_backlight_transfer(device, camera, levels=[0, 100])
        assert float(measured.luminance(MAX_BACKLIGHT_LEVEL)) == pytest.approx(1.0)

    def test_too_few_levels(self, device, camera):
        with pytest.raises(ValueError):
            measure_backlight_transfer(device, camera, levels=[255])

    def test_different_device_different_curve(self, camera):
        a = measure_backlight_transfer(ipaq_5555(), camera)
        b = measure_backlight_transfer(ipaq_3650(), camera)
        assert abs(float(a.luminance(96)) - float(b.luminance(96))) > 0.05


class TestWhiteSweep:
    def test_sample_count(self, device, camera):
        samples = measure_white_transfer(device, camera, gray_levels=range(0, 256, 51))
        assert len(samples) == len(range(0, 256, 51))

    def test_monotone_in_gray_level(self, device, camera):
        samples = measure_white_transfer(device, camera)
        values = [s.measured_brightness for s in samples]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_lower_backlight_darker(self, device, camera):
        full = measure_white_transfer(device, camera, backlight_level=255)
        half = measure_white_transfer(device, camera, backlight_level=128)
        assert half[-1].measured_brightness < full[-1].measured_brightness


class TestFitWhiteGamma:
    def test_ipaq5555_near_linear(self, device, camera):
        """'the measured luminance was almost linear with the luminance of
        the image' — the fitted gamma must come out near 1."""
        samples = measure_white_transfer(device, camera)
        assert fit_white_gamma(samples) == pytest.approx(1.0, abs=0.1)

    def test_recovers_nonunit_gamma(self, camera):
        device = ipaq_3650()  # white gamma 1.1
        samples = measure_white_transfer(device, camera)
        assert fit_white_gamma(samples) == pytest.approx(1.1, abs=0.12)

    def test_too_few_samples(self):
        from repro.display.calibration import SweepSample
        with pytest.raises(ValueError):
            fit_white_gamma([SweepSample(0, 0.0), SweepSample(255, 1.0)])


class TestClosingTheLoop:
    def test_calibrated_transfer_usable_by_pipeline(self, device, camera):
        """The measured curve can replace the factory curve — 'including
        the display properties in the loop'."""
        from repro.display import DisplayTransfer, WhiteTransfer

        measured = measure_backlight_transfer(device, camera)
        transfer = DisplayTransfer(measured, WhiteTransfer(1.0))
        level = transfer.level_for_scene(0.5)
        factory_level = device.transfer.level_for_scene(0.5)
        assert abs(level - factory_level) <= 12  # within interpolation error
