"""Unit tests for repro.display.panel."""

import numpy as np
import pytest

from repro.display import (
    Panel,
    PanelType,
    reflective_panel,
    transflective_panel,
    transmissive_panel,
)


class TestPerceivedIntensity:
    def test_formula_dark_room(self):
        """I = rho * L * Y with no ambient light."""
        panel = transflective_panel()
        intensity = panel.perceived_intensity(0.5, 0.8, ambient=0.0)
        assert float(intensity) == pytest.approx(panel.transmittance * 0.5 * 0.8)

    def test_ambient_adds_reflected_component(self):
        panel = transflective_panel()
        dark = float(panel.perceived_intensity(0.5, 0.8, ambient=0.0))
        lit = float(panel.perceived_intensity(0.5, 0.8, ambient=1.0))
        assert lit == pytest.approx(dark + panel.reflectance * 0.8)

    def test_transmissive_ignores_ambient(self):
        panel = transmissive_panel()
        dark = float(panel.perceived_intensity(0.5, 0.8, ambient=0.0))
        lit = float(panel.perceived_intensity(0.5, 0.8, ambient=1.0))
        assert lit == pytest.approx(dark)

    def test_black_pixel_dark(self):
        panel = transflective_panel()
        assert float(panel.perceived_intensity(1.0, 0.0, ambient=1.0)) == 0.0

    def test_vectorized_over_pixels(self):
        panel = transflective_panel()
        y = np.array([[0.1, 0.9], [0.5, 0.0]])
        out = panel.perceived_intensity(0.7, y)
        assert out.shape == (2, 2)
        assert np.all(np.diff(np.sort(out.ravel())) >= 0)

    def test_negative_ambient_rejected(self):
        with pytest.raises(ValueError):
            transflective_panel().perceived_intensity(1.0, 1.0, ambient=-0.1)


class TestValidation:
    def test_transmittance_bounds(self):
        with pytest.raises(ValueError):
            Panel(PanelType.TRANSMISSIVE, 0.0, 0.0, (240, 320), 0.2)
        with pytest.raises(ValueError):
            Panel(PanelType.TRANSMISSIVE, 1.5, 0.0, (240, 320), 0.2)

    def test_reflectance_bounds(self):
        with pytest.raises(ValueError):
            Panel(PanelType.REFLECTIVE, 0.05, -0.1, (240, 320), 0.2)

    def test_negative_power(self):
        with pytest.raises(ValueError):
            Panel(PanelType.REFLECTIVE, 0.05, 0.1, (240, 320), -0.2)


class TestFactories:
    def test_types(self):
        assert transflective_panel().panel_type is PanelType.TRANSFLECTIVE
        assert reflective_panel().panel_type is PanelType.REFLECTIVE
        assert transmissive_panel().panel_type is PanelType.TRANSMISSIVE

    def test_reflective_reflects_more(self):
        assert reflective_panel().reflectance > transflective_panel().reflectance

    def test_transmissive_no_reflection(self):
        assert transmissive_panel().reflectance == 0.0

    def test_default_resolution_qvga(self):
        assert transflective_panel().resolution == (240, 320)
