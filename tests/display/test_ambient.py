"""Unit tests for repro.display.ambient."""

import numpy as np
import pytest

from repro.core import AnnotationPipeline, SchemeParameters
from repro.display import (
    AMBIENT_PRESETS,
    DARK_ROOM,
    DIRECT_SUN,
    OFFICE,
    AmbientCondition,
    ambient_compensation_gain,
    ambient_level_for_scene,
    bind_with_ambient,
    ipaq_5555,
    render_frame,
)
from repro.display.transfer import MAX_BACKLIGHT_LEVEL
from repro.power import simulated_backlight_savings


@pytest.fixture
def device():
    return ipaq_5555()


@pytest.fixture
def track(tiny_clip, fast_params):
    return AnnotationPipeline(fast_params).annotate(tiny_clip)


class TestAmbientCondition:
    def test_presets_ordered(self):
        values = [a.illuminance for a in AMBIENT_PRESETS]
        assert values == sorted(values)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AmbientCondition("x", -0.1)


class TestAmbientLevel:
    def test_dark_room_equals_standard(self, device):
        for eff in (0.1, 0.4, 0.8, 1.0):
            assert ambient_level_for_scene(device, eff, DARK_ROOM) == (
                device.transfer.level_for_scene(eff)
            )

    def test_monotone_decreasing_in_ambient(self, device):
        levels = [
            ambient_level_for_scene(device, 0.6, amb) for amb in AMBIENT_PRESETS
        ]
        assert levels == sorted(levels, reverse=True)

    def test_full_white_needs_full_backlight_only_in_dark(self, device):
        assert ambient_level_for_scene(device, 1.0, DARK_ROOM) == MAX_BACKLIGHT_LEVEL
        # In sunlight even full white needs no more than full backlight.
        assert ambient_level_for_scene(device, 1.0, DIRECT_SUN) == MAX_BACKLIGHT_LEVEL

    def test_bright_sun_allows_backlight_off_for_dark_scenes(self, device):
        assert ambient_level_for_scene(device, 0.2, DIRECT_SUN) == 0

    def test_validation(self, device):
        with pytest.raises(ValueError):
            ambient_level_for_scene(device, 1.5, DARK_ROOM)


class TestAmbientGain:
    def test_dark_room_matches_standard_gain(self, device):
        level = device.transfer.level_for_scene(0.5)
        expected = device.transfer.compensation_gain_for_level(level)
        assert ambient_compensation_gain(device, level, DARK_ROOM) == pytest.approx(
            expected
        )

    def test_gain_at_least_one(self, device):
        for amb in AMBIENT_PRESETS:
            for level in (10, 100, 255):
                assert ambient_compensation_gain(device, level, amb) >= 1.0

    def test_intensity_preserved_in_ambient(self, device):
        """Physics check: the ambient-bound level+gain reproduce the
        full-backlight perceived intensity in the same ambient."""
        from repro.video import Frame
        eff = 0.5
        amb = OFFICE
        level = ambient_level_for_scene(device, eff, amb)
        gain = ambient_compensation_gain(device, level, amb)
        lum = np.full((4, 4), 0.3)  # unclipped pixel
        frame = Frame.from_luminance(lum)
        comp = Frame.from_luminance(np.clip(lum * gain, 0, 1))
        reference = render_frame(frame, MAX_BACKLIGHT_LEVEL, device,
                                 ambient=amb.illuminance)
        dimmed = render_frame(comp, level, device, ambient=amb.illuminance)
        assert dimmed == pytest.approx(reference, abs=0.03)

    def test_validation(self, device):
        with pytest.raises(ValueError):
            ambient_compensation_gain(device, 300, DARK_ROOM)


class TestBindWithAmbient:
    def test_dark_room_identical_to_bind(self, track, device):
        std = track.bind(device)
        amb = bind_with_ambient(track, device, DARK_ROOM)
        assert np.array_equal(std.per_frame_levels(), amb.per_frame_levels())

    def test_savings_monotone_in_ambient(self, track, device):
        savings = [
            simulated_backlight_savings(
                bind_with_ambient(track, device, amb).per_frame_levels(), device
            )
            for amb in AMBIENT_PRESETS
        ]
        assert all(b >= a - 1e-9 for a, b in zip(savings, savings[1:]))

    def test_boundaries_preserved(self, track, device):
        bound = bind_with_ambient(track, device, OFFICE)
        assert [(s.start, s.end) for s in bound.scenes] == [
            (s.start, s.end) for s in track.scenes
        ]

    def test_metadata_carried(self, track, device):
        bound = bind_with_ambient(track, device, OFFICE)
        assert bound.device_name == device.name
        assert bound.quality == track.quality
