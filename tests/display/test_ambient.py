"""Unit tests for repro.display.ambient."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnnotationPipeline, SchemeParameters
from repro.display import (
    AMBIENT_PRESETS,
    DARK_ROOM,
    DIRECT_SUN,
    OFFICE,
    AmbientCondition,
    ambient_compensation_gain,
    ambient_level_for_scene,
    AmbientTrace,
    bind_with_ambient,
    bind_with_ambient_trace,
    ipaq_5555,
    render_frame,
)
from repro.display.transfer import MAX_BACKLIGHT_LEVEL
from repro.power import simulated_backlight_savings


@pytest.fixture
def device():
    return ipaq_5555()


@pytest.fixture
def track(tiny_clip, fast_params):
    return AnnotationPipeline(fast_params).annotate(tiny_clip)


class TestAmbientCondition:
    def test_presets_ordered(self):
        values = [a.illuminance for a in AMBIENT_PRESETS]
        assert values == sorted(values)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AmbientCondition("x", -0.1)


class TestAmbientLevel:
    def test_dark_room_equals_standard(self, device):
        for eff in (0.1, 0.4, 0.8, 1.0):
            assert ambient_level_for_scene(device, eff, DARK_ROOM) == (
                device.transfer.level_for_scene(eff)
            )

    def test_monotone_decreasing_in_ambient(self, device):
        levels = [
            ambient_level_for_scene(device, 0.6, amb) for amb in AMBIENT_PRESETS
        ]
        assert levels == sorted(levels, reverse=True)

    def test_full_white_needs_full_backlight_only_in_dark(self, device):
        assert ambient_level_for_scene(device, 1.0, DARK_ROOM) == MAX_BACKLIGHT_LEVEL
        # In sunlight even full white needs no more than full backlight.
        assert ambient_level_for_scene(device, 1.0, DIRECT_SUN) == MAX_BACKLIGHT_LEVEL

    def test_bright_sun_allows_backlight_off_for_dark_scenes(self, device):
        assert ambient_level_for_scene(device, 0.2, DIRECT_SUN) == 0

    def test_validation(self, device):
        with pytest.raises(ValueError):
            ambient_level_for_scene(device, 1.5, DARK_ROOM)


class TestAmbientGain:
    def test_dark_room_matches_standard_gain(self, device):
        level = device.transfer.level_for_scene(0.5)
        expected = device.transfer.compensation_gain_for_level(level)
        assert ambient_compensation_gain(device, level, DARK_ROOM) == pytest.approx(
            expected
        )

    def test_gain_at_least_one(self, device):
        for amb in AMBIENT_PRESETS:
            for level in (10, 100, 255):
                assert ambient_compensation_gain(device, level, amb) >= 1.0

    def test_intensity_preserved_in_ambient(self, device):
        """Physics check: the ambient-bound level+gain reproduce the
        full-backlight perceived intensity in the same ambient."""
        from repro.video import Frame
        eff = 0.5
        amb = OFFICE
        level = ambient_level_for_scene(device, eff, amb)
        gain = ambient_compensation_gain(device, level, amb)
        lum = np.full((4, 4), 0.3)  # unclipped pixel
        frame = Frame.from_luminance(lum)
        comp = Frame.from_luminance(np.clip(lum * gain, 0, 1))
        reference = render_frame(frame, MAX_BACKLIGHT_LEVEL, device,
                                 ambient=amb.illuminance)
        dimmed = render_frame(comp, level, device, ambient=amb.illuminance)
        assert dimmed == pytest.approx(reference, abs=0.03)

    def test_validation(self, device):
        with pytest.raises(ValueError):
            ambient_compensation_gain(device, 300, DARK_ROOM)


class TestBindWithAmbient:
    def test_dark_room_identical_to_bind(self, track, device):
        std = track.bind(device)
        amb = bind_with_ambient(track, device, DARK_ROOM)
        assert np.array_equal(std.per_frame_levels(), amb.per_frame_levels())

    def test_savings_monotone_in_ambient(self, track, device):
        savings = [
            simulated_backlight_savings(
                bind_with_ambient(track, device, amb).per_frame_levels(), device
            )
            for amb in AMBIENT_PRESETS
        ]
        assert all(b >= a - 1e-9 for a, b in zip(savings, savings[1:]))

    def test_boundaries_preserved(self, track, device):
        bound = bind_with_ambient(track, device, OFFICE)
        assert [(s.start, s.end) for s in bound.scenes] == [
            (s.start, s.end) for s in track.scenes
        ]

    def test_metadata_carried(self, track, device):
        bound = bind_with_ambient(track, device, OFFICE)
        assert bound.device_name == device.name
        assert bound.quality == track.quality


class TestAmbientTrace:
    def test_parse_steps_and_lookup(self):
        trace = AmbientTrace.parse("0:dark-room,30:office,60:500")
        assert trace.condition_at(0.0).name == "dark-room"
        assert trace.condition_at(29.9).name == "dark-room"
        assert trace.condition_at(30.0).name == "office"
        assert trace.condition_at(1e6).illuminance == 500.0

    def test_parse_bare_ambient_is_constant(self):
        trace = AmbientTrace.parse("office")
        assert trace.condition_at(0.0) == trace.condition_at(1e5) == OFFICE

    def test_parse_holds_first_condition_from_zero(self):
        trace = AmbientTrace.parse("10:office")
        assert trace.condition_at(0.0).name == "office"

    @pytest.mark.parametrize("bad", ["", "x:office", "0:office,0:sunlight"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            AmbientTrace.parse(bad)

    def test_negative_time_rejected(self):
        trace = AmbientTrace.parse("office")
        with pytest.raises(ValueError):
            trace.condition_at(-1.0)


def _cached_track():
    """One annotated track shared across hypothesis examples."""
    if not hasattr(_cached_track, "track"):
        from repro.video import SceneSpec, ScriptedClipFactory, LazyClip

        scenes = [
            SceneSpec("dark", 12, {"background": 0.2, "highlight": 0.6,
                                   "glow_level": 0.3}),
            SceneSpec("bright", 12, {"background": 0.85, "variation": 0.08}),
            SceneSpec("dark", 12, {"background": 0.3, "highlight": 0.5,
                                   "glow_level": 0.2}),
        ]
        factory = ScriptedClipFactory(scenes, resolution=(48, 36), seed=5)
        clip = LazyClip(factory, frame_count=factory.frame_count, fps=30.0,
                        name="tracetest", resolution=(48, 36))
        params = SchemeParameters(quality=0.1, min_scene_interval_frames=5)
        _cached_track.track = AnnotationPipeline(params).annotate(clip)
    return _cached_track.track


class TestBindWithAmbientTrace:
    """The serve-time trace binding is pinned to the per-clip binding."""

    @given(illuminance=st.floats(min_value=0.0, max_value=100_000.0,
                                 allow_nan=False, allow_infinity=False))
    @settings(max_examples=40, deadline=None)
    def test_constant_trace_bit_identical(self, illuminance):
        """A constant trace binds bit-identically to ``bind_with_ambient``.

        This is the contract the mid-stream ambient re-bind relies on:
        re-binding a live session under the trace's current condition
        must produce the same bytes a fresh session under that constant
        ambient would.
        """
        device = ipaq_5555()
        track = _cached_track()
        ambient = AmbientCondition("probe", illuminance)
        via_trace = bind_with_ambient_trace(
            track, device, AmbientTrace.constant(ambient)
        )
        direct = bind_with_ambient(track, device, ambient)
        assert via_trace.to_bytes() == direct.to_bytes()

    @given(switch_at=st.floats(min_value=0.01, max_value=2.0,
                               allow_nan=False, allow_infinity=False))
    @settings(max_examples=25, deadline=None)
    def test_stepped_trace_binds_each_scene_at_its_start(self, switch_at):
        """Each scene takes the condition at ``scene.start / fps``."""
        device = ipaq_5555()
        track = _cached_track()
        trace = AmbientTrace(steps=((0.0, DARK_ROOM), (switch_at, OFFICE)))
        bound = bind_with_ambient_trace(track, device, trace)
        for scene, got in zip(track.scenes, bound.scenes):
            ambient = trace.condition_at(scene.start / track.fps)
            expected = ambient_level_for_scene(
                device, scene.effective_max_luminance, ambient
            )
            assert got.backlight_level == expected

    def test_non_positive_fps_rejected(self):
        device = ipaq_5555()
        track = _cached_track()
        with pytest.raises(ValueError):
            bind_with_ambient_trace(
                track, device, AmbientTrace.constant(OFFICE), fps=-1.0
            )
