"""Unit tests for repro.viz."""

import numpy as np
import pytest

from repro.viz import bar, histogram_sketch, series_table, sparkline


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_input_monotone_glyphs(self):
        line = sparkline(np.linspace(0, 1, 8))
        order = [" ▁▂▃▄▅▆▇█".index(c) for c in line]
        assert order == sorted(order)

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "███"

    def test_nan_renders_space(self):
        assert sparkline([0.0, float("nan"), 1.0])[1] == " "

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3) == "   "

    def test_explicit_bounds_clamp(self):
        line = sparkline([-10, 10], lo=0.0, hi=1.0)
        assert line[0] == "▁" and line[1] == "█"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestBar:
    def test_full_and_empty(self):
        assert bar(1.0, width=10) == "#" * 10
        assert bar(0.0, width=10) == "." * 10

    def test_half(self):
        assert bar(0.5, width=10) == "#####....."

    def test_clamped(self):
        assert bar(2.0, width=4) == "####"

    def test_validation(self):
        with pytest.raises(ValueError):
            bar(0.5, width=0)
        with pytest.raises(ValueError):
            bar(0.5, lo=1.0, hi=0.0)


class TestSeriesTable:
    def test_lines_per_series_plus_scale(self):
        out = series_table({"a": [0, 1], "b": [1, 0]})
        assert len(out.splitlines()) == 3

    def test_labels_present(self):
        out = series_table({"alpha": [0, 1], "b": [1, 0]})
        assert "alpha" in out and "scale" in out

    def test_long_series_decimated(self):
        out = series_table({"x": np.linspace(0, 1, 500)}, width=40)
        first = out.splitlines()[0]
        assert len(first) < 60

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series_table({})


class TestHistogramSketch:
    def test_shape(self):
        out = histogram_sketch(np.ones(256), height=4, width=32)
        lines = out.splitlines()
        assert len(lines) == 5  # 4 rows + axis
        assert all(len(line) == 32 for line in lines)

    def test_peak_column_tallest(self):
        counts = np.zeros(256)
        counts[128] = 100
        counts[10] = 10
        out = histogram_sketch(counts, height=5, width=64)
        top_row = out.splitlines()[0]
        assert "#" in top_row
        assert top_row.index("#") == 32  # the peak bin's column

    def test_empty_histogram(self):
        out = histogram_sketch(np.zeros(16), height=2, width=8)
        assert "#" not in out

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram_sketch([], height=2, width=8)
        with pytest.raises(ValueError):
            histogram_sketch([1.0], height=0, width=8)
