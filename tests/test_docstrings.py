"""Docs gate: the public facade must be fully docstringed.

``tests/test_api_hygiene.py`` checks docstring *presence* across all
modules; this gate is stricter about the supported entry surface: every
symbol re-exported by ``repro.__all__`` and ``repro.api.__all__`` must
carry a docstring, classes must document their public methods, and the
facade's callables must document every parameter they accept by name —
an argument you cannot discover from ``help()`` is not part of a usable
contract.
"""

import inspect

import pytest

import repro
import repro.api


def _facade_symbols():
    symbols = {}
    for module in (repro, repro.api):
        for name in module.__all__:
            symbols[f"{module.__name__}.{name}"] = getattr(module, name)
    return symbols


FACADE = _facade_symbols()


def _has_docstring(obj) -> bool:
    doc = inspect.getdoc(obj)
    return bool(doc and doc.strip())


@pytest.mark.parametrize("qualname", sorted(FACADE), ids=str)
def test_facade_symbol_has_docstring(qualname):
    """Every ``repro.__all__`` / ``repro.api.__all__`` symbol documents itself."""
    obj = FACADE[qualname]
    if not (inspect.isclass(obj) or callable(obj) or inspect.ismodule(obj)):
        pytest.skip("data constant")
    assert _has_docstring(obj), f"{qualname} has no docstring"


@pytest.mark.parametrize(
    "qualname",
    sorted(q for q, o in FACADE.items() if inspect.isclass(o)),
    ids=str,
)
def test_facade_class_methods_documented(qualname):
    """Public methods and properties of facade classes are documented."""
    cls = FACADE[qualname]
    missing = []
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        if inspect.isfunction(member) or inspect.ismethod(member):
            if member.__qualname__.split(".")[0] != cls.__name__:
                continue  # inherited from elsewhere; documented there
            if not _has_docstring(member):
                missing.append(name)
        elif isinstance(member, property) and not _has_docstring(member.fget):
            missing.append(name)
    assert not missing, f"{qualname} methods without docstrings: {missing}"


def _documentable_params(func):
    try:
        signature = inspect.signature(func)
    except (TypeError, ValueError):
        return []
    return [
        name
        for name, param in signature.parameters.items()
        if name not in ("self", "cls")
        and param.kind
        not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
    ]


def _callables_with_params():
    found = {}
    for qualname, obj in FACADE.items():
        if inspect.isfunction(obj):
            if _documentable_params(obj):
                found[qualname] = obj
        elif inspect.isclass(obj):
            init = obj.__init__
            if inspect.isfunction(init) and _documentable_params(init):
                found[f"{qualname}.__init__"] = init
            for name, member in inspect.getmembers(obj, inspect.isfunction):
                if name.startswith("_"):
                    continue
                if member.__qualname__.split(".")[0] != obj.__name__:
                    continue
                if _documentable_params(member):
                    found[f"{qualname}.{name}"] = member
    return found


_CALLABLES = _callables_with_params()


@pytest.mark.parametrize("qualname", sorted(_CALLABLES), ids=str)
def test_facade_callable_documents_every_parameter(qualname):
    """Each parameter name appears in the callable's (or class's) docstring.

    Mentioning the parameter is the bar — numpydoc sections, inline
    backticks, or prose all count; silence does not.
    """
    func = _CALLABLES[qualname]
    doc = inspect.getdoc(func) or ""
    if qualname.endswith(".__init__"):
        # Dataclasses and conventional classes document their
        # constructor parameters on the class docstring.
        owner = FACADE[qualname.rsplit(".__init__", 1)[0]]
        doc = (inspect.getdoc(owner) or "") + "\n" + doc
    missing = [p for p in _documentable_params(func) if p not in doc]
    assert not missing, (
        f"{qualname} does not document parameter(s): {missing}"
    )
