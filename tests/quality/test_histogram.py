"""Unit tests for repro.quality.histogram."""

import numpy as np
import pytest

from repro.quality import LuminanceHistogram, NUM_BINS
from repro.video import Frame


class TestConstruction:
    def test_of_frame(self, gray_ramp_frame):
        hist = LuminanceHistogram.of(gray_ramp_frame)
        assert hist.total == 512
        assert np.all(hist.counts == 2)

    def test_of_uint8_photo(self):
        photo = np.array([[0, 0], [255, 128]], dtype=np.uint8)
        hist = LuminanceHistogram.of(photo)
        assert hist.counts[0] == 2
        assert hist.counts[255] == 1
        assert hist.counts[128] == 1

    def test_of_normalized_float(self):
        hist = LuminanceHistogram.of(np.array([[0.0, 1.0]]))
        assert hist.counts[0] == 1
        assert hist.counts[255] == 1

    def test_float_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="normalized"):
            LuminanceHistogram.of(np.array([[1.5]]))

    def test_int_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LuminanceHistogram.of(np.array([[300]]))

    def test_wrong_bin_count_rejected(self):
        with pytest.raises(ValueError, match="bins"):
            LuminanceHistogram(np.zeros(100, dtype=np.int64))

    def test_negative_counts_rejected(self):
        counts = np.zeros(NUM_BINS, dtype=np.int64)
        counts[0] = -1
        with pytest.raises(ValueError):
            LuminanceHistogram(counts)


class TestAveragePoint:
    def test_solid_frame(self):
        hist = LuminanceHistogram.of(Frame.solid_gray(4, 4, 100))
        assert hist.average_point == pytest.approx(100.0)

    def test_ramp(self, gray_ramp_frame):
        hist = LuminanceHistogram.of(gray_ramp_frame)
        assert hist.average_point == pytest.approx(127.5)

    def test_empty_rejected(self):
        hist = LuminanceHistogram(np.zeros(NUM_BINS, dtype=np.int64))
        with pytest.raises(ValueError):
            hist.average_point


class TestDynamicRange:
    def test_exact_range(self):
        photo = np.array([[10, 200]], dtype=np.uint8)
        hist = LuminanceHistogram.of(photo)
        assert hist.dynamic_range() == (10, 200)
        assert hist.dynamic_range_width == 190

    def test_solid_frame_zero_width(self):
        hist = LuminanceHistogram.of(Frame.solid_gray(2, 2, 99))
        assert hist.dynamic_range() == (99, 99)

    def test_tail_robustness(self):
        # 1000 pixels at 100 plus one outlier at 255.
        values = np.full(1001, 100, dtype=np.uint8)
        values[0] = 255
        hist = LuminanceHistogram.of(values.reshape(7, 143))
        assert hist.dynamic_range(tail=0.0)[1] == 255
        assert hist.dynamic_range(tail=0.01)[1] == 100

    def test_tail_bounds(self):
        hist = LuminanceHistogram.of(Frame.solid_gray(2, 2, 0))
        with pytest.raises(ValueError):
            hist.dynamic_range(tail=0.5)


class TestClipPoint:
    def test_no_clipping_returns_max(self, gray_ramp_frame):
        hist = LuminanceHistogram.of(gray_ramp_frame)
        assert hist.clip_point(0.0) == 255

    def test_uniform_clip_fraction(self, gray_ramp_frame):
        hist = LuminanceHistogram.of(gray_ramp_frame)
        # Uniform over 0..255: clipping 20 % keeps codes up to ~204.
        assert hist.clip_point(0.20) == pytest.approx(204, abs=2)

    def test_clip_everything(self, gray_ramp_frame):
        hist = LuminanceHistogram.of(gray_ramp_frame)
        assert hist.clip_point(1.0) == 0

    def test_monotone_in_fraction(self, gray_ramp_frame):
        hist = LuminanceHistogram.of(gray_ramp_frame)
        points = [hist.clip_point(q) for q in (0.0, 0.05, 0.1, 0.2, 0.5)]
        assert points == sorted(points, reverse=True)

    def test_clip_budget_honored(self, dark_frame):
        """Mass strictly above the clip point never exceeds the budget."""
        hist = LuminanceHistogram.of(dark_frame)
        for q in (0.01, 0.05, 0.10, 0.20):
            point = hist.clip_point(q)
            assert hist.tail_mass_above(point) <= q + 1e-12

    def test_clip_point_tight(self, dark_frame):
        """One code lower would overshoot the budget (minimality)."""
        hist = LuminanceHistogram.of(dark_frame)
        for q in (0.05, 0.20):
            point = hist.clip_point(q)
            if point > 0:
                assert hist.tail_mass_above(point - 1) > q

    def test_invalid_fraction(self, dark_frame):
        hist = LuminanceHistogram.of(dark_frame)
        with pytest.raises(ValueError):
            hist.clip_point(1.5)


class TestTailMass:
    def test_above_max_is_zero(self, gray_ramp_frame):
        hist = LuminanceHistogram.of(gray_ramp_frame)
        assert hist.tail_mass_above(255) == 0.0

    def test_above_zero(self, gray_ramp_frame):
        hist = LuminanceHistogram.of(gray_ramp_frame)
        assert hist.tail_mass_above(0) == pytest.approx(255 / 256)

    def test_invalid_code(self, gray_ramp_frame):
        hist = LuminanceHistogram.of(gray_ramp_frame)
        with pytest.raises(ValueError):
            hist.tail_mass_above(256)


class TestMergeAndMisc:
    def test_merge_adds_counts(self):
        a = LuminanceHistogram.of(Frame.solid_gray(2, 2, 10))
        b = LuminanceHistogram.of(Frame.solid_gray(2, 2, 200))
        merged = a.merge(b)
        assert merged.total == 8
        assert merged.counts[10] == 4
        assert merged.counts[200] == 4

    def test_merge_preserves_sources(self):
        a = LuminanceHistogram.of(Frame.solid_gray(2, 2, 10))
        b = LuminanceHistogram.of(Frame.solid_gray(2, 2, 200))
        a.merge(b)
        assert a.total == 4

    def test_normalized_sums_to_one(self, dark_frame):
        hist = LuminanceHistogram.of(dark_frame)
        assert hist.normalized().sum() == pytest.approx(1.0)

    def test_repr(self, dark_frame):
        assert "avg=" in repr(LuminanceHistogram.of(dark_frame))

    def test_empty_repr(self):
        hist = LuminanceHistogram(np.zeros(NUM_BINS, dtype=np.int64))
        assert "empty" in repr(hist)
