"""Unit tests for repro.quality.metrics."""

import math

import numpy as np
import pytest

from repro.quality import (
    LuminanceHistogram,
    average_luminance_shift,
    clipped_fraction,
    dynamic_range_change,
    histogram_chi2_distance,
    histogram_emd,
    histogram_l1_distance,
    mse,
    psnr,
)
from repro.video import Frame


def _hist(level, n=16):
    return LuminanceHistogram.of(Frame.solid_gray(4, n // 4, level))


class TestHistogramDistances:
    def test_identical_zero(self, dark_frame):
        hist = LuminanceHistogram.of(dark_frame)
        assert histogram_l1_distance(hist, hist) == 0.0
        assert histogram_chi2_distance(hist, hist) == 0.0
        assert histogram_emd(hist, hist) == 0.0

    def test_disjoint_l1_is_two(self):
        assert histogram_l1_distance(_hist(0), _hist(255)) == pytest.approx(2.0)

    def test_disjoint_chi2_is_one(self):
        assert histogram_chi2_distance(_hist(0), _hist(255)) == pytest.approx(1.0)

    def test_emd_equals_shift(self):
        """A uniform shift of k codes has EMD exactly k."""
        assert histogram_emd(_hist(100), _hist(130)) == pytest.approx(30.0)

    def test_emd_symmetry(self):
        a, b = _hist(100), _hist(130)
        assert histogram_emd(a, b) == pytest.approx(histogram_emd(b, a))

    def test_emd_sees_shift_direction_independent(self):
        assert histogram_emd(_hist(100), _hist(70)) == pytest.approx(30.0)

    def test_distances_normalized_by_size(self):
        """Comparing different-size images works (PMF comparison)."""
        small = LuminanceHistogram.of(Frame.solid_gray(2, 2, 50))
        big = LuminanceHistogram.of(Frame.solid_gray(20, 20, 50))
        assert histogram_l1_distance(small, big) == 0.0


class TestShiftMetrics:
    def test_average_shift_signed(self):
        assert average_luminance_shift(_hist(100), _hist(90)) == pytest.approx(-10.0)
        assert average_luminance_shift(_hist(90), _hist(100)) == pytest.approx(10.0)

    def test_dynamic_range_change(self):
        wide = LuminanceHistogram.of(np.array([[0, 255]], dtype=np.uint8))
        narrow = LuminanceHistogram.of(np.array([[100, 150]], dtype=np.uint8))
        assert dynamic_range_change(wide, narrow) == -205


class TestMseAndPsnr:
    def test_identical_frames(self, dark_frame):
        assert mse(dark_frame, dark_frame) == 0.0
        assert psnr(dark_frame, dark_frame) == math.inf

    def test_mse_value(self):
        a = Frame.from_luminance(np.zeros((2, 2)))
        b = Frame.from_luminance(np.full((2, 2), 0.5))
        assert mse(a, b) == pytest.approx(0.25, abs=0.01)

    def test_psnr_value(self):
        a = Frame.from_luminance(np.zeros((2, 2)))
        b = Frame.from_luminance(np.full((2, 2), 0.1))
        assert psnr(a, b) == pytest.approx(20.0, abs=0.5)

    def test_psnr_decreases_with_damage(self, dark_frame):
        from repro.core import contrast_enhancement
        mild = contrast_enhancement(dark_frame, 1.2).frame
        harsh = contrast_enhancement(dark_frame, 5.0).frame
        assert psnr(dark_frame, mild) > psnr(dark_frame, harsh)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            mse(Frame.solid_gray(2, 2, 0), Frame.solid_gray(3, 3, 0))

    def test_uint8_photos_accepted(self):
        a = np.zeros((2, 2), dtype=np.uint8)
        b = np.full((2, 2), 255, dtype=np.uint8)
        assert mse(a, b) == pytest.approx(1.0)


class TestClippedFraction:
    def test_no_clipping_at_unit_gain(self, dark_frame):
        assert clipped_fraction(dark_frame, 1.0) == 0.0

    def test_full_clipping_with_huge_gain(self, dark_frame):
        assert clipped_fraction(dark_frame, 1e6) == pytest.approx(1.0, abs=0.05)

    def test_monotone_in_gain(self, dark_frame):
        fractions = [clipped_fraction(dark_frame, g) for g in (1.0, 1.5, 2.0, 4.0, 8.0)]
        assert fractions == sorted(fractions)

    def test_threshold_semantics(self):
        frame = Frame.from_luminance(np.array([[0.4, 0.6]]))
        assert clipped_fraction(frame, 2.0) == pytest.approx(0.5)

    def test_invalid_gain(self, dark_frame):
        with pytest.raises(ValueError):
            clipped_fraction(dark_frame, 0.0)
