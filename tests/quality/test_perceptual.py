"""Unit tests for repro.quality.perceptual (Weber-law visibility)."""

import numpy as np
import pytest

from repro.core import AnnotationPipeline, SchemeParameters
from repro.display import ipaq_5555
from repro.quality import PerceptualModel, perceptual_playback_report


@pytest.fixture
def model():
    return PerceptualModel()


class TestJndMap:
    def test_weber_scaling(self, model):
        ref = np.array([0.5, 1.0])
        jnd = model.jnd_map(ref)
        assert jnd[1] == pytest.approx(2 * jnd[0])

    def test_dark_floor(self, model):
        jnd = model.jnd_map(np.array([0.0, 0.001]))
        assert np.all(jnd == model.dark_threshold)

    def test_negative_rejected(self, model):
        with pytest.raises(ValueError):
            model.jnd_map(np.array([-0.1]))


class TestVisibility:
    def test_identical_invisible(self, model):
        ref = np.random.default_rng(0).random((8, 8))
        assert model.perceptible_fraction(ref, ref) == 0.0

    def test_subthreshold_invisible(self, model):
        ref = np.full((4, 4), 0.5)
        test = ref * (1 + model.weber_fraction * 0.5)
        assert model.perceptible_fraction(ref, test) == 0.0

    def test_suprathreshold_visible(self, model):
        ref = np.full((4, 4), 0.5)
        test = ref * 1.10  # 10 % change >> 2 % threshold
        assert model.perceptible_fraction(ref, test) == 1.0

    def test_same_absolute_error_more_visible_in_dark(self, model):
        """Weber's law: a 0.02 shift is invisible on white, glaring on
        near-black."""
        delta = 0.01
        bright = model.perceptible_fraction(np.full((2, 2), 0.9),
                                            np.full((2, 2), 0.9 + delta))
        dark = model.perceptible_fraction(np.full((2, 2), 0.05),
                                          np.full((2, 2), 0.05 + delta))
        assert dark > bright

    def test_jnd_units(self, model):
        ref = np.full((2, 2), 0.5)
        test = np.full((2, 2), 0.5 + 0.02)  # 2x the 1 % JND... (2 % weber)
        units = model.jnd_units(ref, test)
        assert units == pytest.approx(np.full((2, 2), 2.0))

    def test_shape_mismatch(self, model):
        with pytest.raises(ValueError):
            model.perceptible_fraction(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_acceptable_threshold(self, model):
        ref = np.full((10, 10), 0.5)
        test = ref.copy()
        test[0, :3] = 0.9  # 3 % of pixels visibly different
        assert model.acceptable(ref, test, max_visible_fraction=0.05)
        assert not model.acceptable(ref, test, max_visible_fraction=0.01)

    @pytest.mark.parametrize("kwargs", [
        {"weber_fraction": 0}, {"dark_threshold": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PerceptualModel(**kwargs)


class TestPlaybackReport:
    @pytest.fixture
    def device(self):
        return ipaq_5555()

    def test_lossless_playback_invisible(self, tiny_clip, device):
        """The headline physics check through the perceptual lens: at the
        lossless quality level, NO pixel changes visibly."""
        params = SchemeParameters(quality=0.0, min_scene_interval_frames=5)
        stream = AnnotationPipeline(params).build_stream(tiny_clip, device)
        report = perceptual_playback_report(stream)
        assert report["max_visible_fraction"] <= 0.02

    def test_visible_fraction_grows_with_quality(self, library_clip, device):
        fractions = []
        for q in (0.0, 0.10, 0.20):
            params = SchemeParameters(quality=q, min_scene_interval_frames=5)
            stream = AnnotationPipeline(params).build_stream(library_clip, device)
            fractions.append(
                perceptual_playback_report(stream)["mean_visible_fraction"]
            )
        assert fractions[0] <= fractions[1] <= fractions[2]

    def test_five_percent_virtually_unnoticeable(self, library_clip, device):
        """'Even at the 5 % quality loss ... visual degradation is
        virtually unnoticeable' — under 4 % of pixels visibly change."""
        params = SchemeParameters(quality=0.05, min_scene_interval_frames=5)
        stream = AnnotationPipeline(params).build_stream(library_clip, device)
        report = perceptual_playback_report(stream)
        assert report["mean_visible_fraction"] < 0.04

    def test_sampling_validation(self, tiny_clip, device):
        params = SchemeParameters(quality=0.0, min_scene_interval_frames=5)
        stream = AnnotationPipeline(params).build_stream(tiny_clip, device)
        with pytest.raises(ValueError):
            perceptual_playback_report(stream, sample_every=0)
