"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    FrameStats,
    Scene,
    SceneDetector,
    SchemeParameters,
    StreamAnalyzer,
    contrast_enhancement,
    brightness_compensation,
    policy_for_quality,
    rle_decode,
    rle_encode,
    encode_varint,
    decode_varint,
)
from repro.display import (
    GammaBacklightTransfer,
    LinearBacklightTransfer,
    SaturatingBacklightTransfer,
    WhiteTransfer,
    DisplayTransfer,
)
from repro.quality import LuminanceHistogram, histogram_emd, histogram_l1_distance
from repro.video import Frame

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

small_frames = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(2, 12), st.integers(2, 12), st.just(3)),
    elements=st.integers(0, 255),
).map(Frame)

luminance_maps = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 10), st.integers(2, 10)),
    elements=st.floats(0.0, 1.0),
)

level_sequences = st.lists(st.integers(0, 255), min_size=1, max_size=300)

fractions = st.floats(0.0, 1.0)


# ---------------------------------------------------------------------------
# RLE / varint
# ---------------------------------------------------------------------------

class TestRleProperties:
    @given(level_sequences)
    def test_rle_round_trip(self, values):
        assert list(rle_decode(rle_encode(values))) == values

    @given(st.integers(0, 2**60))
    def test_varint_round_trip(self, value):
        decoded, offset = decode_varint(encode_varint(value))
        assert decoded == value

    @given(st.integers(0, 255), st.integers(1, 10_000))
    def test_constant_run_size_logarithmic(self, value, run):
        encoded = rle_encode([value] * run)
        assert len(encoded) <= 2 + 10  # count varint + value + run varint


# ---------------------------------------------------------------------------
# Compensation
# ---------------------------------------------------------------------------

class TestCompensationProperties:
    @given(small_frames, st.floats(1.0, 20.0))
    def test_contrast_never_exceeds_range(self, frame, gain):
        result = contrast_enhancement(frame, gain)
        assert result.frame.pixels.max() <= 255
        assert 0.0 <= result.clipped_fraction <= 1.0

    @given(small_frames, st.floats(1.0, 20.0))
    def test_contrast_monotone_per_pixel(self, frame, gain):
        """Compensation preserves pixel brightness ordering."""
        result = contrast_enhancement(frame, gain)
        before = frame.pixels.astype(int)
        after = result.frame.pixels.astype(int)
        flat_b = before.reshape(-1, 3)
        flat_a = after.reshape(-1, 3)
        for c in range(3):
            order = np.argsort(flat_b[:, c], kind="stable")
            assert np.all(np.diff(flat_a[order, c]) >= -1)  # 1 code rounding slack

    @given(small_frames, st.floats(0.0, 1.0))
    def test_brightness_clip_fraction_consistent(self, frame, delta):
        result = brightness_compensation(frame, delta)
        exceeded = np.any(frame.normalized() + delta > 1.0 + 1e-12, axis=-1)
        assert result.clipped_fraction == pytest.approx(float(exceeded.mean()))

    @given(small_frames, st.floats(1.0, 20.0))
    def test_contrast_never_darkens(self, frame, gain):
        result = contrast_enhancement(frame, gain)
        assert np.all(result.frame.pixels.astype(int) >= frame.pixels.astype(int) - 1)

    @given(
        arrays(
            dtype=np.uint8,
            shape=st.tuples(
                st.integers(1, 8), st.integers(2, 10), st.integers(2, 10),
                st.just(3),
            ),
            elements=st.integers(0, 255),
        ),
        st.lists(st.floats(0.1, 20.0), min_size=8, max_size=8),
    )
    @settings(deadline=None)
    def test_lut_batch_bit_identical_to_float_reference(self, pixels, gains):
        """The fused 256-entry LUT kernel is pinned to the direct float
        implementation: same output bytes, same clipped fractions, for
        arbitrary batches and per-frame gain vectors."""
        from repro.core import (
            contrast_enhancement_batch,
            contrast_enhancement_batch_reference,
        )

        g = np.array(gains[: pixels.shape[0]])
        lut_px, lut_fr = contrast_enhancement_batch(pixels, g)
        ref_px, ref_fr = contrast_enhancement_batch_reference(pixels, g)
        assert np.array_equal(lut_px, ref_px)
        assert np.array_equal(lut_fr, ref_fr)


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------

class TestHistogramProperties:
    @given(small_frames)
    def test_mass_conserved(self, frame):
        hist = LuminanceHistogram.of(frame)
        assert hist.total == frame.pixel_count

    @given(small_frames, fractions)
    def test_clip_point_budget(self, frame, q):
        hist = LuminanceHistogram.of(frame)
        point = hist.clip_point(q)
        assert hist.tail_mass_above(point) <= q + 1e-12

    @given(small_frames, small_frames)
    def test_l1_distance_bounds(self, a, b):
        ha, hb = LuminanceHistogram.of(a), LuminanceHistogram.of(b)
        d = histogram_l1_distance(ha, hb)
        assert 0.0 <= d <= 2.0 + 1e-12
        assert histogram_l1_distance(ha, ha) == 0.0

    @given(small_frames, small_frames)
    def test_emd_symmetric_nonnegative(self, a, b):
        ha, hb = LuminanceHistogram.of(a), LuminanceHistogram.of(b)
        assert histogram_emd(ha, hb) >= 0.0
        assert histogram_emd(ha, hb) == pytest.approx(histogram_emd(hb, ha))

    @given(small_frames)
    def test_average_point_within_range(self, frame):
        hist = LuminanceHistogram.of(frame)
        low, high = hist.dynamic_range()
        assert low <= hist.average_point <= high


# ---------------------------------------------------------------------------
# Transfers
# ---------------------------------------------------------------------------

transfer_strategy = st.one_of(
    st.just(LinearBacklightTransfer()),
    st.floats(0.3, 3.0).map(GammaBacklightTransfer),
    st.floats(0.2, 6.0).map(SaturatingBacklightTransfer),
)


class TestTransferProperties:
    @given(transfer_strategy, st.floats(0.0, 1.0))
    def test_inverse_supplies_target(self, transfer, target):
        level = transfer.level_for_luminance(target)
        assert 0 <= level <= 255
        assert float(transfer.luminance(level)) >= min(target, float(transfer.luminance(255))) - 1e-9

    @given(transfer_strategy)
    def test_monotone_table(self, transfer):
        assert np.all(np.diff(transfer.table()) >= -1e-12)

    @given(
        transfer_strategy,
        st.floats(0.5, 2.0),
        st.floats(0.05, 1.0),
        st.floats(0.0, 1.0),
    )
    def test_compensation_identity(self, backlight, white_gamma, eff_max, y_frac):
        """B(level) * W(min(kY, 1)) == W(Y) for unclipped pixels."""
        transfer = DisplayTransfer(backlight, WhiteTransfer(white_gamma))
        level = transfer.level_for_scene(eff_max)
        if level == 0:
            return
        k = transfer.compensation_gain_for_level(level)
        y = y_frac * min(eff_max, 1.0 / k)  # guaranteed unclipped
        original = float(transfer.white.luminance(y))
        compensated = float(transfer.backlight.luminance(level)) * float(
            transfer.white.luminance(min(y * k, 1.0))
        )
        assert compensated == pytest.approx(original, rel=1e-6, abs=1e-9)


# ---------------------------------------------------------------------------
# Scene detection
# ---------------------------------------------------------------------------

max_series = st.lists(st.floats(0.0, 1.0), min_size=1, max_size=80)


def _stats(maxima):
    frames = [
        Frame.solid_gray(3, 3, int(round(m * 255)), index=i)
        for i, m in enumerate(maxima)
    ]
    return StreamAnalyzer().analyze_frames(frames)


class TestSceneProperties:
    @settings(max_examples=60)
    @given(max_series, st.integers(1, 20), st.floats(0.02, 0.5))
    def test_partition_invariant(self, maxima, interval, threshold):
        params = SchemeParameters(
            scene_change_threshold=threshold, min_scene_interval_frames=interval
        )
        stats = _stats(maxima)
        scenes = SceneDetector(params).detect(stats)
        SceneDetector.validate_partition(scenes, len(stats))

    @settings(max_examples=60)
    @given(max_series, st.integers(1, 20))
    def test_scene_max_covers_members(self, maxima, interval):
        params = SchemeParameters(min_scene_interval_frames=interval)
        stats = _stats(maxima)
        scenes = SceneDetector(params).detect(stats)
        for scene in scenes:
            member_max = max(s.max_value(True) for s in stats[scene.start:scene.end])
            assert scene.max_luminance >= member_max - 1e-9

    @settings(max_examples=60)
    @given(max_series, st.integers(2, 20))
    def test_rate_limit_bounds_scene_lengths(self, maxima, interval):
        params = SchemeParameters(min_scene_interval_frames=interval)
        scenes = SceneDetector(params).detect(_stats(maxima))
        for scene in scenes[:-1]:  # the last scene may be a stub
            assert scene.length >= interval


# ---------------------------------------------------------------------------
# Clipping policies
# ---------------------------------------------------------------------------

class TestClippingProperties:
    @settings(max_examples=40)
    @given(
        st.lists(st.floats(0.0, 1.0), min_size=3, max_size=20),
        st.floats(0.0, 0.5),
    )
    def test_effective_max_within_bounds(self, maxima, q):
        stats = _stats(maxima)
        scene = Scene(0, len(stats), max(s.max_value(True) for s in stats))
        for per_scene in (False, True):
            policy = policy_for_quality(q, per_scene=per_scene)
            eff = policy.effective_max(scene, stats)
            assert 0.0 <= eff <= scene.max_luminance + 1e-9

    @settings(max_examples=40)
    @given(st.lists(st.floats(0.0, 1.0), min_size=3, max_size=20))
    def test_quality_zero_is_lossless(self, maxima):
        stats = _stats(maxima)
        scene = Scene(0, len(stats), max(s.max_value(True) for s in stats))
        eff = policy_for_quality(0.0).effective_max(scene, stats)
        assert eff == pytest.approx(scene.max_luminance, abs=1e-9)


# ---------------------------------------------------------------------------
# Annotation serialization round-trips
# ---------------------------------------------------------------------------

scene_lengths = st.lists(st.integers(1, 500), min_size=1, max_size=40)


class TestAnnotationSerializationProperties:
    @settings(max_examples=60)
    @given(scene_lengths, st.lists(st.floats(0.0, 1.0), min_size=40, max_size=40),
           st.floats(0.0, 1.0))
    def test_luminance_track_round_trip(self, lengths, lums, quality):
        from repro.core import AnnotationTrack, SceneAnnotation

        scenes = []
        start = 0
        for k, length in enumerate(lengths):
            scenes.append(SceneAnnotation(start, start + length, lums[k]))
            start += length
        track = AnnotationTrack("clip", start, 30.0, quality, scenes)
        restored = AnnotationTrack.from_bytes(track.to_bytes())
        assert restored.frame_count == track.frame_count
        assert len(restored.scenes) == len(track.scenes)
        for a, b in zip(track.scenes, restored.scenes):
            assert (a.start, a.end) == (b.start, b.end)
            assert abs(a.effective_max_luminance - b.effective_max_luminance) <= 1 / 255

    @settings(max_examples=60)
    @given(scene_lengths,
           st.lists(st.integers(0, 255), min_size=40, max_size=40),
           st.lists(st.floats(1.0, 200.0), min_size=40, max_size=40))
    def test_device_track_round_trip(self, lengths, levels, gains):
        from repro.core import DeviceAnnotationTrack, DeviceSceneAnnotation

        scenes = []
        start = 0
        for k, length in enumerate(lengths):
            scenes.append(
                DeviceSceneAnnotation(start, start + length, levels[k], gains[k])
            )
            start += length
        track = DeviceAnnotationTrack("clip", "dev", start, 30.0, 0.05, scenes)
        restored = DeviceAnnotationTrack.from_bytes(track.to_bytes())
        assert np.array_equal(restored.per_frame_levels(), track.per_frame_levels())
        assert restored.per_frame_gains() == pytest.approx(
            track.per_frame_gains(), abs=1 / 128
        )

    @settings(max_examples=60)
    @given(scene_lengths,
           st.lists(st.floats(0.0, 5e7), min_size=40, max_size=40))
    def test_dvfs_track_round_trip(self, lengths, cycles):
        from repro.core import DvfsSceneAnnotation, DvfsTrack

        scenes = []
        start = 0
        for k, length in enumerate(lengths):
            scenes.append(DvfsSceneAnnotation(start, start + length, cycles[k]))
            start += length
        track = DvfsTrack("clip", start, 30.0, scenes)
        restored = DvfsTrack.from_bytes(track.to_bytes())
        assert restored.frame_count == track.frame_count
        for a, b in zip(track.scenes, restored.scenes):
            assert abs(a.cycles_per_frame - b.cycles_per_frame) <= 500.0  # kcycle quantization


# ---------------------------------------------------------------------------
# Network delivery invariants
# ---------------------------------------------------------------------------

class TestNetworkProperties:
    @settings(max_examples=40)
    @given(st.lists(st.integers(1, 5000), min_size=1, max_size=60))
    def test_arrivals_monotone_and_causal(self, sizes):
        from repro.streaming import NetworkPath
        from repro.streaming.packets import MediaPacket, PacketType

        packets = [
            MediaPacket(seq=i, ptype=PacketType.CONTROL, payload=b"x" * size)
            for i, size in enumerate(sizes)
        ]
        path = NetworkPath()
        schedule = path.deliver(packets)
        assert np.all(np.diff(schedule.arrival_times_s) > 0)
        # causality: nothing arrives before its own serialized transmit time
        for t, packet in zip(schedule.arrival_times_s, packets):
            min_time = sum(
                link.transmit_time_s(packet.size_bytes) + link.latency_s
                for link in path.hops
            )
            assert t >= min_time - 1e-12

    @settings(max_examples=40)
    @given(st.lists(st.integers(1, 5000), min_size=1, max_size=60),
           st.floats(0.1, 100.0))
    def test_radio_duty_bounded(self, sizes, playback_s):
        from repro.streaming import NetworkPath
        from repro.streaming.packets import MediaPacket, PacketType

        packets = [
            MediaPacket(seq=i, ptype=PacketType.CONTROL, payload=b"x" * size)
            for i, size in enumerate(sizes)
        ]
        duty = NetworkPath().deliver(packets).radio_duty(playback_s)
        assert 0.0 <= duty <= 1.0


# ---------------------------------------------------------------------------
# Codec, smoothing, ambient invariants
# ---------------------------------------------------------------------------

class TestCodecProperties:
    @settings(max_examples=40)
    @given(small_frames, small_frames)
    def test_size_ordering_per_frame(self, frame, prev):
        from repro.video import CodecModel

        codec = CodecModel()
        i = codec.estimate_frame_bytes(frame, prev, "I")
        p = codec.estimate_frame_bytes(frame, prev, "P")
        b = codec.estimate_frame_bytes(frame, prev, "B")
        assert i >= p >= b >= codec.min_frame_bytes

    @settings(max_examples=30)
    @given(st.integers(1, 30), st.integers(1, 30))
    def test_gop_from_n_m_valid(self, n, m):
        from repro.video import GopPattern

        if m > n:
            with pytest.raises(ValueError):
                GopPattern.from_n_m(n, m)
            return
        gop = GopPattern.from_n_m(n, m)
        assert gop.length == n
        assert gop.structure[0] == "I"
        # anchors land on multiples of m
        for i, t in enumerate(gop.structure):
            if i > 0 and i % m == 0:
                assert t == "P"


class TestSmoothingProperties:
    @settings(max_examples=60)
    @given(level_sequences, st.integers(1, 16))
    def test_ramp_reduces_or_keeps_max_step(self, levels, ramp):
        from repro.core import max_level_step, ramped_levels

        out = ramped_levels(np.asarray(levels), ramp)
        assert out.size == len(levels)
        assert max_level_step(out) <= max(max_level_step(np.asarray(levels)), 1)

    @settings(max_examples=60)
    @given(level_sequences, st.integers(1, 16))
    def test_ramp_stays_within_envelope(self, levels, ramp):
        from repro.core import ramped_levels

        arr = np.asarray(levels)
        out = ramped_levels(arr, ramp)
        assert out.min() >= arr.min() - 1
        assert out.max() <= arr.max() + 1


class TestAmbientProperties:
    @settings(max_examples=40)
    @given(st.floats(0.0, 1.0), st.floats(0.0, 3.0))
    def test_ambient_never_raises_level(self, eff, illuminance):
        from repro.display import AmbientCondition, ambient_level_for_scene, ipaq_5555

        device = ipaq_5555()
        dark = ambient_level_for_scene(device, eff, AmbientCondition("d", 0.0))
        lit = ambient_level_for_scene(device, eff, AmbientCondition("l", illuminance))
        assert lit <= dark

    @settings(max_examples=40)
    @given(st.integers(1, 255), st.floats(0.0, 3.0))
    def test_ambient_gain_at_least_one(self, level, illuminance):
        from repro.display import AmbientCondition, ambient_compensation_gain, ipaq_5555

        gain = ambient_compensation_gain(
            ipaq_5555(), level, AmbientCondition("x", illuminance)
        )
        assert gain >= 1.0


class TestPerceptualProperties:
    @settings(max_examples=40)
    @given(luminance_maps)
    def test_identity_always_invisible(self, lum):
        from repro.quality import PerceptualModel

        assert PerceptualModel().perceptible_fraction(lum, lum) == 0.0

    @settings(max_examples=40)
    @given(luminance_maps, st.floats(0.0, 0.5))
    def test_visibility_monotone_in_error(self, lum, delta):
        from repro.quality import PerceptualModel

        model = PerceptualModel()
        small = model.perceptible_fraction(lum, np.clip(lum + delta / 2, 0, 1))
        large = model.perceptible_fraction(lum, np.clip(lum + delta, 0, 1))
        assert large >= small - 1e-12


class TestPlayoutProperties:
    arrivals = st.lists(
        st.floats(0.0, 0.2), min_size=2, max_size=120
    ).map(lambda gaps: np.cumsum(np.asarray(gaps)))

    @settings(max_examples=60)
    @given(arrivals, st.floats(5.0, 60.0))
    def test_minimum_delay_is_sufficient(self, arrivals, fps):
        from repro.streaming import PlayoutBuffer

        delay = PlayoutBuffer.minimum_startup_delay(arrivals, fps)
        report = PlayoutBuffer(delay + 1e-6).simulate(arrivals, fps)
        assert report.smooth

    @settings(max_examples=60)
    @given(arrivals, st.floats(5.0, 60.0), st.floats(0.0, 1.0))
    def test_stall_time_monotone_in_buffer(self, arrivals, fps, delay):
        from repro.streaming import PlayoutBuffer

        less = PlayoutBuffer(delay).simulate(arrivals, fps).total_stall_s
        more = PlayoutBuffer(delay + 0.5).simulate(arrivals, fps).total_stall_s
        assert more <= less + 1e-9

    @settings(max_examples=60)
    @given(arrivals, st.floats(5.0, 60.0))
    def test_stalls_have_positive_duration_and_order(self, arrivals, fps):
        from repro.streaming import PlayoutBuffer

        report = PlayoutBuffer(0.0).simulate(arrivals, fps)
        indices = [s.frame_index for s in report.stalls]
        assert indices == sorted(indices)
        assert all(s.duration_s > 0 for s in report.stalls)
