"""End-to-end telemetry: the instrumented pipeline, caches, and services."""

import pytest

from repro.cli import main
from repro.core import AnnotationPipeline, ProfileCache, SchemeParameters
from repro.streaming import (
    BatteryAwareMiddleware,
    ClientCapabilities,
    MediaServer,
    SessionRequest,
    TranscodingProxy,
)
from repro.telemetry import SPAN_SECONDS, disable, enable, registry


def span_count(name: str) -> int:
    hist = registry().get(SPAN_SECONDS, labels={"span": name})
    return 0 if hist is None else hist.count


class TestPipelineSpans:
    def test_stage_spans_recorded(self, tiny_clip, device, fast_params):
        pipeline = AnnotationPipeline(fast_params)
        stream = pipeline.build_stream(tiny_clip, device)
        for _chunk in stream.iter_chunks():
            pass
        assert span_count("pipeline.profile") == 1
        assert span_count("pipeline.analyze") == 1
        assert span_count("pipeline.scene_grouping") == 1
        assert span_count("pipeline.clip") == 1
        assert span_count("pipeline.compensate") >= 1

    def test_engine_metrics_recorded(self, tiny_clip, fast_params):
        AnnotationPipeline(fast_params).profile(tiny_clip)
        frames = registry().series("repro_engine_frames_total")
        assert sum(m.value for m in frames) == tiny_clip.frame_count
        fps = registry().series("repro_engine_frames_per_sec")
        assert fps and all(m.value > 0 for m in fps)

    def test_disabled_pipeline_records_nothing(self, tiny_clip, device, fast_params):
        disable()
        try:
            AnnotationPipeline(fast_params).build_stream(tiny_clip, device)
        finally:
            enable()
        assert span_count("pipeline.profile") == 0
        assert registry().series("repro_engine_frames_total") == []


class TestCacheMetrics:
    def test_profile_cache_stats(self, tiny_clip, fast_params):
        cache = ProfileCache(max_entries=4)
        pipeline = AnnotationPipeline(fast_params, profile_cache=cache)
        pipeline.profile(tiny_clip)
        pipeline.profile(tiny_clip)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_ratio == pytest.approx(0.5)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        series = registry().series("repro_cache_hits_total")
        assert any(m.value == 1 for m in series)

    def test_fresh_cache_counters_start_at_zero(self):
        before = len(registry().series("repro_cache_hits_total"))
        a = ProfileCache(max_entries=2)
        b = ProfileCache(max_entries=2)
        assert a.hits == b.hits == 0
        # each instance owns its own labelled series
        assert len(registry().series("repro_cache_hits_total")) == before + 2

    def test_cache_series_survive_registry_reset(self, tiny_clip, fast_params):
        from repro.telemetry import reset_registry

        cache = ProfileCache(max_entries=4)
        pipeline = AnnotationPipeline(fast_params, profile_cache=cache)
        pipeline.profile(tiny_clip)
        reset_registry()
        pipeline.profile(tiny_clip)  # hit: re-registers the orphaned series
        assert any(m.value == 1 for m in registry().series("repro_cache_hits_total"))


class TestServiceCounters:
    def test_server_session_and_stream_counters(self, tiny_clip, fast_params):
        server = MediaServer(params=fast_params)
        server.add_clip(tiny_clip)
        request = SessionRequest("tiny", 0.05, ClientCapabilities("ipaq5555"))
        session = server.open_session(request)
        packets = list(server.stream(session))
        reg = registry()
        assert reg.get("repro_server_sessions_total").value == 1
        assert reg.get("repro_server_streams_total").value == 1
        frames = reg.get("repro_server_frames_streamed_total").value
        assert frames == tiny_clip.frame_count
        assert span_count("server.stream") == 1
        assert len(packets) > frames

    def test_proxy_window_counters(self, tiny_clip, device, fast_params):
        proxy = TranscodingProxy(
            device,
            params=fast_params,
            chunk_frames=max(1, tiny_clip.frame_count // 2),
        )
        out = list(proxy.annotate_live(tiny_clip.frames(), fps=tiny_clip.fps))
        assert len(out) == tiny_clip.frame_count
        reg = registry()
        assert reg.get("repro_proxy_frames_total").value == tiny_clip.frame_count
        assert reg.get("repro_proxy_windows_total").value == span_count("proxy.window")
        assert reg.get("repro_proxy_windows_total").value >= 2

    def test_middleware_adaptation_counters(self, tiny_clip, library_clip,
                                            device, fast_params):
        server = MediaServer(params=fast_params, qualities=(0.0, 0.05, 0.10))
        server.add_clip(tiny_clip)
        server.add_clip(library_clip)
        middleware = BatteryAwareMiddleware(server, device)
        plan = middleware.plan_session(["tiny", "spiderman2"],
                                       durations_s={"tiny": 3600.0,
                                                    "spiderman2": 3600.0})
        reg = registry()
        assert reg.get("repro_middleware_adaptations_total").value == len(plan.events)
        renegotiations = reg.get("repro_middleware_renegotiations_total").value
        changes = sum(
            1 for a, b in zip(plan.qualities(), plan.qualities()[1:]) if a != b
        )
        assert renegotiations == changes


class TestCliStats:
    def test_sweep_stats_table(self, capsys):
        assert main(["sweep", "themovie", "--scale", "0.1", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "telemetry snapshot" in out
        assert "pipeline.profile" in out
        assert "pipeline.clip" in out
        assert "pipeline.compensate" in out
        assert "repro_engine_frames_per_sec" in out
        assert "caches:" in out

    def test_savings_stats_json(self, capsys):
        assert main(["savings", "themovie", "--scale", "0.1", "--stats-json"]) == 0
        out = capsys.readouterr().out
        import json
        records = [json.loads(line) for line in out.splitlines()
                   if line.startswith("{")]
        names = {r["name"] for r in records}
        assert "repro_span_seconds" in names
        assert "repro_backlight_switches_total" in names

    def test_telemetry_subcommand_formats(self, capsys):
        assert main(["telemetry", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_span_seconds histogram" in out
        from repro.telemetry import parse_prometheus
        body = "\n".join(l for l in out.splitlines())
        assert parse_prometheus(body)
