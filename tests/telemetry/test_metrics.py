"""Metrics primitives: counters, gauges, histograms, the registry."""

import numpy as np
import pytest

from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    registry,
    reset_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("repro_test_total")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = Counter("repro_test_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_batched_increment_equals_repeated(self):
        # The hot-loop fast path: one inc(n) per chunk must land on the
        # same total as n unit increments.
        batched = Counter("repro_test_total")
        repeated = Counter("repro_test_total")
        for n in (1, 7, 64, 256):
            batched.inc(n)
            for _ in range(n):
                repeated.inc()
        assert batched.value == repeated.value == 1 + 7 + 64 + 256

    def test_batched_increment_disabled_is_noop(self):
        c = Counter("repro_test_total")
        disable()
        try:
            c.inc(1000)
        finally:
            enable()
        assert c.value == 0

    def test_invalid_names_rejected(self):
        for bad in ("", "9starts_with_digit", "has space", "has-dash"):
            with pytest.raises(ValueError):
                Counter(bad)

    def test_disabled_counter_is_frozen(self):
        c = Counter("repro_test_total")
        c.inc()
        disable()
        try:
            c.inc(100)
            assert not enabled()
        finally:
            enable()
        assert c.value == 1


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("repro_test_level")
        g.set(7.5)
        g.inc(0.5)
        g.dec(3.0)
        assert g.value == pytest.approx(5.0)

    def test_disabled_gauge_is_frozen(self):
        g = Gauge("repro_test_level")
        g.set(2.0)
        disable()
        try:
            g.set(99.0)
        finally:
            enable()
        assert g.value == 2.0


class TestHistogram:
    def test_observe_places_values_in_buckets(self):
        h = Histogram("repro_test_seconds", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert list(h.bucket_counts()) == [1, 1, 1, 1]
        assert list(h.cumulative_counts()) == [1, 2, 3, 4]
        assert h.sum == pytest.approx(555.5)
        assert h.min == pytest.approx(0.5)
        assert h.max == pytest.approx(500.0)
        assert h.mean == pytest.approx(555.5 / 4)

    def test_boundary_value_goes_to_its_le_bucket(self):
        h = Histogram("repro_test_seconds", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert list(h.bucket_counts()) == [1, 0, 0]

    def test_observe_many_matches_repeated_observe(self):
        values = np.linspace(0.0001, 40.0, 997)
        one = Histogram("repro_test_seconds")
        many = Histogram("repro_test_seconds")
        for v in values:
            one.observe(float(v))
        many.observe_many(values)
        assert list(one.bucket_counts()) == list(many.bucket_counts())
        assert one.count == many.count == 997
        assert one.sum == pytest.approx(many.sum)
        assert one.min == pytest.approx(many.min)
        assert one.max == pytest.approx(many.max)

    def test_observe_many_empty_is_noop(self):
        h = Histogram("repro_test_seconds")
        h.observe_many([])
        assert h.count == 0

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("repro_test_seconds", buckets=())
        with pytest.raises(ValueError):
            Histogram("repro_test_seconds", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("repro_test_seconds", buckets=(1.0, float("inf")))

    def test_default_buckets_span_microseconds_to_minutes(self):
        assert DEFAULT_TIME_BUCKETS[0] == pytest.approx(1e-5)
        assert DEFAULT_TIME_BUCKETS[-1] == pytest.approx(50.0)
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total")
        b = reg.counter("repro_x_total")
        assert a is b
        assert len(reg) == 1

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", labels={"kind": "a"})
        b = reg.counter("repro_x_total", labels={"kind": "b"})
        assert a is not b
        assert len(reg.series("repro_x_total")) == 2

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.gauge("repro_x", labels={"a": "1", "b": "2"})
        b = reg.gauge("repro_x", labels={"b": "2", "a": "1"})
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(TypeError):
            reg.gauge("repro_x_total")

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total").inc()
        reg.reset()
        assert len(reg) == 0
        assert reg.counter("repro_x_total").value == 0

    def test_register_external_metric(self):
        reg = MetricsRegistry()
        c = Counter("repro_y_total", labels={"cache": "t-1"})
        reg.register(c)
        assert reg.get("repro_y_total", labels={"cache": "t-1"}) is c

    def test_global_registry_reset_between_tests(self):
        # the autouse conftest fixture must hand every test a clean slate
        assert len(registry()) == 0
        registry().counter("repro_leak_total").inc()

    def test_global_registry_reset_between_tests_second_probe(self):
        # companion to the probe above: whichever runs second sees no leak
        assert registry().get("repro_leak_total") is None
        registry().counter("repro_leak_total").inc()

    def test_reset_registry_function(self):
        registry().counter("repro_z_total").inc()
        reset_registry()
        assert len(registry()) == 0
