"""Span tracing: nesting, thread isolation, error accounting, disable."""

import threading

import pytest

from repro.telemetry import (
    SPAN_ERRORS,
    SPAN_SECONDS,
    active_span,
    disable,
    enable,
    registry,
    span_stack,
    trace,
)


class TestNesting:
    def test_single_span_records_duration(self):
        with trace("unit.work") as span:
            pass
        assert span.duration_s >= 0.0
        hist = registry().get(SPAN_SECONDS, labels={"span": "unit.work"})
        assert hist is not None and hist.count == 1
        assert hist.sum == pytest.approx(span.duration_s)

    def test_nested_spans_build_paths(self):
        with trace("outer") as outer:
            assert active_span() is outer
            with trace("inner") as inner:
                assert inner.parent is outer
                assert inner.path == "outer/inner"
                assert inner.depth == 1
                assert [s.name for s in span_stack()] == ["outer", "inner"]
            assert active_span() is outer
        assert active_span() is None
        assert span_stack() == []

    def test_inner_duration_bounded_by_outer(self):
        with trace("outer") as outer:
            with trace("inner") as inner:
                pass
        assert inner.duration_s <= outer.duration_s

    def test_exception_still_records_and_counts_error(self):
        with pytest.raises(RuntimeError):
            with trace("unit.fails"):
                raise RuntimeError("boom")
        assert active_span() is None
        hist = registry().get(SPAN_SECONDS, labels={"span": "unit.fails"})
        assert hist is not None and hist.count == 1
        errors = registry().get(SPAN_ERRORS, labels={"span": "unit.fails"})
        assert errors is not None and errors.value == 1

    def test_sibling_spans_share_a_series(self):
        for _ in range(3):
            with trace("unit.repeat"):
                pass
        hist = registry().get(SPAN_SECONDS, labels={"span": "unit.repeat"})
        assert hist.count == 3


class TestDisable:
    def test_disabled_trace_yields_none_and_records_nothing(self):
        disable()
        try:
            with trace("unit.dark") as span:
                assert span is None
                assert active_span() is None
        finally:
            enable()
        assert registry().get(SPAN_SECONDS, labels={"span": "unit.dark"}) is None


class TestThreads:
    def test_span_stacks_are_thread_local(self):
        barrier = threading.Barrier(4)
        failures = []

        def worker(tag):
            try:
                with trace(f"thread.{tag}") as span:
                    barrier.wait(timeout=10)
                    # every thread sees only its own stack
                    assert span_stack() == [span]
                    with trace("leaf") as leaf:
                        assert leaf.path == f"thread.{tag}/leaf"
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []
        leaf = registry().get(SPAN_SECONDS, labels={"span": "leaf"})
        assert leaf.count == 4
        for i in range(4):
            per = registry().get(SPAN_SECONDS, labels={"span": f"thread.{i}"})
            assert per is not None and per.count == 1
