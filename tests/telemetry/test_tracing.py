"""Span tracing: nesting, thread isolation, error accounting, disable."""

import threading

import pytest

from repro.telemetry import (
    SPAN_ERRORS,
    SPAN_SECONDS,
    active_span,
    disable,
    enable,
    registry,
    span_stack,
    trace,
)


class TestNesting:
    def test_single_span_records_duration(self):
        with trace("unit.work") as span:
            pass
        assert span.duration_s >= 0.0
        hist = registry().get(SPAN_SECONDS, labels={"span": "unit.work"})
        assert hist is not None and hist.count == 1
        assert hist.sum == pytest.approx(span.duration_s)

    def test_nested_spans_build_paths(self):
        with trace("outer") as outer:
            assert active_span() is outer
            with trace("inner") as inner:
                assert inner.parent is outer
                assert inner.path == "outer/inner"
                assert inner.depth == 1
                assert [s.name for s in span_stack()] == ["outer", "inner"]
            assert active_span() is outer
        assert active_span() is None
        assert span_stack() == []

    def test_inner_duration_bounded_by_outer(self):
        with trace("outer") as outer:
            with trace("inner") as inner:
                pass
        assert inner.duration_s <= outer.duration_s

    def test_exception_still_records_and_counts_error(self):
        with pytest.raises(RuntimeError):
            with trace("unit.fails"):
                raise RuntimeError("boom")
        assert active_span() is None
        hist = registry().get(SPAN_SECONDS, labels={"span": "unit.fails"})
        assert hist is not None and hist.count == 1
        errors = registry().get(SPAN_ERRORS, labels={"span": "unit.fails"})
        assert errors is not None and errors.value == 1

    def test_sibling_spans_share_a_series(self):
        for _ in range(3):
            with trace("unit.repeat"):
                pass
        hist = registry().get(SPAN_SECONDS, labels={"span": "unit.repeat"})
        assert hist.count == 3


class TestDisable:
    def test_disabled_trace_yields_none_and_records_nothing(self):
        disable()
        try:
            with trace("unit.dark") as span:
                assert span is None
                assert active_span() is None
        finally:
            enable()
        assert registry().get(SPAN_SECONDS, labels={"span": "unit.dark"}) is None


class TestThreads:
    def test_span_stacks_are_thread_local(self):
        barrier = threading.Barrier(4)
        failures = []

        def worker(tag):
            try:
                with trace(f"thread.{tag}") as span:
                    barrier.wait(timeout=10)
                    # every thread sees only its own stack
                    assert span_stack() == [span]
                    with trace("leaf") as leaf:
                        assert leaf.path == f"thread.{tag}/leaf"
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []
        leaf = registry().get(SPAN_SECONDS, labels={"span": "leaf"})
        assert leaf.count == 4
        for i in range(4):
            per = registry().get(SPAN_SECONDS, labels={"span": f"thread.{i}"})
            assert per is not None and per.count == 1


class TestTraceIdentity:
    def test_root_span_gets_fresh_ids(self):
        from repro.telemetry import trace

        with trace("id.root") as span:
            assert len(span.trace_id) == 32
            assert len(span.span_id) == 16
            assert span.parent_id is None

    def test_children_inherit_trace_id(self):
        from repro.telemetry import trace

        with trace("id.outer") as outer:
            with trace("id.inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert inner.span_id != outer.span_id

    def test_trace_context_links_root_spans(self):
        """The server-side half of cross-wire linking: an ambient trace
        context makes new roots join the remote caller's trace."""
        from repro.telemetry import trace, trace_context

        with trace_context(trace_id="ab" * 16, parent_id="cd" * 8):
            with trace("ctx.root") as span:
                assert span.trace_id == "ab" * 16
                assert span.parent_id == "cd" * 8
        with trace("ctx.after") as span:
            assert span.trace_id != "ab" * 16

    def test_trace_context_generates_ids_when_missing(self):
        from repro.telemetry import trace, trace_context

        with trace_context() as ctx:
            assert len(ctx.trace_id) == 32
            with trace("ctx.fresh") as span:
                assert span.trace_id == ctx.trace_id

    def test_emit_span_nests_and_validates(self):
        from repro.telemetry import emit_span, trace

        with trace("agg.parent") as parent:
            span = emit_span("agg.stage", 0.25, tags={"n": 3})
            assert span.parent_id == parent.span_id
            assert span.trace_id == parent.trace_id
            assert span.duration_s == 0.25
        hist = registry().get(SPAN_SECONDS, labels={"span": "agg.stage"})
        assert hist is not None and hist.sum == pytest.approx(0.25)
        with pytest.raises(ValueError):
            emit_span("agg.bad", -1.0)


class TestCollector:
    def test_finished_spans_land_in_collector(self):
        from repro.telemetry import span_events, trace

        with trace("col.outer") as outer:
            with trace("col.inner"):
                pass
        events = span_events(trace_id=outer.trace_id)
        assert [e["name"] for e in events] == ["col.inner", "col.outer"]
        inner = events[0]
        assert inner["parent_id"] == outer.span_id
        assert inner["path"] == "col.outer/col.inner"

    def test_limit_and_capacity(self):
        from repro.telemetry import SpanCollector, Span

        collector = SpanCollector(capacity=4)
        for i in range(8):
            span = Span(f"s{i}")
            span.duration_s = 0.0
            collector.record(span.to_dict())
        assert len(collector) == 4
        assert [e["name"] for e in collector.events()] == ["s4", "s5", "s6", "s7"]
        assert [e["name"] for e in collector.events(limit=2)] == ["s6", "s7"]
        assert collector.events(limit=0) == []

    def test_jsonl_roundtrip(self):
        import json

        from repro.telemetry import spans_to_jsonl, trace

        with trace("jl.a") as a:
            pass
        text = spans_to_jsonl(trace_id=a.trace_id)
        rows = [json.loads(line) for line in text.splitlines()]
        assert [r["name"] for r in rows] == ["jl.a"]
        assert rows[0]["trace_id"] == a.trace_id


class TestAsyncioIsolation:
    def test_concurrent_tasks_do_not_share_span_stacks(self):
        """Two interleaving tasks must each see only their own spans —
        the contextvars fix for async span nesting."""
        import asyncio

        from repro.telemetry import active_span, trace

        async def session(tag, started, release):
            with trace(f"task.{tag}") as span:
                started.set()
                await release.wait()
                assert active_span() is span
                with trace("task.leaf") as leaf:
                    assert leaf.parent is span
                    assert leaf.path == f"task.{tag}/task.leaf"
                return span.trace_id

        async def run():
            a_started, b_started = asyncio.Event(), asyncio.Event()
            release = asyncio.Event()
            task_a = asyncio.create_task(session("a", a_started, release))
            task_b = asyncio.create_task(session("b", b_started, release))
            await a_started.wait()
            await b_started.wait()
            release.set()
            return await asyncio.gather(task_a, task_b)

        trace_a, trace_b = asyncio.run(run())
        assert trace_a != trace_b  # concurrent sessions stay distinct traces

    def test_task_spans_do_not_leak_into_parent(self):
        import asyncio

        from repro.telemetry import active_span, trace

        async def run():
            with trace("loop.outer") as outer:
                async def child():
                    with trace("loop.child"):
                        pass
                await asyncio.create_task(child())
                assert active_span() is outer
            assert active_span() is None

        asyncio.run(run())


class TestSyncOutputPin:
    def test_span_metric_series_shape_is_unchanged(self):
        """Regression pin: trace ids live in the collector, never in the
        metric labels, so the synchronous pipeline's exported span series
        are byte-identical to the pre-tracing format."""
        from repro.telemetry import to_prometheus, trace

        with trace("pin.outer"):
            with trace("pin.inner"):
                pass
        text = to_prometheus()
        assert 'repro_span_seconds_count{span="pin.outer"} 1' in text
        assert 'repro_span_seconds_count{span="pin.inner"} 1' in text
        assert "trace_id" not in text
        assert "span_id" not in text

    def test_pipeline_span_table_format_is_unchanged(self, tiny_clip, device):
        """The --stats table for a sync pipeline run lists the same span
        rows (name, count, totals) as before the tracing rework."""
        from repro.core import AnnotationPipeline, SchemeParameters
        from repro.telemetry import format_table

        pipeline = AnnotationPipeline(SchemeParameters(quality=0.1))
        pipeline.build_stream(tiny_clip, device)
        table = format_table()
        lines = [line.strip() for line in table.splitlines()]
        span_rows = [line.split()[0] for line in lines
                     if line.startswith("pipeline.")]
        assert "pipeline.profile" in span_rows
        assert "pipeline.analyze" in span_rows
        assert "pipeline.scene_grouping" in span_rows
        for line in lines:
            assert "trace" not in line.split()[0]
