"""Flight recorder: bounded retention, filtering, disable, isolation."""

import threading

import pytest

from repro.telemetry import (
    FlightRecorder,
    clear_flight_events,
    disable,
    enable,
    flight_events,
    flight_recorder,
    record_event,
)


class TestRecorder:
    def test_record_and_read_back(self):
        event = record_event("session_open", session_id=7, clip="movie")
        assert event["kind"] == "session_open"
        assert event["session_id"] == 7
        assert event["ts"] > 0
        events = flight_events()
        assert events[-1]["clip"] == "movie"

    def test_kind_filter_and_limit(self):
        for i in range(4):
            record_event("tick", i=i)
        record_event("tock")
        ticks = flight_events(kind="tick")
        assert [e["i"] for e in ticks] == [0, 1, 2, 3]
        assert [e["i"] for e in flight_events(kind="tick", limit=2)] == [2, 3]
        assert flight_events(kind="tick", limit=0) == []

    def test_capacity_bounds_retention(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder.record("e", i=i)
        assert len(recorder) == 3
        assert [e["i"] for e in recorder.events()] == [7, 8, 9]
        assert recorder.recorded_total == 10

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_disabled_recording_is_noop(self):
        disable()
        try:
            assert record_event("dark") is None
        finally:
            enable()
        assert flight_events(kind="dark") == []

    def test_clear_keeps_lifetime_counter(self):
        record_event("gone")
        before = flight_recorder().recorded_total
        clear_flight_events()
        assert flight_events() == []
        assert flight_recorder().recorded_total == before

    def test_events_are_copies(self):
        record_event("frozen", value=1)
        flight_events()[-1]["value"] = 2
        assert flight_events()[-1]["value"] == 1

    def test_thread_safety_under_concurrent_records(self):
        recorder = FlightRecorder(capacity=64)

        def worker(tag):
            for i in range(50):
                recorder.record("w", tag=tag, i=i)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert recorder.recorded_total == 200
        assert len(recorder) == 64
