"""Exporter round-trips: JSON-lines parse-back and Prometheus grammar."""

import json

import pytest

from repro.telemetry import (
    MetricsRegistry,
    format_table,
    from_jsonl,
    metric_to_dict,
    parse_prometheus,
    snapshot,
    to_jsonl,
    to_prometheus,
)


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_requests_total", help="Requests served.",
                labels={"route": "annotate"}).inc(7)
    reg.counter("repro_requests_total", labels={"route": "sweep"}).inc(2)
    reg.gauge("repro_queue_depth", help="Pending work items.").set(3.5)
    hist = reg.histogram("repro_latency_seconds", help="Request latency.",
                         buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        hist.observe(v)
    return reg


class TestJsonLines:
    def test_round_trip_is_lossless(self):
        reg = populated_registry()
        jl = to_jsonl(reg)
        rebuilt = from_jsonl(jl)
        assert to_jsonl(rebuilt) == jl
        assert snapshot(rebuilt) == snapshot(reg)

    def test_every_line_is_valid_json(self):
        for line in to_jsonl(populated_registry()).splitlines():
            record = json.loads(line)
            assert {"name", "kind"} <= set(record)

    def test_histogram_state_survives(self):
        rebuilt = from_jsonl(to_jsonl(populated_registry()))
        hist = rebuilt.get("repro_latency_seconds")
        assert hist.count == 4
        assert hist.sum == pytest.approx(5.555)
        assert hist.min == pytest.approx(0.005)
        assert hist.max == pytest.approx(5.0)
        assert list(hist.cumulative_counts()) == [1, 2, 3, 4]

    def test_metric_to_dict_keys(self):
        reg = populated_registry()
        record = metric_to_dict(reg.get("repro_queue_depth"))
        assert record["kind"] == "gauge"
        assert record["value"] == pytest.approx(3.5)

    def test_from_jsonl_rejects_garbage(self):
        with pytest.raises((ValueError, KeyError)):
            from_jsonl('{"kind": "counter"}\n')


class TestPrometheus:
    def test_output_parses_under_its_own_grammar(self):
        reg = populated_registry()
        text = to_prometheus(reg)
        samples = parse_prometheus(text)
        assert samples[("repro_requests_total", (("route", "annotate"),))] == 7
        assert samples[("repro_requests_total", (("route", "sweep"),))] == 2
        assert samples[("repro_queue_depth", ())] == pytest.approx(3.5)

    def test_histogram_exposition_is_cumulative(self):
        samples = parse_prometheus(to_prometheus(populated_registry()))
        assert samples[("repro_latency_seconds_bucket", (("le", "0.01"),))] == 1
        assert samples[("repro_latency_seconds_bucket", (("le", "0.1"),))] == 2
        assert samples[("repro_latency_seconds_bucket", (("le", "1.0"),))] == 3
        assert samples[("repro_latency_seconds_bucket", (("le", "+Inf"),))] == 4
        assert samples[("repro_latency_seconds_count", ())] == 4
        assert samples[("repro_latency_seconds_sum", ())] == pytest.approx(5.555)

    def test_help_and_type_headers_present(self):
        text = to_prometheus(populated_registry())
        assert "# HELP repro_requests_total Requests served." in text
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_latency_seconds histogram" in text

    def test_parse_rejects_malformed_lines(self):
        for bad in (
            "no_value_here",
            'metric{unclosed="x} 1',
            "metric{} 1 extra",
            '9metric 1',
        ):
            with pytest.raises(ValueError):
                parse_prometheus(bad)

    def test_escaped_label_values_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("repro_odd_total", labels={"path": 'a"b\\c'}).inc()
        samples = parse_prometheus(to_prometheus(reg))
        assert any(name == "repro_odd_total" for name, _ in samples)


class TestFormatTable:
    def test_empty_registry_message(self):
        assert "no metrics" in format_table(MetricsRegistry())

    def test_sections_render(self):
        table = format_table(populated_registry())
        assert "counters:" in table
        assert "gauges:" in table
        assert "histograms:" in table
        assert "repro_requests_total{route=annotate}" in table

    def test_cache_hit_ratio_derived(self):
        reg = MetricsRegistry()
        reg.counter("repro_cache_hits_total", labels={"cache": "profile-9"}).inc(3)
        reg.counter("repro_cache_misses_total", labels={"cache": "profile-9"}).inc(1)
        table = format_table(reg)
        assert "caches:" in table
        assert "75.0%" in table
