"""Smoke tests: every example script must run cleanly.

Examples are the first thing a new user executes; this keeps them from
rotting as the library evolves.  Each runs in a subprocess with the same
interpreter, with scaled-down arguments where supported.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

#: script -> extra argv (kept small so the suite stays fast)
EXAMPLES = {
    "quickstart.py": [],
    "streaming_session.py": [],
    "device_calibration.py": [],
    "quality_tradeoff.py": ["ice_age"],
    "baseline_comparison.py": [],
    "annotations_beyond_backlight.py": [],
    "battery_aware_viewing.py": [],
    "reproduce_paper.py": ["0.05"],
    "live_conferencing.py": [],
}


def _run(script, args):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("script,args", EXAMPLES.items(), ids=list(EXAMPLES))
def test_example_runs(script, args):
    result = _run(script, args)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{script} produced no output"


def test_example_list_is_complete():
    """Every script in examples/ is exercised here."""
    present = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert present == set(EXAMPLES)


def test_quickstart_reports_savings():
    result = _run("quickstart.py", [])
    assert "savings" in result.stdout.lower()


def test_reproduce_paper_checks_pass():
    result = _run("reproduce_paper.py", ["0.05"])
    assert "[ok]" in result.stdout
    assert "FAIL" not in result.stdout
