"""Shared fixtures: small deterministic clips, devices, frames.

Clips are scaled down aggressively (duration_scale, tiny resolution) so the
whole suite runs in seconds; the algorithms are resolution- and
length-agnostic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.camera import DigitalCamera, LinearResponse
from repro.core import SchemeParameters
from repro.display import ipaq_3650, ipaq_5555, zaurus_sl5600
from repro.video import (
    DarkScene,
    Frame,
    SceneSpec,
    ScriptedClipFactory,
    LazyClip,
    VideoClip,
    make_clip,
)

TEST_RESOLUTION = (48, 36)


@pytest.fixture(autouse=True)
def _telemetry_isolation():
    """Fresh, enabled global metrics registry around every test."""
    from repro import telemetry

    telemetry.enable()
    telemetry.reset_registry()
    telemetry.clear_spans()
    telemetry.clear_flight_events()
    yield
    telemetry.enable()
    telemetry.reset_registry()
    telemetry.clear_spans()
    telemetry.clear_flight_events()


@pytest.fixture
def device():
    """The paper's measurement device (transflective LED iPAQ 5555)."""
    return ipaq_5555()


@pytest.fixture
def ccfl_device():
    return ipaq_3650()


@pytest.fixture
def all_devices():
    return [ipaq_5555(), ipaq_3650(), zaurus_sl5600()]


@pytest.fixture
def dark_frame():
    """A dark frame with sparse highlights (the technique's home turf)."""
    gen = DarkScene(duration=1, resolution=TEST_RESOLUTION, seed=7)
    frame = gen.render(0)
    frame.index = 0
    return frame


@pytest.fixture
def bright_frame():
    """A nearly white frame (the adverse case)."""
    rng = np.random.default_rng(3)
    lum = np.clip(0.9 + 0.08 * rng.standard_normal((36, 48)), 0.0, 1.0)
    return Frame.from_luminance(lum)


@pytest.fixture
def gray_ramp_frame():
    """A frame containing every gray code exactly twice (checkable stats)."""
    codes = np.repeat(np.arange(256, dtype=np.uint8), 2).reshape(16, 32)
    return Frame(np.stack([codes, codes, codes], axis=-1))


@pytest.fixture
def tiny_clip():
    """Three-scene clip: dark -> bright -> dark, 36 frames at 30 fps."""
    scenes = [
        SceneSpec("dark", 12, {"background": 0.15, "highlight": 0.6, "glow_level": 0.3}),
        SceneSpec("bright", 12, {"background": 0.85, "variation": 0.08}),
        SceneSpec("dark", 12, {"background": 0.2, "highlight": 0.55, "glow_level": 0.35}),
    ]
    factory = ScriptedClipFactory(scenes, resolution=TEST_RESOLUTION, seed=11)
    return LazyClip(factory, frame_count=factory.frame_count, fps=30.0, name="tiny",
                    resolution=TEST_RESOLUTION)


@pytest.fixture
def tiny_clip_factory():
    scenes = [
        SceneSpec("dark", 12, {"background": 0.15, "highlight": 0.6, "glow_level": 0.3}),
        SceneSpec("bright", 12, {"background": 0.85, "variation": 0.08}),
        SceneSpec("dark", 12, {"background": 0.2, "highlight": 0.55, "glow_level": 0.35}),
    ]
    return ScriptedClipFactory(scenes, resolution=TEST_RESOLUTION, seed=11)


@pytest.fixture
def library_clip():
    """One real library title, shrunk for test speed."""
    return make_clip("spiderman2", resolution=TEST_RESOLUTION, duration_scale=0.15)


@pytest.fixture
def eager_clip(tiny_clip):
    return tiny_clip.materialize()


@pytest.fixture
def fast_params():
    """Scheme parameters tuned for short test clips."""
    return SchemeParameters(quality=0.05, min_scene_interval_frames=5)


@pytest.fixture
def noiseless_camera():
    """A camera with linear response and no noise, for exact assertions."""
    return DigitalCamera(response=LinearResponse(), noise_sigma=0.0)
