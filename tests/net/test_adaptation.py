"""Mid-stream adaptation (``requality``) tests.

The acceptance path of the adaptation control plane: a live session is
switched to a different quality and/or ambient bind **without tearing
down the connection** — the server re-binds at the next scene boundary
and replays nothing.  Covered here:

* wire vocabulary: ``requality`` request/ack round-trips and the
  switch plan carried by portable resume tokens;
* the :class:`~repro.streaming.server.AdaptationControl` mailbox;
* the :class:`~repro.net.client.BatteryClient` state machine (battery
  drain → quality steps, light sensor → ambient re-binds), driven by
  *modeled* playback time so every run is deterministic;
* end to end: post-switch frames byte-identical to a fresh fetch at the
  target binding, with no reconnect — through a direct socket, through
  :class:`LossyTransport` (reconnect-with-resume replays the switch
  plan), and across a fleet shard.

Live switches need the producer paced against the client (otherwise a
tiny clip is fully produced before the request arrives):
``queue_depth=1`` + ``batch_records=1`` + ``batch_bytes=1`` couples
production to the client's reads record by record.
"""

import asyncio
import random
from types import SimpleNamespace

import numpy as np
import pytest

from repro.net import (
    AnnotationStreamServer,
    AsyncMobileClient,
    BatteryClient,
    FaultSpec,
    FetchOptions,
    LossyTransport,
    MESSAGE_KINDS,
    ServeConfig,
    decode_control,
    decode_portable_token,
    encode_portable_token,
    encode_requality,
    encode_requality_ack,
)
from repro.net.client import _FetchProgress
from repro.power import Battery
from repro.streaming import AdaptationControl, MediaServer, PacketType
from repro.telemetry import flight_events, registry
from repro.video import LazyClip, SceneSpec, ScriptedClipFactory

DEVICE_NAME = "ipaq5555"
CLIP = "adaptclip"
FRAMES = 120
FPS = 30.0
TARGET_QUALITY = 0.2

#: Producer paced record-by-record against the client's reads, so a
#: live requality lands before the clip is fully produced.
PACED = ServeConfig(
    portable_tokens=True, queue_depth=1, batch_records=1, batch_bytes=1
)

#: Drains a 0.004 Wh pack at 20 W: all four default SOC thresholds are
#: crossed within the first modeled second of playback, so the client
#: requests the bottom of the ladder early in the stream.
TINY_BATTERY = dict(
    battery_trace="0:20",
    battery=Battery(capacity_wh=0.004, rated_power_w=1.5),
)


def _adaptive_clip():
    """Ten 12-frame scenes (alternating dark/bright) at 30 fps."""
    scenes = []
    for i in range(10):
        if i % 2 == 0:
            scenes.append(SceneSpec("dark", 12, {
                "background": 0.15 + 0.01 * i, "highlight": 0.6,
                "glow_level": 0.3,
            }))
        else:
            scenes.append(SceneSpec("bright", 12, {
                "background": 0.85, "variation": 0.08,
            }))
    factory = ScriptedClipFactory(scenes, resolution=(48, 36), seed=11)
    return LazyClip(factory, frame_count=factory.frame_count, fps=FPS,
                    name=CLIP, resolution=(48, 36))


def _media():
    server = MediaServer()
    server.add_clip(_adaptive_clip())
    return server


def _battery_client(device, **overrides):
    kwargs = dict(TINY_BATTERY)
    kwargs.update(
        max_retries=0,
        backoff_base_s=0.01,
        backoff_max_s=0.05,
        jitter_s=0.0,
        rng=random.Random(0),
    )
    kwargs.update(overrides)
    return BatteryClient(device, **kwargs)


def _plain_client(device, **overrides):
    kwargs = dict(max_retries=0, backoff_base_s=0.01, backoff_max_s=0.05,
                  jitter_s=0.0, rng=random.Random(0))
    kwargs.update(overrides)
    return AsyncMobileClient(device, **kwargs)


def _frame_bytes(result):
    return {
        p.frame_index: p.frame.pixels.tobytes()
        for p in result.packets if p.ptype is PacketType.FRAME
    }


def _annotations(result):
    return [bytes(p.payload) for p in result.packets
            if p.ptype is PacketType.ANNOTATION]


def _assert_post_switch_identical(adaptive, reference, boundary):
    """Frames from ``boundary`` on must match the reference fetch."""
    mine, ref = _frame_bytes(adaptive), _frame_bytes(reference)
    assert sorted(mine) == list(range(FRAMES))  # frame-seq continuity
    post = [i for i in range(FRAMES) if i >= boundary]
    assert post, "switch landed after the last frame"
    for i in post:
        assert mine[i] == ref[i], f"frame {i} differs post-switch"
    # The re-bound annotation is the reference session's head annotation.
    assert _annotations(adaptive)[-1] == _annotations(reference)[0]


# ---------------------------------------------------------------------------
# wire vocabulary


class TestRequalityMessages:
    def test_kind_registered(self):
        assert "requality" in MESSAGE_KINDS

    def test_request_round_trip(self):
        packet = encode_requality(quality=0.15, ambient="office", seq=3)
        message = decode_control(packet)
        assert message.kind == "requality"
        info = message.requality
        assert info.is_request
        assert info.quality == 0.15
        assert info.ambient == "office"

    def test_request_needs_a_change(self):
        with pytest.raises(ValueError):
            encode_requality()

    def test_ack_round_trip(self):
        packet = encode_requality_ack(
            True, 45, quality=0.2, ambient="office", token="tok", seq=0
        )
        info = decode_control(packet).requality
        assert not info.is_request
        assert info.applied is True
        assert (info.frame, info.quality, info.ambient, info.token) == (
            45, 0.2, "office", "tok"
        )

    def test_reject_round_trip(self):
        info = decode_control(
            encode_requality_ack(False, 119, error="no boundary left", seq=0)
        ).requality
        assert info.applied is False
        assert info.error == "no boundary left"

    def test_portable_token_carries_switch_plan(self):
        plan = ((45, 0.2, None), (57, 0.2, "office"))
        token = encode_portable_token(CLIP, 0.0, DEVICE_NAME, switches=plan)
        info = decode_portable_token(token)
        assert info.switches == plan
        assert info.quality == 0.0  # opening quality, not the target


# ---------------------------------------------------------------------------
# the mailbox


class TestAdaptationControl:
    def test_latest_request_wins_and_poll_clears(self):
        control = AdaptationControl()
        control.request(quality=0.1)
        control.request(quality=0.2, ambient="office")
        assert control.poll_request() == (0.2, "office")
        assert control.poll_request() is None

    def test_pending_requests_merge_field_wise(self):
        # A quality step must survive a later ambient-only request (and
        # vice versa) when both land before the producer polls.
        control = AdaptationControl()
        control.request(quality=0.2)
        control.request(ambient="office")
        assert control.poll_request() == (0.2, "office")
        control.request(ambient="sunlight")
        control.request(quality=0.05)
        assert control.poll_request() == (0.05, "sunlight")

    def test_empty_request_rejected(self):
        with pytest.raises(ValueError):
            AdaptationControl().request()

    def test_plan_peek_and_expiry(self):
        control = AdaptationControl(plan=[(10, 0.2, None), (20, 0.2, "office")])
        assert control.next_planned(0) == (10, 0.2, None)
        assert control.next_planned(11) == (20, 0.2, "office")
        assert control.next_planned(21) is None

    def test_live_switch_emits_ack_and_extends_plan(self):
        control = AdaptationControl()
        seen = []
        control.ack_builder = lambda frame, quality, ambient, plan: (
            seen.append((frame, quality, ambient, plan)) or "ACK"
        )
        packets = control.switch_applied(45, 0.2, "office", live=True)
        assert packets == ["ACK"]
        assert seen == [(45, 0.2, "office", ((45, 0.2, "office"),))]
        assert control.switch_plan() == ((45, 0.2, "office"),)

    def test_replay_switch_emits_nothing(self):
        control = AdaptationControl(plan=[(45, 0.2, None)])
        control.ack_builder = lambda *a: "ACK"
        assert control.switch_applied(45, 0.2, None, live=False) == []
        assert control.next_planned(0) is None
        assert control.switch_plan() == ((45, 0.2, None),)


# ---------------------------------------------------------------------------
# the client state machine (modeled time — no sockets)


def _progress(quality=0.0, frames_seen=0):
    progress = _FetchProgress()
    progress.session = SimpleNamespace(quality=quality, fps=FPS)
    progress.frames_seen = frames_seen
    return progress


class TestBatteryClientModel:
    def test_state_of_charge_decreases(self, device):
        client = _battery_client(device)
        socs = [client.state_of_charge(t) for t in (0.0, 0.3, 0.6, 10.0)]
        assert socs[0] == pytest.approx(1.0)
        assert all(b <= a for a, b in zip(socs, socs[1:]))
        assert socs[-1] == 0.0

    def test_no_battery_trace_means_full_charge(self, device):
        client = BatteryClient(device, ambient_trace="office")
        assert client.state_of_charge(1e6) == 1.0

    def test_validation(self, device):
        with pytest.raises(ValueError):
            BatteryClient(device, soc_thresholds=(1.5,))
        with pytest.raises(ValueError):
            BatteryClient(device, quality_ladder=())

    def test_steps_down_ladder_as_battery_drains(self, device):
        client = _battery_client(device)
        progress = _progress(quality=0.0)
        assert client._advise(progress) is None  # t=0: full charge
        # By frame 60 (t=2 s) the tiny pack is flat: one request straight
        # to the bottom of the ladder.
        progress.frames_seen = 60
        assert client._advise(progress) == (TARGET_QUALITY, None)
        # Crossings are edge-triggered: no repeat requests.
        progress.frames_seen = 90
        assert client._advise(progress) is None

    def test_never_steps_above_opening_quality(self, device):
        client = _battery_client(device)
        progress = _progress(quality=TARGET_QUALITY)  # already at the bottom
        progress.frames_seen = 60
        assert client._advise(progress) is None

    def test_ambient_change_requests_rebind_once(self, device):
        client = BatteryClient(device, ambient_trace="0:dark-room,1:office")
        progress = _progress()
        assert client._advise(progress) is None  # still dark
        progress.frames_seen = int(1.5 * FPS)
        assert client._advise(progress) == (None, "office")
        progress.frames_seen = int(2.0 * FPS)
        assert client._advise(progress) is None  # edge-triggered


class TestFetchOptionsClient:
    def test_traces_build_battery_client(self, device):
        options = FetchOptions(battery_trace="0:2.5", ambient_trace="office")
        client = options.client(device)
        assert isinstance(client, BatteryClient)
        assert client.load_trace is not None
        assert client.ambient_trace is not None

    def test_plain_options_build_plain_client(self, device):
        client = FetchOptions().client(device)
        assert not isinstance(client, BatteryClient)

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            FetchOptions(battery_trace="nonsense")
        with pytest.raises(ValueError):
            FetchOptions(ambient_trace="0:office,0:sunlight")

    def test_serve_config_validates_ambient(self):
        with pytest.raises(ValueError):
            ServeConfig(ambient="x:office")


# ---------------------------------------------------------------------------
# end to end


def _counter(name):
    metric = registry().get(name)
    return 0 if metric is None else metric.value


def test_battery_requality_byte_identical_no_reconnect(device):
    """The tentpole guarantee on a direct socket.

    A battery-driven client opens at the best quality; its modeled pack
    drains within a second, so it requests the bottom of the ladder
    mid-stream.  The switch applies at a scene boundary, nothing is
    replayed, and every post-switch frame is byte-identical to a fresh
    fetch at the target quality.
    """

    async def run():
        async with AnnotationStreamServer(_media(), config=PACED) as server:
            host, port = server.address
            before = _counter("repro_requality_total")
            adaptive = await _battery_client(device).fetch(
                host, port, CLIP, 0.0
            )
            reference = await _plain_client(device).fetch(
                host, port, CLIP, TARGET_QUALITY
            )
            return adaptive, reference, before

    adaptive, reference, before = asyncio.run(run())
    assert adaptive.attempts == 1  # no reconnect
    applied = [r for r in adaptive.requalities if r.applied]
    assert applied, "no requality landed — pacing broke?"
    assert applied[-1].quality == TARGET_QUALITY
    assert applied[-1].token, "applied ack must re-issue the resume token"
    _assert_post_switch_identical(adaptive, reference, applied[-1].frame)
    assert _counter("repro_requality_total") >= before + 1
    kinds = {e["kind"] for e in flight_events()}
    assert {"requality_request", "session_requality"} <= kinds


def test_ambient_requality_matches_ambient_session(device):
    """An ambient re-bind converges on the serve-time ambient session.

    The client's light sensor switches dark-room → office one modeled
    second in; post-switch output must be byte-identical to a session
    served with ``ServeConfig(ambient="office")`` from the start.
    """

    async def run():
        async with AnnotationStreamServer(_media(), config=PACED) as server:
            host, port = server.address
            client = BatteryClient(
                device, ambient_trace="0:dark-room,1:office",
                max_retries=0, jitter_s=0.0, rng=random.Random(0),
            )
            adaptive = await client.fetch(host, port, CLIP, 0.0)
        office = PACED.replace(ambient="office")
        async with AnnotationStreamServer(_media(), config=office) as server:
            reference = await _plain_client(device).fetch(
                *server.address, CLIP, 0.0
            )
        return adaptive, reference

    adaptive, reference = asyncio.run(run())
    applied = [r for r in adaptive.requalities if r.applied]
    assert applied and applied[-1].ambient == "office"
    _assert_post_switch_identical(adaptive, reference, applied[-1].frame)


def test_requality_survives_lossy_transport(device):
    """Reconnect-with-resume replays the switch plan byte-identically.

    The relay kills every connection after 60 records — after the live
    switch has been applied and acked.  The client resumes with the
    re-issued token; the server replays the remainder under the switch
    plan, so the reassembled stream still matches the fresh fetch at
    the target quality post-switch.
    """
    # No per-record delay: extra relay lag would let the CPU-bound
    # producer run ahead through the socket buffers and race the live
    # request past the last scene boundary.
    spec = FaultSpec(kill_after_records=60, seed=3)

    async def run():
        async with AnnotationStreamServer(_media(), config=PACED) as server:
            async with LossyTransport(*server.address, spec=spec) as lossy:
                adaptive = await _battery_client(device, max_retries=8).fetch(
                    *lossy.address, CLIP, 0.0
                )
            reference = await _plain_client(device).fetch(
                *server.address, CLIP, TARGET_QUALITY
            )
            return adaptive, reference

    adaptive, reference = asyncio.run(run())
    assert adaptive.resumes >= 1, "the relay should have forced a resume"
    applied = [r for r in adaptive.requalities if r.applied]
    # The slowed wire can surface the battery crossings incrementally
    # (several small steps); only the final landing point is pinned.
    assert applied and applied[-1].quality == TARGET_QUALITY
    _assert_post_switch_identical(adaptive, reference, applied[-1].frame)


def _fleet_catalog():
    """Picklable catalog factory for the fleet workers."""
    return _media()


def test_requality_across_fleet_shard(device):
    """The requality loop works through the fleet router.

    The connection is pinned to the owning shard, so mid-stream requests
    ride the same duplex path; the adapted stream must match a fresh
    router fetch at the target quality post-switch.
    """
    from repro.fleet import FleetCoordinator

    async def run():
        async with FleetCoordinator(_fleet_catalog, shards=2, config=PACED,
                                    health_interval_s=0.2) as fleet:
            host, port = fleet.address
            adaptive = await _battery_client(device, max_retries=2).fetch(
                host, port, CLIP, 0.0
            )
            reference = await _plain_client(device, max_retries=2).fetch(
                host, port, CLIP, TARGET_QUALITY
            )
            return adaptive, reference

    adaptive, reference = asyncio.run(run())
    applied = [r for r in adaptive.requalities if r.applied]
    assert applied and applied[-1].quality == TARGET_QUALITY
    _assert_post_switch_identical(adaptive, reference, applied[-1].frame)
