"""Property tests for the binary wire codec.

Two invariants carry the whole transport:

* **round trip** — ``decode(encode(p))`` reproduces every packet field
  bit-identically, for all three packet types;
* **no garbage in** — any truncated, corrupted or random byte string
  raises :class:`~repro.net.codec.WireFormatError` (a
  :class:`~repro.streaming.client.StreamProtocolError`), never a crash,
  a hang or a silently wrong packet.
"""

import asyncio
import struct

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.net.codec import (
    MAX_BODY_BYTES,
    WIRE_HEADER_BYTES,
    WIRE_MAGIC,
    WireFormatError,
    decode_packet,
    encode_packet,
    encode_packet_bytes,
    read_packet,
    wire_size,
)
from repro.streaming import (
    PACKET_HEADER_BYTES,
    MediaPacket,
    PacketType,
    annotation_packet,
    control_packet,
    frame_packet,
)
from repro.streaming.client import StreamProtocolError
from repro.video import Frame

# -- strategies --------------------------------------------------------

seqs = st.integers(0, 2**32 - 2)
wire_hints = st.none() | st.integers(0, 2**32 - 2)


@st.composite
def frames(draw):
    """A small random frame (geometry and pixels both fuzzed)."""
    height = draw(st.integers(1, 16))
    width = draw(st.integers(1, 16))
    seed = draw(st.integers(0, 2**32 - 1))
    pixels = np.random.default_rng(seed).integers(
        0, 256, size=(height, width, 3), dtype=np.uint8
    )
    return Frame(pixels, index=draw(st.integers(0, 10_000)))


@st.composite
def packets(draw):
    """Any of the three packet types with fuzzed fields."""
    kind = draw(st.sampled_from(["control", "annotation", "frame"]))
    seq = draw(seqs)
    hint = draw(wire_hints)
    if kind == "frame":
        # The wire carries one index; frame.index == frame_index on the
        # wire, exactly as MediaServer emits it.
        frame = draw(frames())
        return frame_packet(seq, frame, frame.index, wire_bytes=hint)
    if kind == "annotation":
        return MediaPacket(seq=seq, ptype=PacketType.ANNOTATION,
                           payload=draw(st.binary(min_size=1, max_size=200)),
                           wire_bytes=hint)
    return MediaPacket(seq=seq, ptype=PacketType.CONTROL,
                       payload=draw(st.binary(min_size=0, max_size=200)),
                       wire_bytes=hint)


def _assert_packets_equal(got: MediaPacket, ref: MediaPacket) -> None:
    assert got.ptype is ref.ptype
    assert got.seq == ref.seq
    assert got.wire_bytes == ref.wire_bytes
    if ref.ptype is PacketType.FRAME:
        assert got.frame_index == ref.frame_index
        assert got.frame.index == ref.frame.index
        assert got.frame.pixels.dtype == np.uint8
        assert np.array_equal(got.frame.pixels, ref.frame.pixels)
    else:
        assert got.payload == ref.payload


# -- round trip --------------------------------------------------------

class TestRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(packet=packets())
    def test_encode_decode_bit_identity(self, packet):
        _assert_packets_equal(decode_packet(encode_packet_bytes(packet)), packet)

    @settings(max_examples=60, deadline=None)
    @given(packet=packets())
    def test_record_length_is_header_plus_body(self, packet):
        encoded = encode_packet_bytes(packet)
        header, body = encode_packet(packet)
        assert len(header) == WIRE_HEADER_BYTES
        assert len(encoded) == WIRE_HEADER_BYTES + len(body)
        assert len(encoded) == wire_size(packet)

    @settings(max_examples=60, deadline=None)
    @given(packet=packets())
    def test_wire_size_matches_model_charge(self, packet):
        """The record occupies exactly what the network model charges
        (unless ``wire_bytes`` models an encoded bitstream)."""
        if packet.wire_bytes is None:
            assert wire_size(packet) == packet.size_bytes

    def test_header_parity_constant(self):
        assert WIRE_HEADER_BYTES == PACKET_HEADER_BYTES == 32

    def test_zero_payload_control_round_trips(self):
        packet = control_packet(0, b"")
        encoded = encode_packet_bytes(packet)
        assert len(encoded) == WIRE_HEADER_BYTES
        _assert_packets_equal(decode_packet(encoded), packet)

    @settings(max_examples=40, deadline=None)
    @given(packet=packets())
    def test_async_reader_round_trips(self, packet):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_packet_bytes(packet))
            reader.feed_eof()
            got = await read_packet(reader)
            assert await read_packet(reader) is None  # clean EOF after
            return got

        _assert_packets_equal(asyncio.run(run()), packet)

    def test_async_reader_handles_back_to_back_records(self):
        first = annotation_packet(0, b"track-bytes")
        second = frame_packet(1, Frame.solid_gray(6, 4, 99), 0)

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(
                encode_packet_bytes(first) + encode_packet_bytes(second)
            )
            reader.feed_eof()
            return [await read_packet(reader), await read_packet(reader),
                    await read_packet(reader)]

        one, two, three = asyncio.run(run())
        _assert_packets_equal(one, first)
        _assert_packets_equal(two, second)
        assert three is None


# -- malformed input ---------------------------------------------------

class TestMalformedInput:
    @settings(max_examples=120, deadline=None)
    @given(packet=packets(), data=st.data())
    def test_any_truncation_raises(self, packet, data):
        encoded = encode_packet_bytes(packet)
        cut = data.draw(st.integers(0, len(encoded) - 1), label="cut")
        with pytest.raises(WireFormatError):
            decode_packet(encoded[:cut])

    @settings(max_examples=120, deadline=None)
    @given(packet=packets(), data=st.data())
    def test_any_single_byte_corruption_raises(self, packet, data):
        encoded = bytearray(encode_packet_bytes(packet))
        pos = data.draw(st.integers(0, len(encoded) - 1), label="pos")
        encoded[pos] ^= 0xFF
        with pytest.raises(WireFormatError):
            decode_packet(bytes(encoded))

    @settings(max_examples=150, deadline=None)
    @given(data=st.binary(min_size=0, max_size=300))
    def test_random_garbage_raises(self, data):
        # A random blob that happened to be a valid record would decode
        # fine; it cannot (CRC32 + magic), but keep the test honest.
        assume(not data.startswith(WIRE_MAGIC))
        with pytest.raises(WireFormatError):
            decode_packet(data)

    def test_errors_are_stream_protocol_errors(self):
        """The retry loop catches StreamProtocolError; codec errors must be."""
        assert issubclass(WireFormatError, StreamProtocolError)
        with pytest.raises(StreamProtocolError):
            decode_packet(b"NOPE" + b"\x00" * 28)

    def test_trailing_bytes_rejected(self):
        encoded = encode_packet_bytes(annotation_packet(1, b"abc"))
        with pytest.raises(WireFormatError):
            decode_packet(encoded + b"x")

    def test_huge_body_length_rejected_without_allocation(self):
        header = bytearray(encode_packet_bytes(control_packet(0, b"")))
        struct.pack_into("<I", header, 12, MAX_BODY_BYTES + 1)
        with pytest.raises(WireFormatError):
            decode_packet(bytes(header))

    def test_frame_geometry_mismatch_rejected(self):
        packet = frame_packet(0, Frame.solid_gray(4, 4, 10), 0)
        header, body = encode_packet(packet)
        header = bytearray(header)
        struct.pack_into("<H", header, 20, 5)  # height lies about the body
        with pytest.raises(WireFormatError):
            decode_packet(bytes(header) + bytes(body))

    def test_oversized_seq_rejected_at_encode(self):
        with pytest.raises(WireFormatError):
            encode_packet(control_packet(2**32 - 1, b""))

    def test_oversized_wire_hint_rejected_at_encode(self):
        with pytest.raises(WireFormatError):
            encode_packet(
                frame_packet(0, Frame.solid_gray(4, 4, 0), 0,
                             wire_bytes=2**32 - 1)
            )

    @settings(max_examples=60, deadline=None)
    @given(packet=packets(), data=st.data())
    def test_async_reader_truncation_raises_not_hangs(self, packet, data):
        encoded = encode_packet_bytes(packet)
        cut = data.draw(st.integers(1, len(encoded) - 1), label="cut")

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(encoded[:cut])
            reader.feed_eof()
            # Bounded wait: a hang here is a test failure, not a stall.
            return await asyncio.wait_for(read_packet(reader), timeout=5.0)

        with pytest.raises(WireFormatError):
            asyncio.run(run())
