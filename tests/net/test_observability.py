"""End-to-end observability: linked traces, stats probes, flight recorder.

The acceptance scenarios of the tracing + live-ops layer:

* one fetch through a :class:`LossyTransport` — with retries and a
  session **resume** — still produces exactly one trace: every client
  and server span carries the same trace id, parent links resolve to a
  single root, no orphans;
* the ``stats`` wire probe answers with a full metrics snapshot (JSON
  or Prometheus text) without consuming an admission slot, including
  from a server that is at capacity (shedding) or draining;
* the flight recorder retains session open / resume / shed / drain
  events and ships them over the probe;
* per-fetch latency SLO stats (time-to-first-frame, inter-frame gaps,
  deadline misses) populate on every successful fetch.
"""

import asyncio
import random

import numpy as np
import pytest

from repro.core import ProfileCache, SchemeParameters
from repro.net import (
    AnnotationStreamServer,
    AsyncMobileClient,
    FaultSpec,
    LatencyStats,
    LossyTransport,
    encode_packet_bytes,
    encode_hello,
    fetch_stats,
)
from repro.streaming import ClientCapabilities, MediaServer, SessionRequest
from repro.telemetry import (
    flight_events,
    parse_prometheus,
    registry_from_snapshot,
    span_events,
)
from repro.video import ArrayClip

FAST_PARAMS = SchemeParameters(quality=0.05, min_scene_interval_frames=5)
QUALITY = 0.05

#: Client-side span names a clean traced fetch must produce.
CLIENT_SPANS = {"net.fetch", "net.connect", "net.decode"}
#: Server-side span names a clean traced fetch must produce.
SERVER_SPANS = {"net.admission", "net.session", "net.produce",
                "net.encode", "net.queue.wait", "net.write"}


def _clip(name="obsclip", frames=24, height=16, width=12, seed=7):
    pixels = np.random.default_rng(seed).integers(
        0, 256, size=(frames, height, width, 3), dtype=np.uint8
    )
    return ArrayClip(pixels, fps=24.0, name=name)


def _big_clip(name="obsbig", frames=60, seed=7):
    """Large enough that the server is provably mid-stream when the
    relay kills the connection, forcing a resume."""
    return _clip(name=name, frames=frames, height=96, width=72, seed=seed)


def _media_server(*clips):
    server = MediaServer(
        params=FAST_PARAMS, profile_cache=ProfileCache(max_entries=8)
    )
    for clip in clips:
        server.add_clip(clip)
    return server


def _client(device, **kwargs):
    kwargs.setdefault("rng", random.Random(0))
    kwargs.setdefault("max_retries", 8)
    kwargs.setdefault("backoff_base_s", 0.01)
    kwargs.setdefault("backoff_max_s", 0.05)
    kwargs.setdefault("jitter_s", 0.0)
    return AsyncMobileClient(device, **kwargs)


def _trace_tree(trace_id):
    """(events, roots) for one trace from the process-wide collector."""
    events = span_events(trace_id=trace_id)
    ids = {e["span_id"] for e in events}
    roots = [e for e in events if e["parent_id"] not in ids]
    return events, roots


class TestLinkedTrace:
    def test_clean_fetch_yields_one_linked_tree(self, device):
        clip = _clip()
        media = _media_server(clip)

        async def run():
            async with AnnotationStreamServer(media) as server:
                return await _client(device).fetch(
                    *server.address, clip.name, QUALITY
                )

        result = asyncio.run(run())
        assert result.trace_id is not None
        events, roots = _trace_tree(result.trace_id)
        names = {e["name"] for e in events}
        assert CLIENT_SPANS <= names, names
        assert SERVER_SPANS <= names, names
        # one fetch -> one root, and it is the client's fetch span
        assert len(roots) == 1
        assert roots[0]["name"] == "net.fetch"
        assert roots[0]["parent_id"] is None
        # every span shares the fetch's trace id
        assert {e["trace_id"] for e in events} == {result.trace_id}
        # the server's admission span hangs under the client's connect
        connect = next(e for e in events if e["name"] == "net.connect")
        admission = next(e for e in events if e["name"] == "net.admission")
        assert admission["parent_id"] == connect["span_id"]
        # a completed session also left its policy binding in the
        # flight recorder
        binds = flight_events(kind="policy_bind")
        assert binds and binds[-1]["device"] == device.name

    def test_lossy_fetch_with_resume_stays_one_trace(self, device):
        """Retries and a mid-stream resume must not fork the trace."""
        clip = _big_clip()
        media = _media_server(clip)
        spec = FaultSpec(kill_after_records=4, max_faults=3, seed=3)

        async def run():
            async with AnnotationStreamServer(media) as server:
                async with LossyTransport(*server.address, spec=spec) as lossy:
                    return await _client(device).fetch(
                        *lossy.address, clip.name, QUALITY
                    )

        result = asyncio.run(run())
        assert result.attempts > 1, "the kill must force at least one retry"
        assert result.frame_count == clip.frame_count
        events, roots = _trace_tree(result.trace_id)
        names = [e["name"] for e in events]
        assert names.count("net.fetch") == 1
        assert names.count("net.connect") == result.attempts
        assert "net.retry" in names
        # resumed server sessions join the same trace: several session
        # spans, one tree, no orphans
        assert names.count("net.session") >= 2
        assert len(roots) == 1 and roots[0]["name"] == "net.fetch"
        ids = {e["span_id"] for e in events}
        for event in events:
            assert event["parent_id"] is None or event["parent_id"] in ids

    def test_latency_stats_populate_on_fetch(self, device):
        clip = _clip(name="sloclip")
        media = _media_server(clip)

        async def run():
            async with AnnotationStreamServer(media) as server:
                return await _client(device).fetch(
                    *server.address, clip.name, QUALITY
                )

        result = asyncio.run(run())
        slo = result.latency
        assert isinstance(slo, LatencyStats)
        assert slo.frame_count == clip.frame_count
        assert slo.ttff_s > 0.0
        assert slo.mean_gap_s >= 0.0
        assert slo.max_gap_s >= slo.mean_gap_s
        # loopback streams far faster than 24 fps playback
        assert slo.deadline_misses == 0


class TestStatsProbe:
    def test_probe_returns_snapshot_without_admission_slot(self, device):
        clip = _clip(name="statsclip")
        media = _media_server(clip)

        async def run():
            async with AnnotationStreamServer(media, max_sessions=1) as server:
                json_payload = await fetch_stats(*server.address)
                prom_payload = await fetch_stats(
                    *server.address, format="prometheus"
                )
                return json_payload, prom_payload, server.healthz()

        json_payload, prom_payload, health = asyncio.run(run())
        assert json_payload["health"]["accepting"] is True
        reg = registry_from_snapshot(json_payload["metrics"])
        probes = reg.get("repro_net_stats_probes_total")
        assert probes is not None and probes.value >= 1
        # probes never consumed a session slot
        assert health["active_sessions"] == 0
        samples = parse_prometheus(prom_payload["prometheus"])
        assert ("repro_net_stats_probes_total", ()) in samples

    def test_probe_answers_during_shed_with_flight_events(self, device):
        """At capacity with no accept queue, fetches shed — but the
        stats probe still answers and the recorder names the shed."""
        clip = _big_clip(name="shedstats", seed=21)
        media = _media_server(clip)

        async def run():
            async with AnnotationStreamServer(
                media, max_sessions=1, accept_queue=0, queue_depth=1,
            ) as server:
                holder = _client(device)
                request = holder._player.request(clip.name, QUALITY)
                reader, writer = await asyncio.open_connection(*server.address)
                writer.write(encode_packet_bytes(encode_hello(request)))
                await writer.drain()
                await reader.readexactly(32)  # slot is held
                try:
                    from repro.net import StreamFetchError

                    with pytest.raises(StreamFetchError):
                        await _client(device, max_retries=0).fetch(
                            *server.address, clip.name, QUALITY
                        )
                    return await fetch_stats(*server.address,
                                             include_events=True)
                finally:
                    writer.transport.abort()

        payload = asyncio.run(run())
        assert payload["health"]["active_sessions"] == 1
        kinds = [e["kind"] for e in payload["events"]]
        assert "session_open" in kinds
        assert "session_shed" in kinds
        shed = next(e for e in payload["events"]
                    if e["kind"] == "session_shed")
        assert shed["max"] == 1 and shed["state"] == "ready"

    def test_probe_answers_during_drain(self, device):
        """A held session parks the drain; the probe answers meanwhile."""
        clip = _big_clip(name="drainstats", frames=96, seed=23)
        media = _media_server(clip)

        async def run():
            server = AnnotationStreamServer(
                media, queue_depth=1, drain_timeout_s=10.0
            )
            await server.start()
            address = server.address
            # Hold a session open: read the session record, then stop
            # draining the socket so the producer parks on backpressure.
            holder = _client(device)
            request = holder._player.request(clip.name, QUALITY)
            reader, writer = await asyncio.open_connection(*address)
            writer.write(encode_packet_bytes(encode_hello(request)))
            await writer.drain()
            await reader.readexactly(32)
            drain_task = asyncio.create_task(server.drain())
            for _ in range(100):
                if server.state == "draining":
                    break
                await asyncio.sleep(0.01)
            payload = await fetch_stats(*address, include_events=True)
            writer.transport.abort()  # release the held session
            await drain_task
            return payload

        payload = asyncio.run(run())
        assert payload["health"]["state"] == "draining"
        assert payload["health"]["accepting"] is False
        kinds = [e["kind"] for e in payload["events"]]
        assert "drain_begin" in kinds

    def test_probe_limit_caps_events_and_spans(self, device):
        clip = _clip(name="limitclip")
        media = _media_server(clip)

        async def run():
            async with AnnotationStreamServer(media) as server:
                await _client(device).fetch(*server.address, clip.name, QUALITY)
                return await fetch_stats(
                    *server.address, include_events=True,
                    include_spans=True, limit=2,
                )

        payload = asyncio.run(run())
        assert len(payload["events"]) <= 2
        assert len(payload["spans"]) <= 2


class TestLatencyStatsModel:
    def test_from_arrivals_counts_late_frames(self):
        # playback anchored at the first arrival; frame i due i/fps later
        stats = LatencyStats.from_arrivals(
            10.0, [10.5, 10.52, 10.5 + 2 / 24 + 0.01], fps=24.0
        )
        assert stats.ttff_s == pytest.approx(0.5)
        assert stats.frame_count == 3
        # frame 2 was due at 10.5 + 2/24 but arrived 10 ms later
        assert stats.deadline_misses == 1

    def test_from_arrivals_empty_returns_none(self):
        assert LatencyStats.from_arrivals(0.0, [], fps=24.0) is None

    def test_from_arrivals_rejects_bad_fps(self):
        with pytest.raises(ValueError):
            LatencyStats.from_arrivals(0.0, [1.0], fps=0.0)

    def test_gaps_measured_between_consecutive_frames(self):
        stats = LatencyStats.from_arrivals(
            0.0, [1.0, 1.01, 1.03], fps=1000.0
        )
        assert stats.mean_gap_s == pytest.approx(0.015)
        assert stats.max_gap_s == pytest.approx(0.02)


class TestSessionRequestPlumbing:
    def test_reference_stream_unaffected_by_tracing(self, device):
        """In-process serving (no wire) emits no net.* spans."""
        clip = _clip(name="localclip")
        media = _media_server(clip)
        request = SessionRequest(
            clip.name, QUALITY, ClientCapabilities("ipaq5555")
        )
        list(media.stream(media.open_session(request)))
        names = {e["name"] for e in span_events()}
        assert not any(name.startswith("net.") for name in names)


class TestStatsMessages:
    def test_stats_request_roundtrip(self):
        from repro.net import decode_packet, encode_stats_request
        from repro.net.messages import decode_control

        packet = decode_packet(
            __import__("repro.net", fromlist=["encode_packet_bytes"])
            .encode_packet_bytes(encode_stats_request(
                format="prometheus", include_events=True,
                include_spans=True, limit=16,
            ))
        )
        message = decode_control(packet)
        assert message.kind == "stats"
        req = message.stats
        assert req.format == "prometheus"
        assert req.include_events and req.include_spans
        assert req.limit == 16

    def test_stats_request_validates_format_and_limit(self):
        from repro.net import encode_stats_request

        with pytest.raises(ValueError):
            encode_stats_request(format="xml")
        with pytest.raises(ValueError):
            encode_stats_request(limit=-1)

    def test_statsdump_roundtrip(self):
        from repro.net import encode_packet_bytes, decode_packet, encode_statsdump
        from repro.net.messages import decode_control

        payload = {"health": {"state": "ready"}, "metrics": {"metrics": []}}
        packet = decode_packet(encode_packet_bytes(encode_statsdump(payload)))
        message = decode_control(packet)
        assert message.kind == "statsdump"
        assert message.statsdump == payload

    def test_hello_carries_trace_ids(self, device):
        from repro.net import encode_packet_bytes, decode_packet, encode_hello
        from repro.net.messages import decode_control
        from repro.streaming import ClientCapabilities, SessionRequest

        request = SessionRequest("clip", 0.1, ClientCapabilities("ipaq5555"))
        packet = decode_packet(encode_packet_bytes(encode_hello(
            request, trace_id="ab" * 16, parent_span_id="cd" * 8,
        )))
        hello = decode_control(packet).hello
        assert hello.trace_id == "ab" * 16
        assert hello.parent_span_id == "cd" * 8
        # ids are optional: an untraced hello decodes with None ids
        bare = decode_control(
            decode_packet(encode_packet_bytes(encode_hello(request)))
        ).hello
        assert bare.trace_id is None and bare.parent_span_id is None
