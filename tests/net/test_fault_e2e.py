"""End-to-end robustness: fetch through a lossy relay, bit-identical result.

The acceptance scenario of the wire transport: a clip streamed over a
real socket through :class:`LossyTransport` — injecting drops, delays,
corruption and truncation — must, after the client's retries, produce
exactly the packet sequence that in-process serving yields.  Faults are
seeded and budgeted, so every run is deterministic.
"""

import asyncio
import random

import numpy as np
import pytest

from repro.core import ProfileCache, SchemeParameters
from repro.net import (
    AnnotationStreamServer,
    AsyncMobileClient,
    FaultSpec,
    LossyTransport,
)
from repro.streaming import (
    ClientCapabilities,
    DEFAULT_WIRELESS,
    MediaServer,
    PacketType,
    SessionRequest,
)
from repro.video import ArrayClip

FAST_PARAMS = SchemeParameters(quality=0.05, min_scene_interval_frames=5)
QUALITY = 0.05


def _clip(name="lossyclip", frames=24, seed=11):
    pixels = np.random.default_rng(seed).integers(
        0, 256, size=(frames, 16, 12, 3), dtype=np.uint8
    )
    return ArrayClip(pixels, fps=24.0, name=name)


def _media_server(clip):
    server = MediaServer(
        params=FAST_PARAMS, profile_cache=ProfileCache(max_entries=4)
    )
    server.add_clip(clip)
    return server


def _reference(media, clip_name):
    request = SessionRequest(clip_name, QUALITY, ClientCapabilities("ipaq5555"))
    return list(media.stream(media.open_session(request)))


def _client(device, max_retries=8):
    return AsyncMobileClient(
        device,
        max_retries=max_retries,
        backoff_base_s=0.01,
        backoff_max_s=0.05,
        jitter_s=0.0,
        rng=random.Random(0),
    )


async def _fetch_through(media, spec, device, max_retries=8):
    async with AnnotationStreamServer(media) as server:
        async with LossyTransport(*server.address, spec=spec) as lossy:
            result = await _client(device, max_retries).fetch(
                *lossy.address, media.catalog()[0], QUALITY
            )
            return result, lossy.faults_injected


def _assert_bit_identical(fetched, reference):
    assert len(fetched) == len(reference)
    for got, ref in zip(fetched, reference):
        assert got.ptype is ref.ptype
        assert got.seq == ref.seq
        if ref.ptype is PacketType.ANNOTATION:
            assert got.payload == ref.payload
        elif ref.ptype is PacketType.FRAME:
            assert got.frame_index == ref.frame_index
            assert got.wire_bytes == ref.wire_bytes
            assert np.array_equal(got.frame.pixels, ref.frame.pixels)


class TestLossyEndToEnd:
    def test_drops_delays_corruption_truncation_all_recovered(self, device):
        """The full acceptance run: every fault family at once, plus the
        802.11b hop's (scaled) store-and-forward delay."""
        media = _media_server(_clip())
        reference = _reference(media, "lossyclip")
        spec = FaultSpec.from_link(
            DEFAULT_WIRELESS,
            drop_rate=0.05,
            corrupt_rate=0.05,
            truncate_rate=0.02,
            max_faults=6,
            seed=3,
            time_scale=1e-5,
        )
        result, faults = asyncio.run(_fetch_through(media, spec, device))
        assert faults > 0, "the seed must actually exercise faults"
        assert result.attempts > 1, "at least one retry must have happened"
        _assert_bit_identical(result.packets, reference)

    def test_delay_only_link_is_transparent(self, device):
        media = _media_server(_clip())
        reference = _reference(media, "lossyclip")
        spec = FaultSpec.from_link(DEFAULT_WIRELESS, time_scale=1e-5)
        result, faults = asyncio.run(_fetch_through(media, spec, device))
        assert faults == 0
        assert result.attempts == 1
        _assert_bit_identical(result.packets, reference)

    def test_single_drop_detected_and_retried(self, device):
        media = _media_server(_clip())
        reference = _reference(media, "lossyclip")
        spec = FaultSpec(drop_rate=1.0, max_faults=1)
        result, faults = asyncio.run(_fetch_through(media, spec, device))
        assert faults == 1
        assert result.attempts == 2
        _assert_bit_identical(result.packets, reference)

    def test_single_corruption_detected_and_retried(self, device):
        media = _media_server(_clip())
        reference = _reference(media, "lossyclip")
        spec = FaultSpec(corrupt_rate=1.0, max_faults=1)
        result, faults = asyncio.run(_fetch_through(media, spec, device))
        assert faults == 1
        assert result.attempts == 2
        _assert_bit_identical(result.packets, reference)

    def test_single_truncation_detected_and_retried(self, device):
        media = _media_server(_clip())
        reference = _reference(media, "lossyclip")
        spec = FaultSpec(truncate_rate=1.0, max_faults=1)
        result, faults = asyncio.run(_fetch_through(media, spec, device))
        assert faults == 1
        assert result.attempts == 2
        _assert_bit_identical(result.packets, reference)

    def test_fault_budget_guarantees_convergence(self, device):
        """rate=1.0 would fault forever; the budget caps injection at
        exactly ``max_faults``, after which the relay is transparent and
        the retrying client converges."""
        media = _media_server(_clip())
        reference = _reference(media, "lossyclip")
        spec = FaultSpec(drop_rate=1.0, max_faults=3)
        result, faults = asyncio.run(_fetch_through(media, spec, device))
        assert faults == 3
        assert result.attempts >= 2
        _assert_bit_identical(result.packets, reference)

    def test_playback_of_lossy_fetch_matches_local(self, device):
        """Compensated playback — the paper's actual deliverable — is
        unchanged by the lossy wire."""
        from repro.streaming.client import MobileClient

        media = _media_server(_clip(frames=30))
        reference = _reference(media, "lossyclip")
        spec = FaultSpec(corrupt_rate=0.1, max_faults=2, seed=5)

        async def run():
            async with AnnotationStreamServer(media) as server:
                async with LossyTransport(*server.address, spec=spec) as lossy:
                    client = _client(device)
                    fetched = await client.fetch(
                        *lossy.address, "lossyclip", QUALITY
                    )
                    return client, fetched

        client, fetched = asyncio.run(run())
        request = SessionRequest(
            "lossyclip", QUALITY, ClientCapabilities("ipaq5555")
        )
        local = MobileClient(device).play_stream(
            media.open_session(request), reference
        )
        wire = client.play(fetched)
        assert wire.total_savings == pytest.approx(local.total_savings)
        assert np.array_equal(wire.applied_levels, local.applied_levels)


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(corrupt_rate=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(delay_s=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(max_faults=-1)

    def test_from_link_derives_delays(self):
        spec = FaultSpec.from_link(DEFAULT_WIRELESS, time_scale=0.5)
        assert spec.delay_s == pytest.approx(DEFAULT_WIRELESS.latency_s * 0.5)
        assert spec.delay_per_byte_s == pytest.approx(
            8.0 / DEFAULT_WIRELESS.bandwidth_bps * 0.5
        )

    def test_from_link_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            FaultSpec.from_link(DEFAULT_WIRELESS, time_scale=-1.0)

    def test_transport_address_requires_start(self):
        transport = LossyTransport("127.0.0.1", 1)
        with pytest.raises(RuntimeError):
            transport.address
