"""Tests for the asyncio wire transport (:mod:`repro.net`)."""
