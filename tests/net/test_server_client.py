"""AnnotationStreamServer + AsyncMobileClient over real sockets.

Everything runs against ``127.0.0.1`` with OS-assigned ports inside
``asyncio.run`` (no event-loop plugin needed).  The central claim: a
stream fetched over TCP is bit-identical to the same session served
in-process by :meth:`MediaServer.stream`.
"""

import asyncio
import random

import numpy as np
import pytest

from repro.core import ProfileCache, SchemeParameters
from repro.net import (
    AnnotationStreamServer,
    AsyncMobileClient,
    StreamFetchError,
    encode_packet_bytes,
)
from repro.net.messages import decode_control, encode_end
from repro.streaming import (
    ClientCapabilities,
    MediaServer,
    PacketType,
    SessionRequest,
)
from repro.streaming.session import NegotiationError
from repro.telemetry import registry
from repro.video import ArrayClip

FAST_PARAMS = SchemeParameters(quality=0.05, min_scene_interval_frames=5)
QUALITY = 0.05


def _clip(name="wireclip", frames=24, height=16, width=12, seed=0):
    pixels = np.random.default_rng(seed).integers(
        0, 256, size=(frames, height, width, 3), dtype=np.uint8
    )
    return ArrayClip(pixels, fps=24.0, name=name)


def _media_server(*clips):
    server = MediaServer(
        params=FAST_PARAMS, profile_cache=ProfileCache(max_entries=8)
    )
    for clip in clips:
        server.add_clip(clip)
    return server


def _reference_packets(media, clip_name, quality=QUALITY):
    request = SessionRequest(clip_name, quality, ClientCapabilities("ipaq5555"))
    return list(media.stream(media.open_session(request)))


def _client(device, **kwargs):
    kwargs.setdefault("rng", random.Random(0))
    kwargs.setdefault("backoff_base_s", 0.01)
    kwargs.setdefault("backoff_max_s", 0.05)
    kwargs.setdefault("jitter_s", 0.0)
    return AsyncMobileClient(device, **kwargs)


def _assert_streams_identical(fetched, reference):
    assert len(fetched) == len(reference)
    for got, ref in zip(fetched, reference):
        assert got.ptype is ref.ptype
        assert got.seq == ref.seq
        if ref.ptype is PacketType.ANNOTATION:
            assert got.payload == ref.payload
        elif ref.ptype is PacketType.FRAME:
            assert got.frame_index == ref.frame_index
            assert got.wire_bytes == ref.wire_bytes
            assert np.array_equal(got.frame.pixels, ref.frame.pixels)


class TestFetch:
    def test_wire_stream_bit_identical_to_in_process(self, device):
        media = _media_server(_clip())
        reference = _reference_packets(media, "wireclip")

        async def run():
            async with AnnotationStreamServer(media) as server:
                return await _client(device).fetch(
                    *server.address, "wireclip", QUALITY
                )

        fetched = asyncio.run(run())
        assert fetched.attempts == 1
        _assert_streams_identical(fetched.packets, reference)
        assert fetched.frame_count == sum(
            1 for p in reference if p.ptype is PacketType.FRAME
        )

    def test_session_description_travels_intact(self, device):
        media = _media_server(_clip())

        async def run():
            async with AnnotationStreamServer(media) as server:
                return await _client(device).fetch(
                    *server.address, "wireclip", QUALITY
                )

        session = asyncio.run(run()).session
        assert session.clip_name == "wireclip"
        assert session.quality == pytest.approx(QUALITY)
        assert session.device_name == "ipaq5555"
        assert session.frame_count == 24
        assert session.fps == pytest.approx(24.0)

    def test_fetched_stream_plays_like_local_stream(self, device):
        media = _media_server(_clip(frames=30))
        reference = _reference_packets(media, "wireclip")

        async def run():
            async with AnnotationStreamServer(media) as server:
                client = _client(device)
                fetched = await client.fetch(*server.address, "wireclip", QUALITY)
                return client, fetched

        client, fetched = asyncio.run(run())
        from repro.streaming.client import MobileClient

        request = SessionRequest("wireclip", QUALITY, ClientCapabilities("ipaq5555"))
        local = MobileClient(device).play_stream(
            media.open_session(request), reference
        )
        wire = client.play(fetched)
        assert wire.total_savings == pytest.approx(local.total_savings)

    def test_concurrent_sessions_all_bit_identical(self, device):
        clips = [_clip(name=f"clip{i}", seed=i) for i in range(4)]
        media = _media_server(*clips)
        references = {c.name: _reference_packets(media, c.name) for c in clips}

        async def run():
            async with AnnotationStreamServer(media) as server:
                fetches = [
                    _client(device).fetch(*server.address, c.name, QUALITY)
                    for c in clips for _ in range(2)  # 8 concurrent sessions
                ]
                return await asyncio.gather(*fetches)

        results = asyncio.run(run())
        assert len(results) == 8
        for result in results:
            _assert_streams_identical(
                result.packets, references[result.session.clip_name]
            )
        gauge = registry().get("repro_net_active_sessions")
        assert gauge is not None and gauge.value == 0

    def test_tiny_send_queue_still_bit_identical(self, device):
        """queue_depth=1 exercises the producer parking on every record."""
        media = _media_server(_clip())
        reference = _reference_packets(media, "wireclip")

        async def run():
            async with AnnotationStreamServer(media, queue_depth=1) as server:
                return await _client(device).fetch(
                    *server.address, "wireclip", QUALITY
                )

        _assert_streams_identical(asyncio.run(run()).packets, reference)
        hist = registry().get("repro_net_send_queue_depth")
        assert hist is not None and hist.count > 0 and hist.max <= 1


class TestNegotiation:
    def test_unknown_clip_rejected_without_retry(self, device):
        media = _media_server(_clip())

        async def run():
            async with AnnotationStreamServer(media) as server:
                await _client(device).fetch(*server.address, "nosuch", QUALITY)

        with pytest.raises(NegotiationError):
            asyncio.run(run())
        retries = registry().get("repro_net_client_retries_total")
        assert retries is None or retries.value == 0
        rejects = registry().get("repro_net_rejected_sessions_total")
        assert rejects is not None and rejects.value == 1

    def test_garbage_hello_answered_with_error_record(self, device):
        media = _media_server(_clip())

        async def run():
            async with AnnotationStreamServer(media) as server:
                reader, writer = await asyncio.open_connection(*server.address)
                writer.write(b"\x00" * 64)  # not a wire record
                await writer.drain()
                from repro.net.codec import read_packet

                packet = await asyncio.wait_for(read_packet(reader), timeout=5.0)
                writer.close()
                return packet

        packet = asyncio.run(run())
        message = decode_control(packet)
        assert message.kind == "error"

    def test_wrong_first_message_kind_rejected(self, device):
        media = _media_server(_clip())

        async def run():
            async with AnnotationStreamServer(media) as server:
                reader, writer = await asyncio.open_connection(*server.address)
                # A structurally valid record, but not a hello.
                writer.write(encode_packet_bytes(encode_end(1, 1, seq=0)))
                await writer.drain()
                from repro.net.codec import read_packet

                packet = await asyncio.wait_for(read_packet(reader), timeout=5.0)
                writer.close()
                return packet

        message = decode_control(asyncio.run(run()))
        assert message.kind == "error"
        assert "hello" in message.error

    def test_idle_connection_reaped_by_hello_timeout(self, device):
        media = _media_server(_clip())

        async def run():
            async with AnnotationStreamServer(
                media, hello_timeout_s=0.2
            ) as server:
                reader, writer = await asyncio.open_connection(*server.address)
                data = await asyncio.wait_for(reader.read(), timeout=5.0)
                writer.close()
                return data

        assert asyncio.run(run()) == b""  # server hung up, sent nothing
        rejects = registry().get("repro_net_rejected_sessions_total")
        assert rejects is not None and rejects.value == 1


class TestRobustness:
    def test_connection_refused_exhausts_retries(self, device):
        async def run():
            # Bind-then-close guarantees a dead port.
            server = await asyncio.start_server(
                lambda r, w: None, host="127.0.0.1", port=0
            )
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            client = _client(device, max_retries=2)
            await client.fetch("127.0.0.1", port, "wireclip", QUALITY)

        with pytest.raises(StreamFetchError):
            asyncio.run(run())
        retries = registry().get("repro_net_client_retries_total")
        assert retries is not None and retries.value == 2

    def test_abrupt_client_disconnect_cleans_up_server(self, device):
        media = _media_server(_clip(frames=90, height=48, width=36))

        async def run():
            async with AnnotationStreamServer(media, queue_depth=2) as server:
                client = _client(device)
                request = client._player.request("wireclip", QUALITY)
                from repro.net.messages import encode_hello

                reader, writer = await asyncio.open_connection(*server.address)
                writer.write(encode_packet_bytes(encode_hello(request)))
                await writer.drain()
                await reader.readexactly(32)  # session header arrives...
                writer.transport.abort()  # ...then the client vanishes
                # The session task must notice and tear down: gauge back
                # to zero within a bounded wait.
                gauge = registry().get("repro_net_active_sessions")
                for _ in range(200):
                    if gauge.value == 0:
                        return True
                    await asyncio.sleep(0.05)
                return False

        assert asyncio.run(run()), "session did not clean up after abort"
        disconnects = registry().get("repro_net_disconnects_total")
        assert disconnects is not None and disconnects.value >= 1

    def test_server_survives_disconnect_and_serves_next_client(self, device):
        media = _media_server(_clip())
        reference = _reference_packets(media, "wireclip")

        async def run():
            async with AnnotationStreamServer(media) as server:
                reader, writer = await asyncio.open_connection(*server.address)
                writer.transport.abort()
                return await _client(device).fetch(
                    *server.address, "wireclip", QUALITY
                )

        _assert_streams_identical(asyncio.run(run()).packets, reference)


class TestClientParameters:
    def test_backoff_grows_and_caps(self, device):
        client = AsyncMobileClient(
            device, backoff_base_s=0.1, backoff_max_s=0.5, jitter_s=0.0
        )
        delays = [client.backoff_s(k) for k in range(6)]
        assert delays[0] == pytest.approx(0.1)
        assert delays == sorted(delays)
        assert delays[-1] == pytest.approx(0.5)

    def test_jitter_is_seedable(self, device):
        a = AsyncMobileClient(device, rng=random.Random(7))
        b = AsyncMobileClient(device, rng=random.Random(7))
        assert [a.backoff_s(k) for k in range(4)] == [
            b.backoff_s(k) for k in range(4)
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"connect_timeout_s": 0},
            {"read_timeout_s": -1},
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
            {"jitter_s": -0.1},
        ],
    )
    def test_invalid_parameters_rejected(self, device, kwargs):
        with pytest.raises(ValueError):
            AsyncMobileClient(device, **kwargs)


class TestServerParameters:
    def test_invalid_queue_depth_rejected(self):
        with pytest.raises(ValueError):
            AnnotationStreamServer(_media_server(_clip()), queue_depth=0)

    def test_invalid_hello_timeout_rejected(self):
        with pytest.raises(ValueError):
            AnnotationStreamServer(_media_server(_clip()), hello_timeout_s=0)

    def test_port_requires_started_server(self):
        server = AnnotationStreamServer(_media_server(_clip()))
        with pytest.raises(RuntimeError):
            server.port

    def test_double_start_rejected(self):
        async def run():
            async with AnnotationStreamServer(_media_server(_clip())) as server:
                with pytest.raises(RuntimeError):
                    await server.start()

        asyncio.run(run())
