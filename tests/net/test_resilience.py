"""Operational resilience: admission control, session resume, graceful drain.

The acceptance scenarios of the resilience layer, all seeded and
deterministic:

* a session interrupted mid-stream by a killed connection resumes via
  its token and yields **byte-identical** frame payloads to an
  uninterrupted run;
* a server at ``max_sessions`` sheds load with ``busy`` and the client
  backs off and eventually completes;
* ``drain()`` completes in-flight sessions within the deadline and
  sheds new work while draining;
* ``health`` probes answer readiness without consuming admission slots;
* the client's circuit breaker fails fast after repeated failures.
"""

import asyncio
import random
import time

import numpy as np
import pytest

from repro.core import ProfileCache, SchemeParameters
from repro.net import (
    AnnotationStreamServer,
    AsyncMobileClient,
    CircuitBreaker,
    CircuitOpenError,
    FaultSpec,
    LossyTransport,
    StreamFetchError,
    encode_packet_bytes,
    fetch_status,
)
from repro.net.codec import read_packet
from repro.net.messages import decode_control, encode_hello, encode_resume
from repro.streaming import (
    ClientCapabilities,
    MediaServer,
    PacketType,
    SessionRequest,
)
from repro.streaming.session import NegotiationError
from repro.telemetry import registry
from repro.video import ArrayClip

FAST_PARAMS = SchemeParameters(quality=0.05, min_scene_interval_frames=5)
QUALITY = 0.05


def _clip(name="resumeclip", frames=24, height=16, width=12, seed=5):
    pixels = np.random.default_rng(seed).integers(
        0, 256, size=(frames, height, width, 3), dtype=np.uint8
    )
    return ArrayClip(pixels, fps=24.0, name=name)


def _big_clip(name="bigclip", frames=60, seed=5):
    """A clip too large for loopback socket buffers to swallow whole,
    so the server is provably mid-stream when the relay kills the
    connection."""
    return _clip(name=name, frames=frames, height=96, width=72, seed=seed)


def _huge_clip(name="hugeclip", seed=5):
    """A clip (~8 MB on the wire) that cannot fit in kernel socket
    buffers, so a non-reading holder provably parks the session on
    backpressure for the drain tests."""
    return _clip(name=name, frames=96, height=192, width=144, seed=seed)


def _media_server(*clips):
    server = MediaServer(
        params=FAST_PARAMS, profile_cache=ProfileCache(max_entries=8)
    )
    for clip in clips:
        server.add_clip(clip)
    return server


def _reference(media, clip_name, quality=QUALITY):
    request = SessionRequest(clip_name, quality, ClientCapabilities("ipaq5555"))
    return list(media.stream(media.open_session(request)))


def _client(device, **kwargs):
    kwargs.setdefault("rng", random.Random(0))
    kwargs.setdefault("backoff_base_s", 0.02)
    kwargs.setdefault("backoff_max_s", 0.1)
    kwargs.setdefault("jitter_s", 0.0)
    return AsyncMobileClient(device, **kwargs)


def _assert_streams_identical(fetched, reference):
    assert len(fetched) == len(reference)
    for got, ref in zip(fetched, reference):
        assert got.ptype is ref.ptype
        assert got.seq == ref.seq
        if ref.ptype is PacketType.ANNOTATION:
            assert got.payload == ref.payload
        elif ref.ptype is PacketType.FRAME:
            assert got.frame_index == ref.frame_index
            assert got.wire_bytes == ref.wire_bytes
            assert np.array_equal(got.frame.pixels, ref.frame.pixels)


def _counter(name):
    metric = registry().get(name)
    return metric.value if metric is not None else 0


class TestSessionResume:
    def test_killed_connection_resumes_byte_identical(self, device):
        """The tentpole e2e: kill mid-stream, resume via token, compare."""
        clip = _big_clip()
        media = _media_server(clip)
        reference = _reference(media, clip.name)

        async def run():
            async with AnnotationStreamServer(media, queue_depth=4) as server:
                spec = FaultSpec(kill_after_records=5, max_faults=1, seed=3)
                async with LossyTransport(*server.address, spec) as lossy:
                    client = _client(device, backoff_base_s=0.2, max_retries=4)
                    return await client.fetch(*lossy.address, clip.name, QUALITY)

        fetched = asyncio.run(run())
        assert fetched.attempts == 2
        assert fetched.resumes == 1
        _assert_streams_identical(fetched.packets, reference)
        assert _counter("repro_net_resumed_sessions_total") == 1
        assert _counter("repro_net_client_resumes_total") == 1

    def test_repeated_kills_resume_until_converged(self, device):
        clip = _big_clip(name="bigclip2", seed=9)
        media = _media_server(clip)
        reference = _reference(media, clip.name)

        async def run():
            async with AnnotationStreamServer(media, queue_depth=4) as server:
                spec = FaultSpec(kill_after_records=4, max_faults=3, seed=3)
                async with LossyTransport(*server.address, spec) as lossy:
                    client = _client(device, backoff_base_s=0.2, max_retries=8)
                    return await client.fetch(*lossy.address, clip.name, QUALITY)

        fetched = asyncio.run(run())
        assert fetched.attempts == 4
        assert fetched.resumes == 3
        _assert_streams_identical(fetched.packets, reference)

    def test_resume_disabled_falls_back_to_full_refetch(self, device):
        """resume_window_s=0 issues no tokens; retries refetch from scratch
        and the result is still byte-identical."""
        clip = _big_clip(name="bigclip3", seed=13)
        media = _media_server(clip)
        reference = _reference(media, clip.name)

        async def run():
            async with AnnotationStreamServer(
                media, queue_depth=4, resume_window_s=0.0
            ) as server:
                spec = FaultSpec(kill_after_records=5, max_faults=1, seed=3)
                async with LossyTransport(*server.address, spec) as lossy:
                    client = _client(device, backoff_base_s=0.2, max_retries=4)
                    return await client.fetch(*lossy.address, clip.name, QUALITY)

        fetched = asyncio.run(run())
        assert fetched.attempts == 2
        assert fetched.resumes == 0
        _assert_streams_identical(fetched.packets, reference)

    def test_client_resume_opt_out(self, device):
        """resume=False ignores server tokens and refetches from scratch."""
        clip = _big_clip(name="bigclip4", seed=17)
        media = _media_server(clip)
        reference = _reference(media, clip.name)

        async def run():
            async with AnnotationStreamServer(media, queue_depth=4) as server:
                spec = FaultSpec(kill_after_records=5, max_faults=1, seed=3)
                async with LossyTransport(*server.address, spec) as lossy:
                    client = _client(
                        device, backoff_base_s=0.2, max_retries=4, resume=False
                    )
                    return await client.fetch(*lossy.address, clip.name, QUALITY)

        fetched = asyncio.run(run())
        assert fetched.resumes == 0
        _assert_streams_identical(fetched.packets, reference)

    def test_unknown_resume_token_answered_with_error(self, device):
        media = _media_server(_clip())

        async def run():
            async with AnnotationStreamServer(media) as server:
                reader, writer = await asyncio.open_connection(*server.address)
                writer.write(encode_packet_bytes(encode_resume("feedface", 0)))
                await writer.drain()
                packet = await asyncio.wait_for(read_packet(reader), timeout=5.0)
                writer.close()
                return packet

        message = decode_control(asyncio.run(run()))
        assert message.kind == "error"
        assert "resume token" in message.error

    def test_stall_fault_recovers_through_read_timeout(self, device):
        """A stalled relay trips the client's read timeout; the retry
        (resume or refetch) still converges byte-identically."""
        clip = _clip(name="stallclip", frames=30, seed=21)
        media = _media_server(clip)
        reference = _reference(media, clip.name)

        async def run():
            async with AnnotationStreamServer(media) as server:
                spec = FaultSpec(stall_rate=1.0, stall_s=1.0, max_faults=1, seed=3)
                async with LossyTransport(*server.address, spec) as lossy:
                    client = _client(
                        device, read_timeout_s=0.2, backoff_base_s=0.2,
                        max_retries=4,
                    )
                    return await client.fetch(*lossy.address, clip.name, QUALITY)

        fetched = asyncio.run(run())
        assert fetched.attempts == 2
        _assert_streams_identical(fetched.packets, reference)


class TestAdmissionControl:
    def test_load_shed_clients_back_off_and_complete(self, device):
        """At max_sessions with no accept queue, overflow connections get
        busy; retrying clients all eventually complete."""
        clip = _clip(name="shedclip", seed=29)
        media = _media_server(clip)
        reference = _reference(media, clip.name)

        async def run():
            async with AnnotationStreamServer(
                media, max_sessions=1, accept_queue=0,
                busy_retry_after_s=0.05,
            ) as server:
                clients = [
                    _client(device, rng=random.Random(i), max_retries=10,
                            jitter_s=0.02)
                    for i in range(4)
                ]
                return await asyncio.gather(*[
                    c.fetch(*server.address, clip.name, QUALITY)
                    for c in clients
                ])

        results = asyncio.run(run())
        assert len(results) == 4
        for fetched in results:
            _assert_streams_identical(fetched.packets, reference)
        assert _counter("repro_net_shed_sessions_total") >= 1
        assert _counter("repro_net_client_busy_total") >= 1
        # At least one client had to retry after a shed.
        assert any(r.attempts > 1 for r in results)

    def test_accept_queue_parks_overflow_without_shedding(self, device):
        """With an accept queue, over-cap connections wait for a slot and
        complete on their first attempt."""
        clip = _clip(name="queueclip", seed=31)
        media = _media_server(clip)
        reference = _reference(media, clip.name)

        async def run():
            async with AnnotationStreamServer(
                media, max_sessions=1, accept_queue=4,
            ) as server:
                clients = [
                    _client(device, rng=random.Random(i), max_retries=0)
                    for i in range(3)
                ]
                return await asyncio.gather(*[
                    c.fetch(*server.address, clip.name, QUALITY)
                    for c in clients
                ])

        results = asyncio.run(run())
        assert all(r.attempts == 1 for r in results)
        for fetched in results:
            _assert_streams_identical(fetched.packets, reference)
        assert _counter("repro_net_shed_sessions_total") == 0

    def test_single_shot_client_sees_busy_when_slot_held(self, device):
        """Deterministic shed: a raw connection holds the only slot; a
        no-retry fetch is shed with busy."""
        clip = _big_clip(name="holdclip", seed=37)
        media = _media_server(clip)

        async def run():
            async with AnnotationStreamServer(
                media, max_sessions=1, accept_queue=0, queue_depth=1,
            ) as server:
                holder = _client(device)
                request = holder._player.request(clip.name, QUALITY)
                reader, writer = await asyncio.open_connection(*server.address)
                writer.write(encode_packet_bytes(encode_hello(request)))
                await writer.drain()
                await reader.readexactly(32)  # session header: slot is held
                try:
                    with pytest.raises(StreamFetchError):
                        await _client(device, max_retries=0).fetch(
                            *server.address, clip.name, QUALITY
                        )
                finally:
                    writer.transport.abort()

        asyncio.run(run())
        assert _counter("repro_net_shed_sessions_total") == 1
        assert _counter("repro_net_client_busy_total") == 1

    def test_negotiation_rejection_still_authoritative_under_cap(self, device):
        media = _media_server(_clip(name="okclip"))

        async def run():
            async with AnnotationStreamServer(media, max_sessions=2) as server:
                await _client(device).fetch(*server.address, "nosuch", QUALITY)

        with pytest.raises(NegotiationError):
            asyncio.run(run())


class TestGracefulDrain:
    def test_drain_completes_in_flight_sessions(self, device):
        """drain() lets a running fetch finish and reports completion."""
        clip = _clip(name="drainclip", frames=36, seed=41)
        media = _media_server(clip)
        reference = _reference(media, clip.name)

        async def run():
            server = AnnotationStreamServer(media)
            await server.start()
            fetch = asyncio.create_task(
                _client(device).fetch(*server.address, clip.name, QUALITY)
            )
            await asyncio.sleep(0.05)  # let the session start
            completed = await server.drain(timeout_s=10.0)
            fetched = await fetch
            return completed, fetched, server.state

        completed, fetched, state = asyncio.run(run())
        assert completed is True
        assert state == "stopped"
        _assert_streams_identical(fetched.packets, reference)

    def test_drain_sheds_new_sessions_and_answers_health(self, device):
        """While draining: new hellos get busy, health probes still answer."""
        clip = _huge_clip(name="drainbig", seed=43)
        media = _media_server(clip)

        async def run():
            server = AnnotationStreamServer(
                media, queue_depth=1, drain_timeout_s=10.0
            )
            await server.start()
            address = server.address
            # Hold a session open: read the session record, then stop
            # draining the socket so the producer parks on backpressure.
            holder = _client(device)
            request = holder._player.request(clip.name, QUALITY)
            reader, writer = await asyncio.open_connection(*address)
            writer.write(encode_packet_bytes(encode_hello(request)))
            await writer.drain()
            await reader.readexactly(32)
            drain_task = asyncio.create_task(server.drain())
            for _ in range(100):
                if server.state == "draining":
                    break
                await asyncio.sleep(0.01)
            status = await fetch_status(*address)
            with pytest.raises(StreamFetchError):
                await _client(device, max_retries=0).fetch(
                    *address, clip.name, QUALITY
                )
            writer.transport.abort()  # release the held session
            completed = await drain_task
            return status, completed, server.state

        status, completed, state = asyncio.run(run())
        assert status.state == "draining"
        assert status.accepting is False
        assert completed is True
        assert state == "stopped"
        assert _counter("repro_net_client_busy_total") == 1

    def test_drain_deadline_cancels_stragglers(self, device):
        clip = _huge_clip(name="straggler", seed=47)
        media = _media_server(clip)

        async def run():
            server = AnnotationStreamServer(media, queue_depth=1)
            await server.start()
            holder = _client(device)
            request = holder._player.request(clip.name, QUALITY)
            reader, writer = await asyncio.open_connection(*server.address)
            writer.write(encode_packet_bytes(encode_hello(request)))
            await writer.drain()
            await reader.readexactly(32)  # session held open, never drained
            start = time.monotonic()
            completed = await server.drain(timeout_s=0.3)
            elapsed = time.monotonic() - start
            writer.close()
            return completed, elapsed, server.state

        completed, elapsed, state = asyncio.run(run())
        assert completed is False
        assert elapsed < 5.0
        assert state == "stopped"
        gauge = registry().get("repro_net_active_sessions")
        assert gauge is not None and gauge.value == 0

    def test_drain_idle_server_is_immediate(self, device):
        media = _media_server(_clip(name="idleclip"))

        async def run():
            server = AnnotationStreamServer(media)
            await server.start()
            return await server.drain(timeout_s=1.0)

        assert asyncio.run(run()) is True


class TestHealthProbe:
    def test_status_reflects_ready_server(self, device):
        media = _media_server(_clip(name="healthclip"))

        async def run():
            async with AnnotationStreamServer(media, max_sessions=3) as server:
                return await fetch_status(*server.address)

        status = asyncio.run(run())
        assert status.state == "ready"
        assert status.accepting is True
        assert status.active_sessions == 0
        assert status.max_sessions == 3
        assert _counter("repro_net_health_probes_total") == 1

    def test_healthz_snapshot_in_process(self, device):
        media = _media_server(_clip(name="healthzclip"))

        async def run():
            async with AnnotationStreamServer(media, max_sessions=2) as server:
                return server.healthz()

        health = asyncio.run(run())
        assert health["state"] == "ready"
        assert health["accepting"] is True
        assert health["max_sessions"] == 2
        assert health["resumable_sessions"] == 0

    def test_api_facade_status(self, device):
        from repro.api import StreamingService, server_status

        service = StreamingService(params=FAST_PARAMS)
        service.add_clip(_clip(name="facadeclip"))

        async def run():
            async with service.serve(max_sessions=5) as srv:
                return await server_status(*srv.address)

        status = asyncio.run(run())
        assert status.accepting is True
        assert status.max_sessions == 5


class TestCircuitBreaker:
    def test_trips_after_threshold_and_resets(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, reset_after_s=10.0, clock=lambda: clock[0]
        )
        breaker.before_attempt()  # closed: no raise
        breaker.record_failure()
        breaker.before_attempt()  # one failure: still closed
        breaker.record_failure()
        assert breaker.is_open
        with pytest.raises(CircuitOpenError):
            breaker.before_attempt()
        clock[0] = 10.1  # cooldown elapsed: half-open trial allowed
        breaker.before_attempt()
        breaker.record_success()
        assert not breaker.is_open
        assert breaker.consecutive_failures == 0

    def test_half_open_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=5.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        assert breaker.is_open
        clock[0] = 5.1
        breaker.before_attempt()  # trial
        breaker.record_failure()  # trial failed: open again
        with pytest.raises(CircuitOpenError):
            breaker.before_attempt()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after_s=-1.0)

    def test_client_fails_fast_once_open(self, device):
        """Against a dead port, the breaker aborts the retry loop and the
        next fetch fails immediately without touching the network."""
        breaker = CircuitBreaker(failure_threshold=2, reset_after_s=60.0)

        async def run():
            # Bind-then-close guarantees a dead port.
            server = await asyncio.start_server(
                lambda r, w: None, host="127.0.0.1", port=0
            )
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            client = _client(device, max_retries=6, circuit_breaker=breaker)
            with pytest.raises(CircuitOpenError):
                await client.fetch("127.0.0.1", port, "resumeclip", QUALITY)
            with pytest.raises(CircuitOpenError):
                await client.fetch("127.0.0.1", port, "resumeclip", QUALITY)

        asyncio.run(run())
        assert breaker.is_open
        assert _counter("repro_net_client_circuit_open_total") == 2


class TestServerParameters:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_sessions": 0},
            {"accept_queue": -1},
            {"accept_timeout_s": 0},
            {"busy_retry_after_s": -0.1},
            {"resume_window_s": -1.0},
            {"drain_timeout_s": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AnnotationStreamServer(_media_server(_clip()), **kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kill_rate": 1.5},
            {"stall_rate": -0.1},
            {"stall_s": -1.0},
            {"kill_after_records": -1},
        ],
    )
    def test_invalid_fault_spec_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)
