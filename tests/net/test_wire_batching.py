"""The coalesced (vectored) wire send path under faults.

The producer thread now encodes whole runs of records into one buffer
and the event loop writes each run with a single ``write`` + ``drain``
(see :class:`repro.net.server._WireBatch`).  Batching must be invisible
on the wire: the byte stream is the same record sequence, so the relay's
per-record fault injection — truncation mid-batch, stalls during a
coalesced flush, kills between records — and the client's resume
protocol keep working unchanged.  These tests prove byte-identical
delivery and clean resume through :class:`LossyTransport`, plus the
``first_byte_enqueued`` compute/wire latency split.
"""

import asyncio
import random

import numpy as np
import pytest

from repro.core import ProfileCache, SchemeParameters
from repro.net import (
    AnnotationStreamServer,
    AsyncMobileClient,
    FaultSpec,
    LossyTransport,
)
from repro.streaming import (
    ClientCapabilities,
    MediaServer,
    PacketType,
    SessionRequest,
)
from repro.telemetry import flight_events, span_events
from repro.video import ArrayClip

FAST_PARAMS = SchemeParameters(quality=0.05, min_scene_interval_frames=5)
QUALITY = 0.05


def _clip(name="batchclip", frames=40, seed=19):
    pixels = np.random.default_rng(seed).integers(
        0, 256, size=(frames, 16, 12, 3), dtype=np.uint8
    )
    return ArrayClip(pixels, fps=24.0, name=name)


def _media_server(clip, engine="chunked"):
    server = MediaServer(
        params=FAST_PARAMS,
        engine=engine,
        profile_cache=ProfileCache(max_entries=4),
    )
    server.add_clip(clip)
    return server


def _reference(media, clip_name):
    request = SessionRequest(clip_name, QUALITY, ClientCapabilities("ipaq5555"))
    return list(media.stream(media.open_session(request)))


def _client(device, max_retries=8):
    return AsyncMobileClient(
        device,
        max_retries=max_retries,
        backoff_base_s=0.01,
        backoff_max_s=0.05,
        jitter_s=0.0,
        rng=random.Random(0),
    )


async def _fetch_through(media, spec, device, max_retries=8, **server_kwargs):
    async with AnnotationStreamServer(media, **server_kwargs) as server:
        async with LossyTransport(*server.address, spec=spec) as lossy:
            result = await _client(device, max_retries).fetch(
                *lossy.address, media.catalog()[0], QUALITY
            )
            return result, lossy.faults_injected


async def _fetch_direct(media, device, **server_kwargs):
    async with AnnotationStreamServer(media, **server_kwargs) as server:
        return await _client(device).fetch(
            *server.address, media.catalog()[0], QUALITY
        )


def _assert_bit_identical(fetched, reference):
    assert len(fetched) == len(reference)
    for got, ref in zip(fetched, reference):
        assert got.ptype is ref.ptype
        assert got.seq == ref.seq
        if ref.ptype is PacketType.ANNOTATION:
            assert got.payload == ref.payload
        elif ref.ptype is PacketType.FRAME:
            assert got.frame_index == ref.frame_index
            assert got.wire_bytes == ref.wire_bytes
            assert np.array_equal(got.frame.pixels, ref.frame.pixels)


class TestBatchedWireUnderFaults:
    def test_truncation_mid_batch_recovers_byte_identical(self, device):
        """A record truncated out of the middle of a coalesced flush cuts
        the connection; the retried fetch must still be byte-identical."""
        media = _media_server(_clip())
        reference = _reference(media, "batchclip")
        spec = FaultSpec(truncate_rate=1.0, max_faults=1, seed=7)
        result, faults = asyncio.run(_fetch_through(media, spec, device))
        assert faults == 1
        assert result.attempts == 2
        _assert_bit_identical(result.packets, reference)

    def test_kill_mid_batch_resumes_cleanly(self, device):
        """Cutting the stream between records of a batched run exercises
        resume: the continuation replays exactly the missing tail, so the
        reassembled stream is byte-identical."""
        media = _media_server(_clip())
        reference = _reference(media, "batchclip")
        spec = FaultSpec(kill_after_records=7, max_faults=2, seed=7)
        result, faults = asyncio.run(_fetch_through(media, spec, device))
        assert faults == 2
        assert result.attempts == 3
        assert result.resumes >= 1, "the retries must use the resume token"
        _assert_bit_identical(result.packets, reference)

    def test_stall_during_coalesced_flush_completes(self, device):
        """A relay stall in the middle of a flushed batch backpressures
        the sender but must not corrupt or drop anything."""
        media = _media_server(_clip())
        reference = _reference(media, "batchclip")
        spec = FaultSpec(stall_rate=1.0, stall_s=0.05, max_faults=3, seed=7)
        result, faults = asyncio.run(_fetch_through(media, spec, device))
        assert faults == 3
        assert result.attempts == 1, "stalls are delays, not failures"
        _assert_bit_identical(result.packets, reference)

    def test_single_record_batches_match_default(self, device):
        """``batch_records=1`` degenerates to the pre-batching wire
        behavior; the delivered stream is the same either way."""
        media = _media_server(_clip())
        reference = _reference(media, "batchclip")
        result = asyncio.run(_fetch_direct(media, device, batch_records=1))
        assert result.attempts == 1
        _assert_bit_identical(result.packets, reference)

    def test_tiny_byte_threshold_flushes_every_record(self, device):
        media = _media_server(_clip())
        reference = _reference(media, "batchclip")
        result = asyncio.run(_fetch_direct(media, device, batch_bytes=1))
        _assert_bit_identical(result.packets, reference)

    def test_perframe_engine_rides_the_batched_path(self, device):
        media = _media_server(_clip(), engine="perframe")
        reference = _reference(media, "batchclip")
        result = asyncio.run(_fetch_direct(media, device))
        _assert_bit_identical(result.packets, reference)

    def test_single_compute_slot_serializes_without_corruption(self, device):
        """``compute_slots=1`` fully serializes the CPU-bound stage across
        sessions; concurrent fetches must still each get the byte-exact
        stream."""
        media = _media_server(_clip())
        reference = _reference(media, "batchclip")

        async def fleet():
            async with AnnotationStreamServer(
                media, compute_slots=1
            ) as server:
                return await asyncio.gather(*[
                    _client(device).fetch(
                        *server.address, "batchclip", QUALITY
                    )
                    for _ in range(3)
                ])

        for result in asyncio.run(fleet()):
            _assert_bit_identical(result.packets, reference)


class TestBatchConfig:
    def test_thresholds_validated(self):
        media = _media_server(_clip())
        with pytest.raises(ValueError):
            AnnotationStreamServer(media, batch_records=0)
        with pytest.raises(ValueError):
            AnnotationStreamServer(media, batch_bytes=0)

    def test_compute_slots_validated_and_defaulted(self):
        media = _media_server(_clip())
        with pytest.raises(ValueError):
            AnnotationStreamServer(media, compute_slots=0)
        assert AnnotationStreamServer(media).compute_slots >= 1
        assert AnnotationStreamServer(media, compute_slots=2).compute_slots == 2


class TestFirstByteEnqueued:
    def test_span_and_event_split_compute_from_wire(self, device):
        """Every session emits the compute-side latency marker: a
        ``net.first_byte_enqueued`` span nested in the session's trace
        and a flight-recorder event carrying ``compute_s``."""
        media = _media_server(_clip())
        result = asyncio.run(_fetch_direct(media, device))
        spans = [
            s for s in span_events() if s["name"] == "net.first_byte_enqueued"
        ]
        assert len(spans) == 1
        assert spans[0]["trace_id"] == result.trace_id
        assert 0.0 <= spans[0]["duration_s"] <= result.latency.ttff_s
        events = [
            e for e in flight_events() if e["kind"] == "first_byte_enqueued"
        ]
        assert len(events) == 1
        assert events[0]["compute_s"] == pytest.approx(
            spans[0]["duration_s"]
        )
