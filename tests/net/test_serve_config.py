"""The config-object API: ServeConfig / FetchOptions, shims, portable tokens.

Pins the redesigned serve/fetch surface:

* :class:`~repro.net.config.ServeConfig` validates once, is frozen and
  picklable, and parameterizes the server exactly like the old kwargs;
* the legacy loose-kwarg spellings still work but emit
  ``DeprecationWarning`` (the shim this suite pins in place);
* :class:`~repro.net.config.FetchOptions` is the one definition behind
  the facade fetch family;
* portable resume tokens round-trip, reject tampering, and let a
  *different* server process adopt a session and replay it
  byte-identically — the fleet failover primitive.
"""

import asyncio
import pickle
import random

import numpy as np
import pytest

from repro.api import StreamingService, fetch_stream_sync
from repro.core import ProfileCache, SchemeParameters
from repro.net import (
    AnnotationStreamServer,
    FetchOptions,
    ServeConfig,
    decode_portable_token,
    encode_portable_token,
    encode_packet_bytes,
)
from repro.net.codec import read_packet
from repro.net.messages import decode_control, encode_hello, encode_resume
from repro.streaming import (
    ClientCapabilities,
    MediaServer,
    PacketType,
    SessionRequest,
)
from repro.telemetry import registry
from repro.video import ArrayClip

FAST_PARAMS = SchemeParameters(quality=0.05, min_scene_interval_frames=5)
QUALITY = 0.05


def _clip(name="configclip", frames=24, height=16, width=12, seed=11):
    pixels = np.random.default_rng(seed).integers(
        0, 256, size=(frames, height, width, 3), dtype=np.uint8
    )
    return ArrayClip(pixels, fps=24.0, name=name)


def _media_server(*clips):
    server = MediaServer(
        params=FAST_PARAMS, profile_cache=ProfileCache(max_entries=8)
    )
    for clip in clips:
        server.add_clip(clip)
    return server


def _reference(media, clip_name, quality=QUALITY):
    request = SessionRequest(clip_name, quality, ClientCapabilities("ipaq5555"))
    return list(media.stream(media.open_session(request)))


class TestServeConfig:
    def test_defaults_match_old_signature_defaults(self):
        config = ServeConfig()
        assert config.queue_depth == 32
        assert config.max_sessions is None
        assert config.accept_queue == 0
        assert config.resume_window_s == 60.0
        assert config.portable_tokens is False
        assert config.batch_records == 32
        assert config.batch_bytes == 1 << 20

    @pytest.mark.parametrize("kwargs", [
        {"queue_depth": 0},
        {"batch_records": 0},
        {"batch_bytes": 0},
        {"compute_slots": 0},
        {"hello_timeout_s": 0.0},
        {"max_sessions": 0},
        {"accept_queue": -1},
        {"accept_timeout_s": 0.0},
        {"busy_retry_after_s": -0.1},
        {"resume_window_s": -1.0},
        {"drain_timeout_s": 0.0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_frozen_and_replace_revalidates(self):
        config = ServeConfig(queue_depth=8)
        with pytest.raises(AttributeError):
            config.queue_depth = 4
        assert config.replace(queue_depth=16).queue_depth == 16
        assert config.queue_depth == 8  # original untouched
        with pytest.raises(ValueError):
            config.replace(queue_depth=0)

    def test_resolved_compute_slots(self):
        assert ServeConfig(compute_slots=3).resolved_compute_slots() == 3
        assert ServeConfig().resolved_compute_slots() >= 1

    def test_picklable(self):
        config = ServeConfig(max_sessions=4, portable_tokens=True)
        assert pickle.loads(pickle.dumps(config)) == config

    def test_server_mirrors_config(self):
        media = _media_server(_clip())
        config = ServeConfig(
            queue_depth=4, max_sessions=2, accept_queue=1,
            resume_window_s=5.0, portable_tokens=True, compute_slots=2,
        )
        server = AnnotationStreamServer(media, config=config)
        assert server.config is config
        assert server.queue_depth == 4
        assert server.max_sessions == 2
        assert server.accept_queue == 1
        assert server.resume_window_s == 5.0
        assert server.portable_tokens is True
        assert server.compute_slots == 2


class TestLegacyServeShim:
    def test_loose_kwargs_warn_and_apply(self):
        media = _media_server(_clip())
        with pytest.warns(DeprecationWarning, match="ServeConfig"):
            server = AnnotationStreamServer(media, queue_depth=4, max_sessions=2)
        assert server.queue_depth == 4
        assert server.max_sessions == 2
        assert server.config.queue_depth == 4

    def test_loose_kwargs_overlay_a_config(self):
        media = _media_server(_clip())
        base = ServeConfig(queue_depth=8, accept_queue=3)
        with pytest.warns(DeprecationWarning):
            server = AnnotationStreamServer(media, config=base, queue_depth=4)
        assert server.queue_depth == 4       # legacy kwarg wins
        assert server.accept_queue == 3      # rest of the config survives

    def test_unknown_kwarg_raises_type_error(self):
        media = _media_server(_clip())
        with pytest.raises(TypeError, match="unknown serve parameter"):
            AnnotationStreamServer(media, bogus_knob=1)

    def test_invalid_legacy_value_still_raises_value_error(self):
        media = _media_server(_clip())
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                AnnotationStreamServer(media, queue_depth=0)

    def test_config_path_does_not_warn(self, recwarn):
        media = _media_server(_clip())
        AnnotationStreamServer(media, config=ServeConfig(queue_depth=4))
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_facade_serve_accepts_config_and_shims_legacy(self):
        service = StreamingService(params=FAST_PARAMS)
        service.add_clip(_clip())
        server = service.serve(config=ServeConfig(max_sessions=3))
        assert server.max_sessions == 3
        with pytest.warns(DeprecationWarning):
            legacy = service.serve(max_sessions=3)
        assert legacy.max_sessions == 3


class TestFetchOptions:
    @pytest.mark.parametrize("kwargs", [
        {"connect_timeout_s": 0.0},
        {"read_timeout_s": 0.0},
        {"max_retries": -1},
        {"backoff_base_s": -0.1},
        {"backoff_max_s": -0.1},
        {"jitter_s": -0.1},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FetchOptions(**kwargs)

    def test_client_carries_options(self, device):
        rng = random.Random(7)
        options = FetchOptions(
            connect_timeout_s=1.0, read_timeout_s=2.0, max_retries=2,
            backoff_base_s=0.01, backoff_max_s=0.5, jitter_s=0.0,
            rng=rng, resume=False,
        )
        client = options.client(device)
        assert client.connect_timeout_s == 1.0
        assert client.read_timeout_s == 2.0
        assert client.max_retries == 2
        assert client.resume is False

    def test_replace(self):
        options = FetchOptions(max_retries=1)
        assert options.replace(max_retries=3).max_retries == 3
        with pytest.raises(ValueError):
            options.replace(max_retries=-1)

    def test_fetch_family_round_trip_and_shim(self, device):
        """One server round trip through every fetch spelling."""
        clip = _clip(name="fetchfam")
        media = _media_server(clip)
        reference = _reference(media, clip.name)
        service = StreamingService(params=FAST_PARAMS)
        service.add_clip(clip)
        options = FetchOptions(max_retries=1, jitter_s=0.0,
                               rng=random.Random(0))

        async def run():
            async with AnnotationStreamServer(media) as server:
                host, port = server.address
                via_options = await service.fetch(
                    host, port, clip.name, QUALITY, device, options=options
                )
                with pytest.warns(DeprecationWarning, match="FetchOptions"):
                    via_legacy = await service.fetch(
                        host, port, clip.name, QUALITY, device, max_retries=1
                    )
                return via_options, via_legacy

        via_options, via_legacy = asyncio.run(run())
        assert len(via_options.packets) == len(reference)
        assert len(via_legacy.packets) == len(reference)

    def test_unknown_fetch_kwarg_raises_type_error(self, device):
        with pytest.raises(TypeError, match="unknown fetch parameter"):
            fetch_stream_sync("127.0.0.1", 1, "clip", QUALITY, device,
                              bogus_knob=1)


class TestPortableTokens:
    def test_round_trip(self):
        token = encode_portable_token("someclip", 0.15, "ipaq5555")
        info = decode_portable_token(token)
        assert info is not None
        assert info.clip_name == "someclip"
        assert info.quality == 0.15
        assert info.device_name == "ipaq5555"
        request = info.to_request()
        assert request.clip_name == "someclip"

    def test_tokens_are_unique_per_issue(self):
        a = encode_portable_token("c", 0.1, "d")
        b = encode_portable_token("c", 0.1, "d")
        assert a != b
        assert decode_portable_token(a) == decode_portable_token(b)

    @pytest.mark.parametrize("token", [
        "deadbeef" * 4,                      # opaque random token
        "p2.e30.abcd",                       # future version
        "p1.!!!not-base64!!!.abcd",          # bad encoding
        "p1.e30.abcd",                       # valid b64, missing keys
        "p1.onlytwo",                        # wrong part count
        "",
    ])
    def test_undecodable_tokens_return_none(self, token):
        assert decode_portable_token(token) is None

    def test_server_issues_portable_tokens_when_configured(self, device):
        clip = _clip(name="portclip")
        media = _media_server(clip)

        async def run(config):
            async with AnnotationStreamServer(media, config=config) as server:
                reader, writer = await asyncio.open_connection(*server.address)
                request = SessionRequest(
                    clip.name, QUALITY, ClientCapabilities(device.name)
                )
                writer.write(encode_packet_bytes(encode_hello(request)))
                await writer.drain()
                first = await asyncio.wait_for(read_packet(reader), timeout=5.0)
                writer.transport.abort()
                return decode_control(first)

        portable = asyncio.run(run(ServeConfig(portable_tokens=True)))
        assert decode_portable_token(portable.token) is not None
        opaque = asyncio.run(run(ServeConfig()))
        assert decode_portable_token(opaque.token) is None

    def test_foreign_server_adopts_token_byte_identically(self, device):
        """The failover primitive: a replica that never saw the session
        continues it from the portable token alone, byte-identically."""
        clip = _clip(name="adoptclip", frames=30)
        media_a = _media_server(clip)
        media_b = _media_server(_clip(name="adoptclip", frames=30))
        reference = _reference(media_a, clip.name)
        config = ServeConfig(portable_tokens=True)
        received = 7

        async def drain_stream(reader):
            packets = []
            while True:
                packet = await asyncio.wait_for(read_packet(reader), timeout=10.0)
                if packet is None:
                    break
                message = None
                if packet.ptype is PacketType.CONTROL:
                    message = decode_control(packet)
                    if message.kind == "end":
                        break
                    continue
                packets.append(packet)
            return packets

        async def run():
            async with AnnotationStreamServer(media_a, config=config) as a:
                reader, writer = await asyncio.open_connection(*a.address)
                request = SessionRequest(
                    clip.name, QUALITY, ClientCapabilities(device.name)
                )
                writer.write(encode_packet_bytes(encode_hello(request)))
                await writer.drain()
                session_msg = decode_control(
                    await asyncio.wait_for(read_packet(reader), timeout=5.0)
                )
                token = session_msg.token
                head = []
                while len(head) < received:
                    packet = await asyncio.wait_for(
                        read_packet(reader), timeout=10.0
                    )
                    if packet.ptype is not PacketType.CONTROL:
                        head.append(packet)
                writer.transport.abort()  # "shard death"
            # Server A is gone; resume against a fresh process-equivalent.
            async with AnnotationStreamServer(media_b, config=config) as b:
                reader, writer = await asyncio.open_connection(*b.address)
                writer.write(encode_packet_bytes(encode_resume(token, received)))
                await writer.drain()
                resumed = decode_control(
                    await asyncio.wait_for(read_packet(reader), timeout=5.0)
                )
                assert resumed.kind == "session"
                assert resumed.resumed_at == received
                tail = await drain_stream(reader)
                writer.close()
                return head, tail

        head, tail = asyncio.run(run())
        got = head + tail
        assert len(got) == len(reference)
        for mine, ref in zip(got, reference):
            assert mine.ptype is ref.ptype
            assert mine.seq == ref.seq
            if ref.ptype is PacketType.ANNOTATION:
                assert mine.payload == ref.payload
            elif ref.ptype is PacketType.FRAME:
                assert np.array_equal(mine.frame.pixels, ref.frame.pixels)
        adopted = registry().get("repro_net_adopted_sessions_total")
        assert adopted is not None and adopted.value == 1

    def test_adoption_disabled_without_portable_tokens(self, device):
        """A portable token is not honored by a server that has portable
        tokens switched off (no accidental cross-catalog adoption)."""
        media = _media_server(_clip(name="noadopt"))
        token = encode_portable_token("noadopt", QUALITY, device.name)

        async def run():
            async with AnnotationStreamServer(media) as server:
                reader, writer = await asyncio.open_connection(*server.address)
                writer.write(encode_packet_bytes(encode_resume(token, 0)))
                await writer.drain()
                message = decode_control(
                    await asyncio.wait_for(read_packet(reader), timeout=5.0)
                )
                writer.close()
                return message

        message = asyncio.run(run())
        assert message.kind == "error"
        assert "resume token" in message.error
