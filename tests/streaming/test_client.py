"""Unit tests for repro.streaming.client."""

import numpy as np
import pytest

from repro.display import ipaq_5555, ipaq_3650
from repro.streaming import (
    MediaServer,
    MobileClient,
    NetworkPath,
    SessionRequest,
    StreamProtocolError,
)


@pytest.fixture
def server(tiny_clip, fast_params):
    server = MediaServer(params=fast_params)
    server.add_clip(tiny_clip)
    return server


@pytest.fixture
def client():
    return MobileClient(ipaq_5555())


def _play(server, client, quality=0.10, **kwargs):
    session = server.open_session(client.request("tiny", quality))
    packets = list(server.stream(session))
    return client.play_stream(session, packets, **kwargs), session, packets


class TestRequest:
    def test_request_carries_device(self, client):
        req = client.request("tiny", 0.05)
        assert req.capabilities.device_name == "ipaq5555"
        assert req.quality == 0.05


class TestPlayStream:
    def test_playback_result_shape(self, server, client, tiny_clip):
        result, session, _ = _play(server, client)
        assert result.applied_levels.shape == (tiny_clip.frame_count,)
        assert result.clip_name == "tiny"
        assert result.fps == tiny_clip.fps

    def test_saves_power(self, server, client):
        result, _, _ = _play(server, client)
        assert result.total_savings > 0.05

    def test_savings_close_to_backlight_share_times_backlight_savings(
        self, server, client
    ):
        """Figure 10 ~= Figure 9 x backlight share (share taken from the
        actual run, since test frames barely load the decoder)."""
        from repro.power import simulated_backlight_savings
        result, _, _ = _play(server, client, quality=0.20)
        backlight_savings = simulated_backlight_savings(
            result.applied_levels, client.device
        )
        full_backlight_w = float(client.device.backlight.power(255))
        share = full_backlight_w / result.baseline_mean_power_w
        assert result.total_savings == pytest.approx(backlight_savings * share, abs=0.02)

    def test_levels_match_annotations(self, server, client):
        result, session, packets = _play(server, client)
        from repro.core import DeviceAnnotationTrack
        track = DeviceAnnotationTrack.from_bytes(packets[0].payload)
        assert np.array_equal(result.applied_levels, track.per_frame_levels())

    def test_delivery_overrides_duty(self, server, client):
        result_net, session, packets = _play(
            server, client, delivery=NetworkPath().deliver(
                list(server.stream(server.open_session(client.request("tiny", 0.10))))
            ),
        )
        result_flat, _, _ = _play(server, client, network_duty=0.8)
        # tiny frames -> low radio duty -> lower client power
        assert result_net.mean_power_w < result_flat.mean_power_w


class TestProtocolErrors:
    def test_wrong_device_session(self, server):
        client5555 = MobileClient(ipaq_5555())
        session = server.open_session(client5555.request("tiny", 0.05))
        packets = list(server.stream(session))
        other = MobileClient(ipaq_3650())
        with pytest.raises(StreamProtocolError, match="bound to"):
            other.play_stream(session, packets)

    def test_missing_annotation(self, server, client):
        session = server.open_session(client.request("tiny", 0.05))
        packets = [p for p in server.stream(session) if p.payload is None]
        with pytest.raises(StreamProtocolError, match="no annotation"):
            client.play_stream(session, packets)

    def test_out_of_order_frames(self, server, client):
        session = server.open_session(client.request("tiny", 0.05))
        packets = list(server.stream(session))
        packets[1], packets[2] = packets[2], packets[1]
        with pytest.raises(StreamProtocolError, match="expected"):
            client.play_stream(session, packets)

    def test_annotation_frame_count_mismatch(self, server, client):
        session = server.open_session(client.request("tiny", 0.05))
        packets = list(server.stream(session))[:-3]  # drop the last frames
        with pytest.raises(StreamProtocolError, match="cover"):
            client.play_stream(session, packets)

    def test_empty_stream(self, server, client):
        session = server.open_session(client.request("tiny", 0.05))
        with pytest.raises(StreamProtocolError):
            client.play_stream(session, [])


class TestProxyChunkStitching:
    def test_client_plays_proxied_stream(self, server, client, tiny_clip, fast_params):
        from repro.streaming import TranscodingProxy
        session = server.open_session(client.request("tiny", 0.05))
        proxy = TranscodingProxy(client.device, fast_params, chunk_frames=12)
        packets = list(proxy.process(iter(tiny_clip), fps=tiny_clip.fps))
        result = client.play_stream(session, packets)
        assert result.applied_levels.shape == (36,)
        assert result.total_savings > 0.0
