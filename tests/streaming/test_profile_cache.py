"""Content-keyed profile caching across the streaming layer.

The acceptance contract: a MediaServer profiles each clip's pixels exactly
once, no matter how many quality variants, device bindings, sessions, or
cache-sharing servers consume it — asserted with a counting spy on
``StreamAnalyzer.analyze``.
"""

import numpy as np
import pytest

from repro.core import (
    ProfileCache,
    SchemeParameters,
    StreamAnalyzer,
    clip_fingerprint,
    profile_params_key,
    sweep_quality_levels,
)
from repro.core.policy import QUALITY_LEVELS
from repro.display import ipaq_5555
from repro.streaming import ClientCapabilities, MediaServer, SessionRequest
from repro.video import ArrayClip, Frame, VideoClip


@pytest.fixture
def analyze_calls(monkeypatch):
    """Counting spy on the profiling entry point."""
    calls = []
    original = StreamAnalyzer.analyze

    def spy(self, clip):
        calls.append(clip.name)
        return original(self, clip)

    monkeypatch.setattr(StreamAnalyzer, "analyze", spy)
    return calls


def random_clip(seed=0, frames=12, name="clip"):
    rng = np.random.default_rng(seed)
    return ArrayClip(
        rng.integers(0, 256, (frames, 8, 8, 3), dtype=np.uint8), name=name
    )


class TestClipFingerprint:
    def test_same_content_same_fingerprint(self):
        a = random_clip(seed=1)
        b = random_clip(seed=1)
        assert a is not b
        assert clip_fingerprint(a) == clip_fingerprint(b)

    def test_different_content_differs(self):
        assert clip_fingerprint(random_clip(seed=1)) != clip_fingerprint(
            random_clip(seed=2)
        )

    def test_eager_clips_hash_all_pixels(self):
        a = random_clip(seed=3)
        pixels = a.pixels.copy()
        pixels[5, 3, 3, 1] ^= 1  # flip one bit anywhere
        b = ArrayClip(pixels, name=a.name)
        assert clip_fingerprint(a) != clip_fingerprint(b)
        assert clip_fingerprint(a).startswith("full:")

    def test_lazy_clips_are_sampled(self, tiny_clip):
        assert clip_fingerprint(tiny_clip).startswith("sampled:")
        assert clip_fingerprint(tiny_clip) == clip_fingerprint(tiny_clip)

    def test_videoclip_matches_itself_not_name(self):
        batch = random_clip(seed=4).pixels
        a = VideoClip([Frame(p) for p in batch], name="x")
        b = VideoClip([Frame(p) for p in batch], name="y")
        assert clip_fingerprint(a) != clip_fingerprint(b)  # name is metadata


class TestProfileCacheUnit:
    def test_lru_eviction(self):
        cache = ProfileCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)
        assert cache.get("b") is None  # b was least recently used
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_zero_entries_disables(self):
        cache = ProfileCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_get_or_compute(self):
        cache = ProfileCache()
        clip = random_clip(seed=5)
        params = SchemeParameters()
        calls = []
        value = cache.get_or_compute(clip, params, lambda: calls.append(1) or "p")
        again = cache.get_or_compute(clip, params, lambda: calls.append(1) or "p2")
        assert value == "p" and again == "p"
        assert calls == [1]
        assert cache.hits == 1 and cache.misses == 1

    def test_params_key_ignores_quality(self):
        base = SchemeParameters(quality=0.0)
        assert profile_params_key(base) == profile_params_key(base.with_quality(0.2))
        changed = SchemeParameters(scene_change_threshold=0.5)
        assert profile_params_key(base) != profile_params_key(changed)


class TestServerProfilesOnce:
    def test_one_analyze_across_five_qualities_and_devices(self, analyze_calls):
        server = MediaServer(profile_cache=ProfileCache())
        clip = random_clip(seed=6, frames=20, name="movie")
        server.add_clip(clip)
        assert tuple(server.qualities) == tuple(sorted(QUALITY_LEVELS))
        for quality in server.qualities:
            server.annotation_track("movie", quality)
        for device in ("ipaq5555", "ipaq3650"):
            request = SessionRequest("movie", 0.05, ClientCapabilities(device))
            session = server.open_session(request)
            list(server.stream(session))
        assert analyze_calls == ["movie"]

    def test_cache_shared_across_servers(self, analyze_calls):
        shared = ProfileCache()
        clip = random_clip(seed=7, name="shared")
        first = MediaServer(profile_cache=shared)
        second = MediaServer(profile_cache=shared)
        first.add_clip(clip)
        second.add_clip(random_clip(seed=7, name="shared"))  # equal content
        first.profile("shared")
        second.profile("shared")
        assert analyze_calls == ["shared"]

    def test_replaced_content_reprofiles(self, analyze_calls):
        server = MediaServer(profile_cache=ProfileCache())
        server.add_clip(random_clip(seed=8, name="movie"))
        server.profile("movie")
        old_track = server.annotation_track("movie", server.qualities[0])
        server.add_clip(random_clip(seed=9, name="movie"))  # same name, new pixels
        assert analyze_calls == ["movie"]
        server.profile("movie")
        assert analyze_calls == ["movie", "movie"]
        new_track = server.annotation_track("movie", server.qualities[0])
        assert new_track is not old_track

    def test_same_object_readd_keeps_caches(self, analyze_calls):
        server = MediaServer(profile_cache=ProfileCache())
        clip = random_clip(seed=10, name="movie")
        server.add_clip(clip)
        server.profile("movie")
        server.add_clip(clip)  # idempotent re-add of the same object
        server.profile("movie")
        assert analyze_calls == ["movie"]

    def test_sweep_reuses_server_cache(self, analyze_calls):
        cache = ProfileCache()
        clip = random_clip(seed=11, name="movie")
        server = MediaServer(profile_cache=cache)
        server.add_clip(clip)
        server.profile("movie")
        streams = sweep_quality_levels(
            clip, ipaq_5555(), [0.0, 0.1], profile_cache=cache
        )
        assert len(streams) == 2
        assert analyze_calls == ["movie"]


class TestPolicyIdentityInCacheKeys:
    """Regression: two policies over one clip must never collide.

    Profiling is statistics-only and identical across today's shipped
    policies, but the key must carry the policy identity so a future
    policy with its own profiling pass (e.g. one that needs spatial
    stats) cannot silently read another policy's entry.
    """

    def test_key_for_differs_by_policy(self):
        clip = random_clip(seed=20)
        params = SchemeParameters()
        default_key = ProfileCache.key_for(clip, params)
        assert default_key == ProfileCache.key_for(clip, params, policy=None)
        assert default_key == ProfileCache.key_for(
            clip, params, policy="clip-quality"
        )
        assert default_key != ProfileCache.key_for(clip, params, policy="hebs")
        assert ProfileCache.key_for(clip, params, policy="hebs") != (
            ProfileCache.key_for(clip, params, policy="spatial")
        )

    def test_same_policy_different_config_shares_profiles(self):
        from repro.core import HebsPolicy

        clip = random_clip(seed=21)
        params = SchemeParameters()
        assert ProfileCache.key_for(
            clip, params, policy=HebsPolicy(dim_factor=2.0)
        ) == ProfileCache.key_for(clip, params, policy=HebsPolicy(dim_factor=9.0))

    def test_get_or_compute_partitions_by_policy(self):
        cache = ProfileCache()
        clip = random_clip(seed=22)
        params = SchemeParameters()
        computes = []

        def compute(tag):
            return lambda: computes.append(tag) or tag

        assert cache.get_or_compute(clip, params, compute("default")) == "default"
        assert cache.get_or_compute(
            clip, params, compute("hebs"), policy="hebs"
        ) == "hebs"
        # Both entries now live side by side.
        assert cache.get_or_compute(
            clip, params, compute("again"), policy=None
        ) == "default"
        assert cache.get_or_compute(
            clip, params, compute("again"), policy="hebs"
        ) == "hebs"
        assert computes == ["default", "hebs"]

    def test_pipelines_with_different_policies_share_one_cache(self, analyze_calls):
        from repro.core.pipeline import AnnotationPipeline

        cache = ProfileCache()
        clip = random_clip(seed=23, name="movie")
        params = SchemeParameters()
        for policy in (None, "hebs", "spatial"):
            AnnotationPipeline(
                params, profile_cache=cache, policy=policy
            ).annotate(clip)
        # Each policy name gets its own entry (defensive partitioning) …
        assert analyze_calls == ["movie", "movie", "movie"]
        # … but re-running any of them is a pure cache hit.
        AnnotationPipeline(params, profile_cache=cache, policy="hebs").annotate(clip)
        assert analyze_calls == ["movie", "movie", "movie"]
