"""Bit-identity of the serving path across execution engines.

The chunked packet emission in :meth:`MediaServer.stream` must be
invisible on the wire: annotation payloads, frame pixels, sequence
numbers, frame indices and wire sizes all byte-identical to the
per-frame reference emission, for every engine kind.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ENGINE_KINDS, ProfileCache, SchemeParameters
from repro.streaming import (
    ClientCapabilities,
    MediaServer,
    PacketType,
    SessionRequest,
)
from repro.video import ArrayClip, CodecModel, VideoClip

FAST_PARAMS = SchemeParameters(quality=0.05, min_scene_interval_frames=5)


def _server(clip, engine, **kwargs):
    # Each engine gets its own cache: the content-keyed shared cache would
    # let one engine serve another's profiling results, masking bugs.
    server = MediaServer(
        params=FAST_PARAMS,
        engine=engine,
        profile_cache=ProfileCache(max_entries=4),
        **kwargs,
    )
    server.add_clip(clip)
    return server


def _packets(server, clip, quality=0.05):
    request = SessionRequest(clip.name, quality, ClientCapabilities("ipaq5555"))
    session = server.open_session(request)
    return list(server.stream(session))


def _assert_streams_identical(reference, candidate, kind):
    assert len(candidate) == len(reference), kind
    for ref, got in zip(reference, candidate):
        assert got.ptype is ref.ptype, kind
        assert got.seq == ref.seq, kind
        if ref.ptype is PacketType.ANNOTATION:
            assert got.payload == ref.payload, kind
        elif ref.ptype is PacketType.FRAME:
            assert got.frame_index == ref.frame_index, kind
            assert got.wire_bytes == ref.wire_bytes, kind
            assert got.frame.index == ref.frame.index, kind
            assert np.array_equal(got.frame.pixels, ref.frame.pixels), kind


clip_arrays = st.integers(0, 2**32 - 1).flatmap(
    lambda seed: st.builds(
        lambda n, h, w: np.random.default_rng(seed).integers(
            0, 256, size=(n, h, w, 3), dtype=np.uint8
        ),
        st.integers(3, 40),
        st.integers(4, 24),
        st.integers(4, 24),
    )
)


class TestServingBitIdentity:
    @settings(max_examples=15, deadline=None)
    @given(pixels=clip_arrays)
    def test_all_engines_emit_identical_packets(self, pixels):
        clips = {
            kind: ArrayClip(pixels.copy(), fps=24.0, name="prop")
            for kind in ENGINE_KINDS
        }
        reference = _packets(_server(clips["perframe"], "perframe"), clips["perframe"])
        assert reference[0].ptype is PacketType.ANNOTATION
        for kind in ENGINE_KINDS[1:]:
            candidate = _packets(_server(clips[kind], kind), clips[kind])
            _assert_streams_identical(reference, candidate, kind)

    def test_library_clip_identical_with_codec(self, library_clip):
        codec = CodecModel()
        reference = _packets(
            _server(library_clip, "perframe", codec=codec), library_clip
        )
        frame_packets = [p for p in reference if p.ptype is PacketType.FRAME]
        assert frame_packets and all(p.wire_bytes is not None for p in frame_packets)
        for kind in ENGINE_KINDS[1:]:
            candidate = _packets(
                _server(library_clip, kind, codec=codec), library_clip
            )
            _assert_streams_identical(reference, candidate, kind)

    def test_heterogeneous_clip_falls_back_per_frame(self):
        # Mixed resolutions cannot batch; the stream must still complete
        # and match the reference emission exactly.
        rng = np.random.default_rng(5)
        frames = [rng.integers(0, 256, size=(12, 16, 3), dtype=np.uint8) for _ in range(4)]
        frames += [rng.integers(0, 256, size=(8, 10, 3), dtype=np.uint8) for _ in range(4)]
        clips = {
            kind: VideoClip([f.copy() for f in frames], fps=24.0, name="mixed")
            for kind in ("perframe", "chunked")
        }
        reference = _packets(_server(clips["perframe"], "perframe"), clips["perframe"])
        candidate = _packets(_server(clips["chunked"], "chunked"), clips["chunked"])
        _assert_streams_identical(reference, candidate, "chunked")
        assert sum(p.ptype is PacketType.FRAME for p in candidate) == len(frames)

    def test_frame_packets_are_views_into_chunks(self, tiny_clip):
        # Chunked emission must not copy pixels per frame: consecutive
        # frame packets share their chunk's base buffer.
        packets = _packets(_server(tiny_clip, "chunked"), tiny_clip)
        frames = [p.frame for p in packets if p.ptype is PacketType.FRAME]
        assert len(frames) == tiny_clip.frame_count
        bases = {id(f.pixels.base) for f in frames if f.pixels.base is not None}
        assert bases, "expected zero-copy chunk views"
        assert len(bases) < len(frames)

    @pytest.mark.parametrize("kind", ENGINE_KINDS)
    def test_counter_matches_frames(self, kind, tiny_clip):
        from repro import telemetry

        server = _server(tiny_clip, kind)
        _packets(server, tiny_clip)
        counter = telemetry.registry().get("repro_server_frames_streamed_total")
        assert counter.value == tiny_clip.frame_count


def _materialize(packet):
    """Snapshot a packet's identity + payload bytes (frames copied).

    ``stream_batches`` reuses its compensation arena, so frame pixels
    must be copied before the generator is advanced — exactly the
    consumption contract the wire producer follows.
    """
    if packet.ptype is PacketType.FRAME:
        return (
            packet.ptype,
            packet.seq,
            packet.frame_index,
            packet.wire_bytes,
            packet.frame.pixels.copy(),
        )
    return (packet.ptype, packet.seq, packet.payload)


def _collect_batches(server, clip, quality=0.05, **kwargs):
    request = SessionRequest(clip.name, quality, ClientCapabilities("ipaq5555"))
    session = server.open_session(request)
    batches = []
    for batch in server.stream_batches(session, **kwargs):
        batches.append([_materialize(p) for p in batch])
    return batches


def _assert_same_packets(flat, reference, kind):
    assert len(flat) == len(reference), kind
    for got, ref_packet in zip(flat, reference):
        ref = _materialize(ref_packet)
        assert got[:4] == ref[:4] if ref[0] is PacketType.FRAME else got == ref, kind
        if ref[0] is PacketType.FRAME:
            assert np.array_equal(got[4], ref[4]), kind


class TestStreamBatches:
    """The wire-oriented batch emission against the per-packet reference."""

    @pytest.mark.parametrize("kind", ENGINE_KINDS)
    def test_batches_flatten_to_stream(self, kind, tiny_clip):
        reference = _packets(_server(tiny_clip, kind), tiny_clip)
        flat = [
            p
            for batch in _collect_batches(_server(tiny_clip, kind), tiny_clip)
            for p in batch
        ]
        _assert_same_packets(flat, reference, kind)

    def test_head_batch_is_annotation_only(self, tiny_clip):
        batches = _collect_batches(_server(tiny_clip, "chunked"), tiny_clip)
        assert batches[0], "head batch must not be empty"
        assert all(p[0] is PacketType.ANNOTATION for p in batches[0])
        assert all(
            p[0] is PacketType.FRAME for batch in batches[1:] for p in batch
        )

    def test_lead_chunk_bounds_first_frame_batch(self, tiny_clip):
        from repro.streaming.server import LEAD_CHUNK_FRAMES

        batches = _collect_batches(_server(tiny_clip, "chunked"), tiny_clip)
        assert len(batches[1]) <= LEAD_CHUNK_FRAMES
        # Custom leads are honored, and lead=None restores full chunks.
        batches = _collect_batches(
            _server(tiny_clip, "chunked"), tiny_clip, lead_chunk_frames=3
        )
        assert len(batches[1]) == 3
        batches = _collect_batches(
            _server(tiny_clip, "chunked"), tiny_clip, lead_chunk_frames=None
        )
        assert len(batches[1]) > LEAD_CHUNK_FRAMES

    def test_heterogeneous_clip_batches_fall_back(self):
        rng = np.random.default_rng(5)
        frames = [rng.integers(0, 256, size=(12, 16, 3), dtype=np.uint8) for _ in range(4)]
        frames += [rng.integers(0, 256, size=(8, 10, 3), dtype=np.uint8) for _ in range(4)]
        clip_a = VideoClip([f.copy() for f in frames], fps=24.0, name="mixed")
        clip_b = VideoClip([f.copy() for f in frames], fps=24.0, name="mixed")
        reference = _packets(_server(clip_a, "chunked"), clip_a)
        flat = [
            p
            for batch in _collect_batches(_server(clip_b, "chunked"), clip_b)
            for p in batch
        ]
        _assert_same_packets(flat, reference, "chunked-mixed")
