"""Unit tests for repro.streaming.playout."""

import numpy as np
import pytest

from repro.streaming.playout import PlayoutBuffer, PlayoutReport, StallEvent


class TestStallEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            StallEvent(-1, 0.0, 0.1)
        with pytest.raises(ValueError):
            StallEvent(0, 0.0, 0.0)


class TestSimulate:
    def test_fast_network_smooth(self):
        """Frames arriving faster than playback never stall."""
        arrivals = np.arange(30) * 0.01  # 100 fps delivery
        report = PlayoutBuffer(0.1).simulate(arrivals, fps=30.0)
        assert report.smooth
        assert report.total_stall_s == 0.0

    def test_exact_rate_with_buffer_smooth(self):
        arrivals = np.arange(30) / 30.0
        report = PlayoutBuffer(0.2).simulate(arrivals, fps=30.0)
        assert report.smooth

    def test_late_burst_stalls(self):
        """A delivery gap longer than the buffer stalls the player."""
        arrivals = np.concatenate([np.arange(10) / 30.0,
                                   np.arange(10) / 30.0 + 2.0])
        report = PlayoutBuffer(0.1).simulate(arrivals, fps=30.0)
        assert not report.smooth
        assert report.stall_count == 1
        assert report.stalls[0].frame_index == 10
        assert report.stalls[0].duration_s > 1.0

    def test_stall_shifts_later_deadlines(self):
        """After a stall the clock restarts from the late arrival, so a
        single gap causes exactly one stall."""
        arrivals = np.concatenate([
            [0.0], [5.0 + i / 30.0 for i in range(20)]
        ])
        report = PlayoutBuffer(0.0).simulate(arrivals, fps=30.0)
        assert report.stall_count == 1

    def test_bigger_buffer_fewer_stalls(self):
        rng = np.random.default_rng(3)
        jitter = rng.uniform(0, 0.2, size=60)
        arrivals = np.sort(np.arange(60) / 30.0 + jitter)
        small = PlayoutBuffer(0.01).simulate(arrivals, fps=30.0)
        large = PlayoutBuffer(1.0).simulate(arrivals, fps=30.0)
        assert large.stall_count <= small.stall_count

    @pytest.mark.parametrize("bad", [
        {"arrival_times_s": [], "fps": 30.0},
        {"arrival_times_s": [0.1, 0.0], "fps": 30.0},
        {"arrival_times_s": [0.0], "fps": 0.0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            PlayoutBuffer(0.1).simulate(**bad)

    def test_negative_startup_rejected(self):
        with pytest.raises(ValueError):
            PlayoutBuffer(-0.1)


class TestMinimumStartupDelay:
    def test_fast_delivery_zero(self):
        arrivals = np.arange(30) * 0.001
        assert PlayoutBuffer.minimum_startup_delay(arrivals, 30.0) == 0.0

    def test_computed_delay_is_sufficient(self):
        rng = np.random.default_rng(7)
        arrivals = np.sort(np.cumsum(rng.exponential(1 / 25.0, size=90)))
        delay = PlayoutBuffer.minimum_startup_delay(arrivals, 30.0)
        report = PlayoutBuffer(delay + 1e-9).simulate(arrivals, fps=30.0)
        assert report.smooth

    def test_computed_delay_is_tight(self):
        rng = np.random.default_rng(7)
        arrivals = np.sort(np.cumsum(rng.exponential(1 / 25.0, size=90)))
        delay = PlayoutBuffer.minimum_startup_delay(arrivals, 30.0)
        if delay > 0.01:
            report = PlayoutBuffer(delay * 0.5).simulate(arrivals, fps=30.0)
            assert not report.smooth


class TestWithNetworkModel:
    def test_encoded_stream_needs_tiny_buffer(self, tiny_clip, fast_params):
        """Compressed transport over the default path plays with almost no
        startup buffering."""
        from repro.display import ipaq_5555
        from repro.streaming import MediaServer, MobileClient, NetworkPath, PacketType
        from repro.video import CodecModel

        server = MediaServer(params=fast_params, codec=CodecModel())
        server.add_clip(tiny_clip)
        client = MobileClient(ipaq_5555())
        session = server.open_session(client.request("tiny", 0.05))
        packets = list(server.stream(session))
        schedule = NetworkPath().deliver(packets)
        frame_arrivals = [
            t for t, p in zip(schedule.arrival_times_s, packets)
            if p.ptype is PacketType.FRAME
        ]
        delay = PlayoutBuffer.minimum_startup_delay(frame_arrivals, tiny_clip.fps)
        assert delay < 0.1
