"""End-to-end scenario tests: the whole system under realistic use.

These exercise combinations the unit tests cover individually: several
clients on one server, heterogeneous devices, archives + codec + DVFS +
middleware all enabled at once.
"""

import numpy as np
import pytest

from repro.core import DvfsAnnotator, SchemeParameters
from repro.display import all_devices, ipaq_3650, ipaq_5555, zaurus_sl5600
from repro.player import DecoderModel
from repro.power import Battery, DvfsCpuModel
from repro.streaming import (
    BatteryAwareMiddleware,
    MediaServer,
    MobileClient,
    NetworkPath,
)
from repro.video import CodecModel, make_clip


@pytest.fixture
def full_server(fast_params):
    """A server with every optional subsystem enabled."""
    decoder = DecoderModel(reference_pixels=160 * 120)
    server = MediaServer(
        params=fast_params,
        dvfs_annotator=DvfsAnnotator(decoder=decoder),
        codec=CodecModel(),
    )
    for name in ("catwoman", "ice_age"):
        server.add_clip(make_clip(name, resolution=(48, 36), duration_scale=0.1))
    return server


class TestMultiClient:
    def test_three_devices_one_server(self, full_server):
        """Heterogeneous clients share the server's single profile pass."""
        results = {}
        for device in all_devices():
            client = MobileClient(device)
            session = full_server.open_session(client.request("catwoman", 0.10))
            packets = list(full_server.stream(session))
            results[device.name] = client.play_stream(session, packets)
        assert len({r.total_savings for r in results.values()}) >= 2
        assert all(r.total_savings > 0 for r in results.values())

    def test_profile_computed_once_across_sessions(self, full_server):
        first = full_server.profile("catwoman")
        for device in (ipaq_5555(), ipaq_3650(), zaurus_sl5600()):
            client = MobileClient(device)
            session = full_server.open_session(client.request("catwoman", 0.05))
            list(full_server.stream(session))
        assert full_server.profile("catwoman") is first

    def test_mixed_qualities_same_clip(self, full_server):
        client = MobileClient(ipaq_5555())
        savings = []
        for q in (0.0, 0.20):
            session = full_server.open_session(client.request("catwoman", q))
            packets = list(full_server.stream(session))
            savings.append(client.play_stream(session, packets).total_savings)
        assert savings[1] > savings[0]

    def test_session_ids_monotone_across_clients(self, full_server):
        ids = []
        for device in all_devices():
            client = MobileClient(device)
            ids.append(full_server.open_session(client.request("ice_age", 0.0)).session_id)
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)


class TestEverythingOn:
    def test_codec_dvfs_network_together(self, full_server):
        """Full stack: encoded transport + DVFS + delivery-derived duty."""
        device = ipaq_5555()
        decoder = DecoderModel(reference_pixels=160 * 120)
        client = MobileClient(device, decoder=decoder)
        cpu = DvfsCpuModel(active_power_at_max_w=device.power.cpu_active_w,
                           idle_power_w=device.power.cpu_idle_w)
        session = full_server.open_session(client.request("catwoman", 0.10))
        packets = list(full_server.stream(session))
        delivery = NetworkPath().deliver(packets)
        result = client.play_stream(session, packets, delivery=delivery, cpu=cpu)
        assert result.dropped_deadline_count == 0
        assert result.total_savings > 0.0
        # encoded transport: tiny radio duty
        assert delivery.radio_duty(result.duration_s) < 0.2

    def test_archive_roundtrip_preserves_everything(self, full_server, tmp_path):
        """Export with DVFS + all qualities, cold-start, stream, play."""
        path = tmp_path / "catwoman.npz"
        full_server.export_archive("catwoman", path)
        cold = MediaServer(codec=CodecModel())
        cold.add_archive(path)
        device = ipaq_5555()
        client = MobileClient(device, decoder=DecoderModel(reference_pixels=160 * 120))
        cpu = DvfsCpuModel(active_power_at_max_w=device.power.cpu_active_w,
                           idle_power_w=device.power.cpu_idle_w)
        session = cold.open_session(client.request("catwoman", 0.10))
        packets = list(cold.stream(session))
        result = client.play_stream(session, packets, cpu=cpu)

        warm_session = full_server.open_session(client.request("catwoman", 0.10))
        warm_packets = list(full_server.stream(warm_session))
        warm = client.play_stream(warm_session, warm_packets, cpu=cpu)
        assert np.array_equal(result.applied_levels, warm.applied_levels)

    def test_middleware_on_full_server(self, full_server):
        mw = BatteryAwareMiddleware(full_server, ipaq_5555(),
                                    battery=Battery(capacity_wh=10.0))
        plan = mw.plan_session(["catwoman", "ice_age"],
                               durations_s={"catwoman": 5000.0, "ice_age": 5000.0})
        assert len(plan.events) >= 1
        assert all(0.0 <= q <= 0.2 for q in plan.qualities())


class TestRepeatability:
    def test_same_session_twice_identical_power(self, full_server):
        """The whole pipeline is deterministic: two identical sessions
        produce bit-identical playback accounting."""
        client = MobileClient(ipaq_5555())
        runs = []
        for _ in range(2):
            session = full_server.open_session(client.request("catwoman", 0.10))
            packets = list(full_server.stream(session))
            runs.append(client.play_stream(session, packets))
        assert np.array_equal(runs[0].applied_levels, runs[1].applied_levels)
        assert np.array_equal(runs[0].per_frame_power_w, runs[1].per_frame_power_w)
