"""Unit tests for repro.streaming.proxy."""

import numpy as np
import pytest

from repro.core import AnnotationPipeline, SchemeParameters
from repro.display import ipaq_5555
from repro.streaming import PacketType, TranscodingProxy


@pytest.fixture
def device():
    return ipaq_5555()


@pytest.fixture
def proxy(device, fast_params):
    return TranscodingProxy(device, fast_params, chunk_frames=12)


class TestAnnotateLive:
    def test_yields_one_output_per_frame(self, proxy, tiny_clip):
        outputs = list(proxy.annotate_live(iter(tiny_clip), fps=tiny_clip.fps))
        assert len(outputs) == tiny_clip.frame_count

    def test_global_frame_indices(self, proxy, tiny_clip):
        outputs = list(proxy.annotate_live(iter(tiny_clip), fps=tiny_clip.fps))
        assert [frame.index for frame, _, _ in outputs] == list(range(36))

    def test_levels_valid(self, proxy, tiny_clip):
        for _frame, level, gain in proxy.annotate_live(iter(tiny_clip), fps=30.0):
            assert 0 <= level <= 255
            assert gain >= 1.0

    def test_dark_frames_dimmed(self, proxy, tiny_clip):
        outputs = list(proxy.annotate_live(iter(tiny_clip), fps=30.0))
        dark_level = outputs[3][1]
        bright_level = outputs[18][1]
        assert dark_level < bright_level

    def test_partial_final_chunk_handled(self, device, fast_params, tiny_clip):
        proxy = TranscodingProxy(device, fast_params, chunk_frames=10)  # 36 = 3*10+6
        outputs = list(proxy.annotate_live(iter(tiny_clip), fps=30.0))
        assert len(outputs) == 36


class TestProcessPackets:
    def test_annotation_packet_per_chunk(self, proxy, tiny_clip):
        packets = list(proxy.process(iter(tiny_clip), fps=30.0))
        ann = [p for p in packets if p.ptype is PacketType.ANNOTATION]
        frames = [p for p in packets if p.ptype is PacketType.FRAME]
        assert len(ann) == 3  # 36 frames / 12-frame chunks
        assert len(frames) == 36

    def test_annotation_precedes_its_chunk(self, proxy, tiny_clip):
        packets = list(proxy.process(iter(tiny_clip), fps=30.0))
        assert packets[0].ptype is PacketType.ANNOTATION
        # the second annotation arrives right after the first 12 frames
        assert packets[13].ptype is PacketType.ANNOTATION

    def test_frame_indices_global(self, proxy, tiny_clip):
        packets = list(proxy.process(iter(tiny_clip), fps=30.0))
        indices = [p.frame_index for p in packets if p.ptype is PacketType.FRAME]
        assert indices == list(range(36))


class TestProxyVsServer:
    def test_savings_close_to_offline(self, device, fast_params, library_clip):
        """Chunked on-the-fly annotation lands near the full-clip offline
        pipeline (scenes cannot span chunks, so it may differ slightly)."""
        pipeline = AnnotationPipeline(fast_params)
        offline = pipeline.build_stream(library_clip, device)
        proxy = TranscodingProxy(device, fast_params, chunk_frames=20)
        levels = np.array([
            level for _f, level, _g in proxy.annotate_live(iter(library_clip), fps=30.0)
        ])
        from repro.power import simulated_backlight_savings
        online = simulated_backlight_savings(levels, device)
        assert online == pytest.approx(offline.predicted_backlight_savings(), abs=0.12)

    def test_chunk_latency(self, device, fast_params):
        proxy = TranscodingProxy(device, fast_params, chunk_frames=60)
        assert proxy.chunk_latency_s(30.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            proxy.chunk_latency_s(0.0)

    def test_invalid_chunk_size(self, device, fast_params):
        with pytest.raises(ValueError):
            TranscodingProxy(device, fast_params, chunk_frames=0)
