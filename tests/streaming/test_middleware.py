"""Unit tests for repro.streaming.middleware (battery-aware adaptation)."""

import pytest

from repro.core import SchemeParameters
from repro.display import ipaq_5555
from repro.power import Battery, DevicePowerModel, PLAYBACK_ACTIVITY
from repro.streaming import (
    BatteryAwareMiddleware,
    MediaServer,
    PowerHint,
    QualityAdvisor,
    publish_power_hints,
)
from repro.video import make_clip


@pytest.fixture
def server(fast_params):
    server = MediaServer(params=fast_params)
    for name in ("catwoman", "ice_age"):
        server.add_clip(make_clip(name, resolution=(48, 36), duration_scale=0.1))
    return server


@pytest.fixture
def device():
    return ipaq_5555()


class TestPowerHints:
    def test_hint_per_quality(self, server, device):
        hints = publish_power_hints(server, "catwoman", device)
        assert len(hints) == len(server.qualities)
        assert {h.quality for h in hints} == set(server.qualities)

    def test_savings_monotone(self, server, device):
        hints = sorted(publish_power_hints(server, "catwoman", device),
                       key=lambda h: h.quality)
        savings = [h.backlight_savings for h in hints]
        assert all(b >= a - 1e-9 for a, b in zip(savings, savings[1:]))

    def test_bright_clip_low_savings(self, server, device):
        dark = publish_power_hints(server, "catwoman", device)[-1]
        bright = publish_power_hints(server, "ice_age", device)[-1]
        assert dark.backlight_savings > bright.backlight_savings

    def test_hint_validation(self):
        with pytest.raises(ValueError):
            PowerHint("c", 0.1, 1.5)


class TestQualityAdvisor:
    def test_predicted_power_decreases_with_savings(self, device):
        advisor = QualityAdvisor(device)
        lo = advisor.predicted_power_w(PowerHint("c", 0.0, 0.1))
        hi = advisor.predicted_power_w(PowerHint("c", 0.2, 0.6))
        assert hi < lo

    def test_predicted_power_consistent_with_model(self, device):
        advisor = QualityAdvisor(device)
        no_savings = advisor.predicted_power_w(PowerHint("c", 0.0, 0.0))
        model = DevicePowerModel(device)
        assert no_savings == pytest.approx(
            float(model.total_power(PLAYBACK_ACTIVITY, 255))
        )

    def test_choose_least_degradation_that_fits(self, device):
        advisor = QualityAdvisor(device)
        hints = [
            PowerHint("c", 0.0, 0.10),
            PowerHint("c", 0.05, 0.30),
            PowerHint("c", 0.10, 0.50),
        ]
        generous = advisor.choose(hints, power_budget_w=10.0)
        assert generous.quality == 0.0
        mid_budget = advisor.predicted_power_w(hints[1]) + 0.01
        mid = advisor.choose(hints, power_budget_w=mid_budget)
        assert mid.quality == 0.05

    def test_choose_falls_back_to_most_aggressive(self, device):
        advisor = QualityAdvisor(device)
        hints = [PowerHint("c", 0.0, 0.0), PowerHint("c", 0.2, 0.3)]
        choice = advisor.choose(hints, power_budget_w=0.1)
        assert choice.quality == 0.2

    def test_choose_validation(self, device):
        advisor = QualityAdvisor(device)
        with pytest.raises(Exception):
            advisor.choose([], 1.0)
        with pytest.raises(ValueError):
            advisor.choose([PowerHint("c", 0.0, 0.0)], 0.0)


class TestBatteryAwareMiddleware:
    MOVIES = {"catwoman": 6000.0, "ice_age": 5000.0}

    def test_generous_battery_full_quality(self, server, device):
        mw = BatteryAwareMiddleware(server, device, battery=Battery(capacity_wh=50.0))
        plan = mw.plan_session(["catwoman", "ice_age"], durations_s=self.MOVIES)
        assert plan.completed
        assert all(q == 0.0 for q in plan.qualities())

    def test_tight_battery_degrades(self, server, device):
        mw = BatteryAwareMiddleware(server, device, battery=Battery(capacity_wh=9.0))
        plan = mw.plan_session(["catwoman", "ice_age"], durations_s=self.MOVIES)
        assert any(q > 0.0 for q in plan.qualities())

    def test_tighter_battery_never_higher_quality(self, server, device):
        loose = BatteryAwareMiddleware(server, device, battery=Battery(capacity_wh=50.0))
        tight = BatteryAwareMiddleware(server, device, battery=Battery(capacity_wh=9.0))
        ql = loose.plan_session(["catwoman", "ice_age"], durations_s=self.MOVIES).qualities()
        qt = tight.plan_session(["catwoman", "ice_age"], durations_s=self.MOVIES).qualities()
        assert all(t >= l for t, l in zip(qt, ql))

    def test_battery_accounting(self, server, device):
        mw = BatteryAwareMiddleware(server, device, battery=Battery(capacity_wh=50.0),
                                    reserve_fraction=0.0)
        plan = mw.plan_session(["catwoman"], durations_s={"catwoman": 3600.0})
        spent = 50.0 - plan.battery_remaining_wh
        assert spent == pytest.approx(plan.events[0].predicted_power_w, rel=0.01)

    def test_describe_mentions_clips(self, server, device):
        mw = BatteryAwareMiddleware(server, device)
        plan = mw.plan_session(["catwoman"], durations_s={"catwoman": 100.0})
        text = plan.describe()
        assert "catwoman" in text and "session" in text

    def test_validation(self, server, device):
        mw = BatteryAwareMiddleware(server, device)
        with pytest.raises(ValueError):
            mw.plan_session([])
        with pytest.raises(ValueError):
            mw.plan_session(["catwoman"], initial_charge_wh=0.0)
        with pytest.raises(ValueError):
            mw.plan_session(["catwoman"], durations_s={"catwoman": -5.0})
        with pytest.raises(ValueError):
            BatteryAwareMiddleware(server, device, reserve_fraction=1.0)
