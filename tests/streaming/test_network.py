"""Unit tests for repro.streaming.network."""

import numpy as np
import pytest

from repro.streaming import (
    DEFAULT_WIRED,
    DEFAULT_WIRELESS,
    Link,
    NetworkPath,
    frame_packet,
)
from repro.video import Frame


def _packets(n, size=8):
    return [frame_packet(i, Frame.solid_gray(size, size, 0), i) for i in range(n)]


class TestLink:
    def test_transmit_time(self):
        link = Link("l", bandwidth_bps=8e6)
        assert link.transmit_time_s(1000) == pytest.approx(0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            Link("l", bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link("l", bandwidth_bps=1e6, latency_s=-1)

    def test_defaults_sensible(self):
        assert DEFAULT_WIRED.bandwidth_bps > DEFAULT_WIRELESS.bandwidth_bps


class TestNetworkPath:
    def test_arrivals_monotone(self):
        path = NetworkPath()
        schedule = path.deliver(_packets(10))
        assert np.all(np.diff(schedule.arrival_times_s) > 0)

    def test_total_bytes(self):
        path = NetworkPath()
        packets = _packets(3)
        schedule = path.deliver(packets)
        assert schedule.total_bytes == sum(p.size_bytes for p in packets)

    def test_wireless_is_bottleneck(self):
        path = NetworkPath()
        assert path.bottleneck_bandwidth_bps() == DEFAULT_WIRELESS.bandwidth_bps
        assert path.wireless_hop is path.hops[-1]

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            NetworkPath().deliver([])

    def test_single_hop_path(self):
        path = NetworkPath(hops=[Link("only", 1e6)])
        schedule = path.deliver(_packets(2))
        assert schedule.arrival_times_s.size == 2

    def test_no_hops_rejected(self):
        with pytest.raises(ValueError):
            NetworkPath(hops=[])

    def test_pipelining_faster_than_serial(self):
        """Store-and-forward pipelines: total time is far below the sum of
        per-hop serial transfers."""
        path = NetworkPath()
        packets = _packets(20, size=16)
        schedule = path.deliver(packets)
        serial = sum(
            sum(link.transmit_time_s(p.size_bytes) + link.latency_s for link in path.hops)
            for p in packets
        )
        assert schedule.duration_s < serial


class TestRadioDuty:
    def test_duty_fraction_of_playback(self):
        path = NetworkPath()
        packets = _packets(30, size=32)
        schedule = path.deliver(packets)
        duty = schedule.radio_duty(playback_duration_s=1.0)
        assert 0.0 < duty <= 1.0
        expected = sum(
            path.wireless_hop.transmit_time_s(p.size_bytes) for p in packets
        )
        assert duty == pytest.approx(min(expected, 1.0))

    def test_duty_capped_at_one(self):
        path = NetworkPath(hops=[Link("slow", 1e4)])
        schedule = path.deliver(_packets(10, size=32))
        assert schedule.radio_duty(0.001) == 1.0

    def test_invalid_duration(self):
        schedule = NetworkPath().deliver(_packets(1))
        with pytest.raises(ValueError):
            schedule.radio_duty(0.0)


class TestSustainability:
    def test_sustainable_fps(self):
        path = NetworkPath(hops=[Link("l", 8e6)])  # 1 MB/s
        # 10 kB frames + the 32-byte packet header -> just under 100 fps.
        assert path.sustainable_fps(10_000) == pytest.approx(1e6 / 10_032)
        assert path.sustainable_fps(10_000, header_bytes=0) == pytest.approx(100.0)

    def test_header_counted_like_delivery_schedule(self):
        """sustainable_fps charges exactly what deliver() charges per packet."""
        from repro.streaming import PACKET_HEADER_BYTES, frame_packet
        from repro.video.frame import Frame

        path = NetworkPath(hops=[Link("l", 8e6)])
        frame = Frame.solid(12, 10, (40, 40, 40))
        packet = frame_packet(0, frame, frame_index=0)
        assert packet.size_bytes == frame.pixels.nbytes + PACKET_HEADER_BYTES
        fps = path.sustainable_fps(frame.pixels.nbytes)
        assert fps == pytest.approx(8e6 / (8.0 * packet.size_bytes))

    def test_zero_payload_still_charged(self):
        # A zero-payload control packet costs a header, never a free ride.
        path = NetworkPath(hops=[Link("l", 8e6)])
        assert path.sustainable_fps(0) == pytest.approx(1e6 / 32)

    def test_invalid_frame_size(self):
        with pytest.raises(ValueError):
            NetworkPath().sustainable_fps(-1)
        with pytest.raises(ValueError):
            NetworkPath().sustainable_fps(0, header_bytes=0)

    def test_qvga_stream_sustainable_over_wlan(self):
        """Raw tiny-resolution frames fit 802.11b at 30 fps (sanity of the
        simulation's default parameters)."""
        path = NetworkPath()
        frame_bytes = 48 * 36 * 3
        assert path.sustainable_fps(frame_bytes) > 30
