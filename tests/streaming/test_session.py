"""Unit tests for repro.streaming.session."""

import pytest

from repro.streaming import (
    ClientCapabilities,
    NegotiationError,
    SessionRequest,
    snap_quality,
)


class TestClientCapabilities:
    def test_known_device(self):
        assert ClientCapabilities("ipaq5555").device_name == "ipaq5555"

    def test_unknown_device_rejected(self):
        with pytest.raises(NegotiationError, match="transfer"):
            ClientCapabilities("palm_pilot")


class TestSessionRequest:
    def test_valid(self):
        req = SessionRequest("clip", 0.1, ClientCapabilities("ipaq5555"))
        assert req.quality == 0.1

    def test_quality_bounds(self):
        with pytest.raises(NegotiationError):
            SessionRequest("clip", 1.5, ClientCapabilities("ipaq5555"))


class TestSnapQuality:
    def test_exact_match(self):
        assert snap_quality(0.10) == 0.10

    def test_snaps_down(self):
        """The server never degrades more than the user authorized."""
        assert snap_quality(0.12) == 0.10
        assert snap_quality(0.19) == 0.15

    def test_below_minimum_uses_minimum(self):
        assert snap_quality(0.0) == 0.0

    def test_above_maximum(self):
        assert snap_quality(0.9) == 0.20

    def test_custom_levels(self):
        assert snap_quality(0.5, available=(0.1, 0.4, 0.6)) == 0.4

    def test_request_below_all_levels(self):
        assert snap_quality(0.01, available=(0.05, 0.1)) == 0.05

    def test_empty_levels(self):
        with pytest.raises(NegotiationError):
            snap_quality(0.1, available=())
