"""Unit tests for repro.streaming.archive."""

import numpy as np
import pytest

from repro.core import AnnotationPipeline, DvfsAnnotator, SchemeParameters
from repro.player import DecoderModel
from repro.streaming import MediaServer, MobileClient, load_archive, save_archive
from repro.display import ipaq_5555


@pytest.fixture
def annotated(tiny_clip, fast_params):
    tracks = {}
    for q in (0.0, 0.05, 0.10):
        pipeline = AnnotationPipeline(fast_params.with_quality(q))
        tracks[q] = pipeline.annotate(tiny_clip)
    return tiny_clip, tracks


class TestRoundTrip:
    def test_clip_and_tracks_preserved(self, annotated, tmp_path):
        clip, tracks = annotated
        path = tmp_path / "clip.npz"
        save_archive(path, clip, tracks)
        loaded_clip, loaded_tracks, dvfs = load_archive(path)
        assert loaded_clip.frame_count == clip.frame_count
        assert loaded_clip.frame(3) == clip.frame(3)
        assert set(loaded_tracks) == {0.0, 0.05, 0.10}
        assert dvfs is None
        a = tracks[0.05].per_frame_effective_max()
        b = loaded_tracks[0.05].per_frame_effective_max()
        assert b == pytest.approx(a, abs=1 / 255)

    def test_dvfs_track_preserved(self, annotated, tmp_path):
        clip, tracks = annotated
        annotator = DvfsAnnotator(decoder=DecoderModel(reference_pixels=160 * 120))
        pipeline = AnnotationPipeline(SchemeParameters(min_scene_interval_frames=5))
        profile = pipeline.profile(clip)
        dvfs = annotator.annotate_with_profile(clip, profile)
        path = tmp_path / "clip.npz"
        save_archive(path, clip, tracks, dvfs_track=dvfs)
        _clip, _tracks, loaded_dvfs = load_archive(path)
        assert loaded_dvfs is not None
        assert loaded_dvfs.frame_count == clip.frame_count


class TestLazyLoad:
    def test_load_returns_array_clip(self, annotated, tmp_path):
        # Loading must not materialize per-frame objects: the clip comes
        # back as an ArrayClip wrapping the archive tensor directly.
        from repro.video import ArrayClip

        clip, tracks = annotated
        path = tmp_path / "clip.npz"
        save_archive(path, clip, tracks)
        loaded, _tracks, _dvfs = load_archive(path)
        assert isinstance(loaded, ArrayClip)
        first = next(loaded.iter_chunks())
        assert np.shares_memory(first.pixels, loaded.pixels)  # zero-copy chunks

    def test_array_clip_save_fast_path_round_trips(self, annotated, tmp_path):
        clip, tracks = annotated
        path_a = tmp_path / "a.npz"
        save_archive(path_a, clip, tracks)
        loaded, loaded_tracks, _ = load_archive(path_a)
        # Re-archive the ArrayClip (exercises the no-stack fast path).
        path_b = tmp_path / "b.npz"
        save_archive(path_b, loaded, loaded_tracks)
        again, _, _ = load_archive(path_b)
        assert np.array_equal(again.pixels, loaded.pixels)


class TestValidation:
    def test_no_tracks_rejected(self, tiny_clip, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            save_archive(tmp_path / "x.npz", tiny_clip, {})

    def test_mismatched_track_rejected(self, annotated, library_clip, tmp_path):
        _clip, tracks = annotated
        with pytest.raises(ValueError, match="covers"):
            save_archive(tmp_path / "x.npz", library_clip, tracks)

    def test_bad_version_rejected(self, annotated, tmp_path):
        clip, tracks = annotated
        path = tmp_path / "clip.npz"
        save_archive(path, clip, tracks)
        data = dict(np.load(path, allow_pickle=False))
        data["version"] = np.int64(99)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_archive(path)


class TestServerIntegration:
    def test_export_then_cold_start(self, annotated, tmp_path, fast_params):
        clip, _tracks = annotated
        warm = MediaServer(params=fast_params, qualities=(0.0, 0.05, 0.10))
        warm.add_clip(clip)
        path = tmp_path / "tiny.npz"
        warm.export_archive("tiny", path)

        cold = MediaServer(params=fast_params, qualities=(0.0, 0.05, 0.10))
        name = cold.add_archive(path)
        assert name == "tiny"
        client = MobileClient(ipaq_5555())
        session = cold.open_session(client.request("tiny", 0.05))
        packets = list(cold.stream(session))
        result = client.play_stream(session, packets)
        assert result.total_savings > 0.0

    def test_archived_tracks_identical_to_warm(self, annotated, tmp_path, fast_params):
        clip, _ = annotated
        warm = MediaServer(params=fast_params, qualities=(0.0, 0.05))
        warm.add_clip(clip)
        path = tmp_path / "tiny.npz"
        warm.export_archive("tiny", path)
        cold = MediaServer(params=fast_params, qualities=(0.0, 0.05))
        cold.add_archive(path)
        device = ipaq_5555()
        a = warm.annotation_track("tiny", 0.05).bind(device).per_frame_levels()
        b = cold.annotation_track("tiny", 0.05).bind(device).per_frame_levels()
        assert np.array_equal(a, b)

    def test_archive_with_dvfs_streams_dvfs(self, tiny_clip, fast_params, tmp_path):
        from repro.streaming import PacketType
        decoder = DecoderModel(reference_pixels=160 * 120)
        warm = MediaServer(params=fast_params,
                           dvfs_annotator=DvfsAnnotator(decoder=decoder))
        warm.add_clip(tiny_clip)
        path = tmp_path / "tiny.npz"
        warm.export_archive("tiny", path)
        cold = MediaServer(params=fast_params)  # no annotator, archive only
        cold.add_archive(path)
        client = MobileClient(ipaq_5555(), decoder=decoder)
        session = cold.open_session(client.request("tiny", 0.05))
        packets = list(cold.stream(session))
        ann = [p for p in packets if p.ptype is PacketType.ANNOTATION]
        assert len(ann) == 2
        assert ann[1].payload[:4] == b"ANC1"
