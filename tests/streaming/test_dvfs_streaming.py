"""Integration tests: DVFS annotation tracks through the streaming stack."""

import numpy as np
import pytest

from repro.core import DvfsAnnotator, DvfsTrack
from repro.display import ipaq_5555
from repro.player import DecoderModel
from repro.power import DvfsCpuModel
from repro.streaming import MediaServer, MobileClient, PacketType


SUBRES = 160 * 120


@pytest.fixture
def decoder():
    return DecoderModel(reference_pixels=SUBRES)


@pytest.fixture
def server(tiny_clip, fast_params, decoder):
    server = MediaServer(params=fast_params,
                         dvfs_annotator=DvfsAnnotator(decoder=decoder))
    server.add_clip(tiny_clip)
    return server


@pytest.fixture
def client(decoder):
    return MobileClient(ipaq_5555(), decoder=decoder)


@pytest.fixture
def cpu():
    dev = ipaq_5555()
    return DvfsCpuModel(active_power_at_max_w=dev.power.cpu_active_w,
                        idle_power_w=dev.power.cpu_idle_w)


class TestServerSide:
    def test_stream_carries_two_annotation_packets(self, server, client):
        session = server.open_session(client.request("tiny", 0.05))
        packets = list(server.stream(session))
        ann = [p for p in packets if p.ptype is PacketType.ANNOTATION]
        assert len(ann) == 2
        assert ann[0].payload[:4] == b"AND1"
        assert ann[1].payload[:4] == b"ANC1"

    def test_dvfs_track_cached(self, server):
        a = server.dvfs_track("tiny")
        b = server.dvfs_track("tiny")
        assert a is b

    def test_dvfs_track_parses(self, server, client):
        session = server.open_session(client.request("tiny", 0.05))
        packets = list(server.stream(session))
        track = DvfsTrack.from_bytes(packets[1].payload)
        assert track.frame_count == 36

    def test_server_without_dvfs_rejects_query(self, tiny_clip, fast_params):
        from repro.streaming import NegotiationError
        server = MediaServer(params=fast_params)
        server.add_clip(tiny_clip)
        with pytest.raises(NegotiationError, match="without DVFS"):
            server.dvfs_track("tiny")

    def test_shared_scene_boundaries(self, server, client):
        """DVFS scenes coincide with the backlight track's scenes."""
        from repro.core import DeviceAnnotationTrack
        session = server.open_session(client.request("tiny", 0.05))
        packets = list(server.stream(session))
        backlight = DeviceAnnotationTrack.from_bytes(packets[0].payload)
        dvfs = DvfsTrack.from_bytes(packets[1].payload)
        assert [(s.start, s.end) for s in dvfs.scenes] == [
            (s.start, s.end) for s in backlight.scenes
        ]


class TestClientSide:
    def test_plays_with_cpu_model(self, server, client, cpu):
        session = server.open_session(client.request("tiny", 0.05))
        packets = list(server.stream(session))
        result = client.play_stream(session, packets, cpu=cpu)
        assert result.dropped_deadline_count == 0
        assert result.total_savings > 0.0

    def test_dvfs_packet_ignored_without_cpu(self, server, client):
        """A legacy client (no DVFS support) plays the same stream."""
        session = server.open_session(client.request("tiny", 0.05))
        packets = list(server.stream(session))
        result = client.play_stream(session, packets)
        assert result.applied_levels.shape == (36,)

    def test_dvfs_lowers_absolute_power(self, server, client, cpu):
        session = server.open_session(client.request("tiny", 0.05))
        packets = list(server.stream(session))
        with_dvfs = client.play_stream(session, packets, cpu=cpu)
        without = client.play_stream(session, packets)
        assert with_dvfs.mean_power_w < without.mean_power_w

    def test_unknown_annotation_magic_rejected(self, server, client):
        from repro.streaming import StreamProtocolError, annotation_packet
        session = server.open_session(client.request("tiny", 0.05))
        packets = list(server.stream(session))
        packets.insert(1, annotation_packet(99, b"XXXXgarbage"))
        with pytest.raises(StreamProtocolError, match="magic"):
            client.play_stream(session, packets)

    def test_backlight_schedule_unchanged_by_dvfs(self, server, client, cpu):
        session = server.open_session(client.request("tiny", 0.05))
        packets = list(server.stream(session))
        a = client.play_stream(session, packets, cpu=cpu)
        b = client.play_stream(session, packets)
        assert np.array_equal(a.applied_levels, b.applied_levels)
