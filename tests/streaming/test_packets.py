"""Unit tests for repro.streaming.packets."""

import pytest

from repro.streaming import (
    PACKET_HEADER_BYTES,
    MediaPacket,
    PacketType,
    annotation_packet,
    control_packet,
    frame_packet,
)
from repro.video import Frame


class TestPacketConstruction:
    def test_frame_packet(self):
        frame = Frame.solid_gray(4, 4, 100)
        pkt = frame_packet(3, frame, frame_index=2)
        assert pkt.ptype is PacketType.FRAME
        assert pkt.frame_index == 2
        assert pkt.seq == 3

    def test_annotation_packet(self):
        pkt = annotation_packet(0, b"\x01\x02")
        assert pkt.ptype is PacketType.ANNOTATION
        assert pkt.payload == b"\x01\x02"

    def test_control_packet(self):
        assert control_packet(1, b"hello").ptype is PacketType.CONTROL

    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError):
            annotation_packet(-1, b"x")

    def test_frame_packet_requires_frame(self):
        with pytest.raises(ValueError, match="need a frame"):
            MediaPacket(seq=0, ptype=PacketType.FRAME)

    def test_frame_packet_rejects_payload(self):
        with pytest.raises(ValueError, match="must not carry"):
            MediaPacket(seq=0, ptype=PacketType.FRAME,
                        frame=Frame.solid_gray(2, 2, 0), frame_index=0,
                        payload=b"x")

    def test_data_packet_requires_payload(self):
        with pytest.raises(ValueError, match="need a bytes payload"):
            MediaPacket(seq=0, ptype=PacketType.ANNOTATION)

    def test_data_packet_rejects_frame(self):
        with pytest.raises(ValueError):
            MediaPacket(seq=0, ptype=PacketType.CONTROL, payload=b"x",
                        frame=Frame.solid_gray(2, 2, 0))


class TestSizes:
    def test_frame_packet_size(self):
        frame = Frame.solid_gray(4, 6, 0)
        pkt = frame_packet(0, frame, 0)
        assert pkt.size_bytes == PACKET_HEADER_BYTES + 4 * 6 * 3

    def test_annotation_packet_size(self):
        assert annotation_packet(0, b"abc").size_bytes == PACKET_HEADER_BYTES + 3

    def test_annotations_dwarfed_by_frames(self):
        """Annotation overhead is negligible next to a single frame."""
        frame = Frame.solid_gray(240, 320, 0)
        ann = annotation_packet(0, b"\x00" * 200)
        assert ann.size_bytes < frame_packet(1, frame, 0).size_bytes / 100
