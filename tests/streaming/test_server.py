"""Unit tests for repro.streaming.server."""

import pytest

from repro.core import SchemeParameters
from repro.streaming import (
    ClientCapabilities,
    MediaServer,
    NegotiationError,
    PacketType,
    SessionRequest,
)


@pytest.fixture
def server(tiny_clip, fast_params):
    server = MediaServer(params=fast_params)
    server.add_clip(tiny_clip)
    return server


def _request(clip="tiny", quality=0.05, device="ipaq5555"):
    return SessionRequest(clip, quality, ClientCapabilities(device))


class TestCatalog:
    def test_add_and_list(self, server, library_clip):
        server.add_clip(library_clip)
        assert server.catalog() == ("spiderman2", "tiny")

    def test_get_unknown_clip(self, server):
        with pytest.raises(NegotiationError, match="catalog"):
            server.get_clip("missing")

    def test_add_idempotent_by_name(self, server, tiny_clip):
        server.add_clip(tiny_clip)
        assert server.catalog() == ("tiny",)


class TestAnnotationCache:
    def test_profile_cached(self, server):
        a = server.profile("tiny")
        b = server.profile("tiny")
        assert a is b

    def test_track_cached_per_quality(self, server):
        a = server.annotation_track("tiny", 0.05)
        b = server.annotation_track("tiny", 0.05)
        c = server.annotation_track("tiny", 0.10)
        assert a is b
        assert a is not c
        assert c.quality == 0.10

    def test_unprepared_quality_rejected(self, server):
        with pytest.raises(NegotiationError, match="prepared"):
            server.annotation_track("tiny", 0.07)

    def test_needs_quality_levels(self):
        with pytest.raises(ValueError):
            MediaServer(qualities=())


class TestSessions:
    def test_open_session(self, server):
        session = server.open_session(_request(quality=0.12))
        assert session.clip_name == "tiny"
        assert session.quality == 0.10  # snapped down
        assert session.device_name == "ipaq5555"
        assert session.frame_count == 36

    def test_session_ids_unique(self, server):
        a = server.open_session(_request())
        b = server.open_session(_request())
        assert a.session_id != b.session_id

    def test_unknown_clip_rejected(self, server):
        with pytest.raises(NegotiationError):
            server.open_session(_request(clip="missing"))

    def test_build_stream(self, server):
        session = server.open_session(_request())
        stream = server.build_stream(session)
        assert stream.frame_count == 36
        assert stream.device.name == "ipaq5555"


class TestStreaming:
    def test_annotation_packet_first(self, server):
        session = server.open_session(_request())
        packets = list(server.stream(session))
        assert packets[0].ptype is PacketType.ANNOTATION
        assert all(p.ptype is PacketType.FRAME for p in packets[1:])

    def test_one_frame_packet_per_frame(self, server):
        session = server.open_session(_request())
        packets = list(server.stream(session))
        assert len(packets) == 37
        assert [p.frame_index for p in packets[1:]] == list(range(36))

    def test_frames_are_compensated(self, server, tiny_clip):
        """Dark-scene frames ship brighter than the originals."""
        session = server.open_session(_request(quality=0.10))
        packets = list(server.stream(session))
        stream = server.build_stream(session)
        dark_idx = 3  # inside the opening dark scene
        if stream.track.per_frame_gains()[dark_idx] > 1.0:
            sent = packets[1 + dark_idx].frame
            assert sent.mean_luminance > tiny_clip.frame(dark_idx).mean_luminance

    def test_annotation_payload_parses(self, server):
        from repro.core import DeviceAnnotationTrack
        session = server.open_session(_request())
        packets = list(server.stream(session))
        track = DeviceAnnotationTrack.from_bytes(packets[0].payload)
        assert track.frame_count == 36

    def test_stream_respects_device(self, server):
        import numpy as np
        a = server.build_stream(server.open_session(_request(device="ipaq5555")))
        b = server.build_stream(server.open_session(_request(device="ipaq3650")))
        assert not np.array_equal(a.backlight_levels(), b.backlight_levels())
