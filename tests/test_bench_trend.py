"""The benchmark trend checker (``benchmarks/trend_check.py``).

The checker is a standalone script (CI invokes it directly), so it is
loaded here via importlib rather than the package import system.
"""

import importlib.util
import json
import os

import pytest

TREND_CHECK = os.path.join(
    os.path.dirname(__file__), os.pardir, "benchmarks", "trend_check.py"
)


@pytest.fixture(scope="module")
def trend():
    spec = importlib.util.spec_from_file_location("trend_check", TREND_CHECK)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestFlatten:
    def test_numeric_leaves_by_path(self, trend):
        leaves = trend.flatten({"a": {"b": 1.5}, "c": [{"d": 2}, {"d": 3}]})
        assert leaves == {"a/b": 1.5, "c[0]/d": 2.0, "c[1]/d": 3.0}

    def test_bools_and_strings_skipped(self, trend):
        assert trend.flatten({"ok": True, "name": "x", "n": 1}) == {"n": 1.0}

    def test_metric_key_strips_list_indices(self, trend):
        assert trend.metric_key("points[3]/savings") == "savings"
        assert trend.metric_key("engines/chunked/frames_per_sec") == (
            "frames_per_sec"
        )


class TestCompare:
    def test_identity_passes(self, trend):
        doc = {"savings": 0.5, "frames_per_sec": 1000.0, "untracked": 7.0}
        regressions, notes = trend.compare(doc, doc, 0.10, 0.5)
        assert regressions == [] and notes == []

    def test_quality_drop_beyond_tolerance_fails(self, trend):
        base = {"points": [{"savings": 0.50}]}
        fresh = {"points": [{"savings": 0.40}]}
        regressions, _ = trend.compare(fresh, base, 0.10, 0.5)
        assert len(regressions) == 1
        assert "savings" in regressions[0]

    def test_quality_drop_within_tolerance_passes(self, trend):
        base = {"frontier_size": 20}
        fresh = {"frontier_size": 19}
        regressions, _ = trend.compare(fresh, base, 0.10, 0.5)
        assert regressions == []

    def test_rates_use_loose_tolerance(self, trend):
        base = {"frames_per_sec": 1000.0}
        slow = {"frames_per_sec": 600.0}   # -40%: within rate tolerance
        too_slow = {"frames_per_sec": 400.0}  # -60%: regression
        assert trend.compare(slow, base, 0.10, 0.5)[0] == []
        assert len(trend.compare(too_slow, base, 0.10, 0.5)[0]) == 1

    def test_lower_is_better_keys_gate_rises(self, trend):
        base = {"overhead_fraction": 0.02}
        worse = {"overhead_fraction": 0.05}
        better = {"overhead_fraction": 0.001}
        assert len(trend.compare(worse, base, 0.10, 0.5)[0]) == 1
        assert trend.compare(better, base, 0.10, 0.5)[0] == []

    def test_negative_baseline_identity_passes(self, trend):
        # Telemetry overhead can measure slightly below zero; the band
        # must stay on the correct side of a negative baseline.
        base = {"overhead_fraction": -0.015}
        assert trend.compare(base, base, 0.10, 0.5)[0] == []
        worse = {"overhead_fraction": 0.05}
        assert len(trend.compare(worse, base, 0.10, 0.5)[0]) == 1

    def test_overhead_band_is_absolute_around_zero(self, trend):
        # A lucky below-zero baseline must not fail an honest re-measure
        # that lands a hair above zero; only a rise past the absolute
        # band regresses.
        base = {"overhead_fraction": -0.0195}
        noisy = {"overhead_fraction": 0.011}
        past_band = {"overhead_fraction": base["overhead_fraction"]
                     + trend.LOWER_ABS_BAND + 0.025}
        assert trend.compare(noisy, base, 0.10, 0.5)[0] == []
        assert len(trend.compare(past_band, base, 0.10, 0.5)[0]) == 1

    def test_untracked_keys_never_gate(self, trend):
        base = {"seconds": 1.0, "distortion_emd": 5.0}
        fresh = {"seconds": 100.0, "distortion_emd": 50.0}
        assert trend.compare(fresh, base, 0.10, 0.5) == ([], [])

    def test_vanished_metric_is_a_note_not_a_failure(self, trend):
        base = {"savings": 0.5}
        regressions, notes = trend.compare({}, base, 0.10, 0.5)
        assert regressions == []
        assert len(notes) == 1 and "gone" in notes[0]


class TestMain:
    def test_missing_baseline_is_skipped(self, trend, tmp_path, capsys):
        path = tmp_path / "BENCH_new.json"
        path.write_text(json.dumps({"savings": 0.5}))
        assert trend.main([str(path)]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_committed_pareto_baseline_passes_against_itself(self, trend, capsys):
        """Identity comparison of the committed Pareto results must pass."""
        path = os.path.join(
            os.path.dirname(TREND_CHECK), "results", "BENCH_policy_pareto.json"
        )
        if trend.baseline_from_git(
            os.path.relpath(path, trend.REPO_ROOT), "HEAD"
        ) is None:
            pytest.skip("BENCH_policy_pareto.json not committed yet")
        baseline = trend.baseline_from_git(
            os.path.relpath(path, trend.REPO_ROOT), "HEAD"
        )
        regressions, _ = trend.compare(baseline, baseline, 0.10, 0.5)
        assert regressions == []
