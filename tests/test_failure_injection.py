"""Failure injection: corrupted data, saturated instruments, overloads.

The system must fail loudly on corrupt inputs (never produce a silently
wrong backlight schedule) and degrade predictably when instruments or
budgets saturate.
"""

import numpy as np
import pytest

from repro.camera import DigitalCamera, LinearResponse
from repro.core import (
    AnnotationPipeline,
    AnnotationTrack,
    DeviceAnnotationTrack,
    DvfsTrack,
)
from repro.display import ipaq_5555
from repro.player import DecoderModel, PlaybackEngine
from repro.power import DAQConfig, DAQSimulator
from repro.streaming import MediaServer, MobileClient, StreamProtocolError


@pytest.fixture
def device():
    return ipaq_5555()


class TestCorruptAnnotations:
    @pytest.fixture
    def track_bytes(self, tiny_clip, fast_params, device):
        pipeline = AnnotationPipeline(fast_params)
        return pipeline.annotate_for_device(tiny_clip, device).to_bytes()

    def test_truncation_every_prefix_rejected(self, track_bytes):
        """No prefix of a valid track parses as a valid track."""
        for cut in range(4, len(track_bytes) - 1):
            with pytest.raises(ValueError):
                DeviceAnnotationTrack.from_bytes(track_bytes[:cut])

    def test_trailing_bytes_rejected(self, track_bytes):
        with pytest.raises(ValueError, match="trailing"):
            DeviceAnnotationTrack.from_bytes(track_bytes + b"\x00")

    def test_magic_corruption_rejected(self, track_bytes):
        corrupted = b"ZZZZ" + track_bytes[4:]
        with pytest.raises(ValueError):
            DeviceAnnotationTrack.from_bytes(corrupted)

    def test_bitflips_never_crash_only_raise_or_parse(self, track_bytes):
        """Random single-byte corruption either raises ValueError or
        yields a structurally valid track — never an unhandled crash."""
        rng = np.random.default_rng(0)
        for _ in range(200):
            pos = int(rng.integers(0, len(track_bytes)))
            flipped = bytearray(track_bytes)
            flipped[pos] ^= int(rng.integers(1, 256))
            try:
                track = DeviceAnnotationTrack.from_bytes(bytes(flipped))
            except ValueError:
                continue
            # If it parsed, the structural invariants must hold.
            levels = track.per_frame_levels()
            assert levels.min() >= 0 and levels.max() <= 255
            assert track.per_frame_gains().min() >= 1.0

    def test_luminance_track_corruption(self, tiny_clip, fast_params):
        pipeline = AnnotationPipeline(fast_params)
        data = pipeline.annotate(tiny_clip).to_bytes()
        with pytest.raises(ValueError):
            AnnotationTrack.from_bytes(data[:8])

    def test_dvfs_track_corruption(self):
        from repro.core import DvfsSceneAnnotation
        track = DvfsTrack("c", 5, 30.0, [DvfsSceneAnnotation(0, 5, 1e6)])
        data = track.to_bytes()
        with pytest.raises(ValueError):
            DvfsTrack.from_bytes(data[:-1])


class TestStreamTampering:
    @pytest.fixture
    def stream_parts(self, tiny_clip, fast_params, device):
        server = MediaServer(params=fast_params)
        server.add_clip(tiny_clip)
        client = MobileClient(device)
        session = server.open_session(client.request("tiny", 0.05))
        return client, session, list(server.stream(session))

    def test_dropped_frame_detected(self, stream_parts):
        client, session, packets = stream_parts
        del packets[5]
        with pytest.raises(StreamProtocolError):
            client.play_stream(session, packets)

    def test_duplicated_frame_detected(self, stream_parts):
        client, session, packets = stream_parts
        packets.insert(5, packets[5])
        with pytest.raises(StreamProtocolError):
            client.play_stream(session, packets)

    def test_annotation_replaced_with_garbage(self, stream_parts):
        from repro.streaming import annotation_packet
        client, session, packets = stream_parts
        packets[0] = annotation_packet(0, b"AND1" + b"\xff" * 7)
        with pytest.raises((StreamProtocolError, ValueError)):
            client.play_stream(session, packets)


class TestInstrumentSaturation:
    def test_daq_overrange_clips_not_crashes(self):
        """Power far beyond the ADC range saturates the reading."""
        cfg = DAQConfig(noise_sigma_v=0.0, shunt_adc_range_v=0.1)
        daq = DAQSimulator(cfg)
        # 50 W -> 10 A -> 1 V across the shunt, 10x the ADC range.
        trace = daq.measure(lambda t: np.full_like(t, 50.0), 0.05)
        assert np.isfinite(trace.power_w).all()
        assert trace.mean_power_w < 50.0  # clipped, visibly wrong, not NaN

    def test_camera_overexposure_flattens_histogram(self, dark_frame, device):
        """A badly overexposed snapshot loses the comparison signal; the
        validator's EMD then reports a large distance against a properly
        exposed reference rather than a false pass."""
        from repro.camera import CompensationValidator
        from repro.core import contrast_enhancement
        overexposed = DigitalCamera(response=LinearResponse(), exposure=50.0)
        validator = CompensationValidator(device, overexposed)
        photo = validator.snapshot(dark_frame, 255)
        assert (photo == 255).mean() > 0.5  # blown out

    def test_decoder_overload_counted(self, tiny_clip, fast_params, device):
        weak = DecoderModel(cpu_hz=5e6)  # hopeless CPU
        pipeline = AnnotationPipeline(fast_params)
        stream = pipeline.build_stream(tiny_clip, device)
        result = PlaybackEngine(device, decoder=weak).play(stream)
        assert result.dropped_deadline_count == tiny_clip.frame_count


class TestBudgetEdgeCases:
    def test_quality_one_clips_everything_but_still_valid(self, tiny_clip, device):
        from repro.core import SchemeParameters
        params = SchemeParameters(quality=1.0, min_scene_interval_frames=5)
        stream = AnnotationPipeline(params).build_stream(tiny_clip, device)
        levels = stream.backlight_levels()
        assert levels.min() >= 0
        # with everything clippable the backlight floors out
        assert levels.max() <= 30

    def test_black_clip_handled(self, device, fast_params):
        from repro.video import Frame, VideoClip
        clip = VideoClip([Frame.solid_gray(8, 8, 0) for _ in range(10)], name="black")
        stream = AnnotationPipeline(fast_params).build_stream(clip, device)
        assert stream.predicted_backlight_savings() > 0.9
        assert stream.mean_clipped_fraction() == 0.0

    def test_white_clip_handled(self, device, fast_params):
        from repro.video import Frame, VideoClip
        clip = VideoClip([Frame.solid_gray(8, 8, 255) for _ in range(10)], name="white")
        stream = AnnotationPipeline(fast_params).build_stream(clip, device)
        assert stream.predicted_backlight_savings() == pytest.approx(0.0)
        assert stream.mean_clipped_fraction() == 0.0

    def test_single_frame_clip(self, device, fast_params):
        from repro.video import Frame, VideoClip
        clip = VideoClip([Frame.solid_gray(8, 8, 100)], name="one")
        stream = AnnotationPipeline(fast_params).build_stream(clip, device)
        assert stream.frame_count == 1
        assert len(stream.track.scenes) == 1
