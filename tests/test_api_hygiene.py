"""API hygiene: documentation and export discipline for the public surface."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.video",
    "repro.display",
    "repro.power",
    "repro.camera",
    "repro.quality",
    "repro.core",
    "repro.streaming",
    "repro.player",
    "repro.baselines",
    "repro.telemetry",
    "repro.net",
    "repro.fleet",
]


def _walk_modules():
    seen = []
    for name in PACKAGES:
        module = importlib.import_module(name)
        seen.append(module)
        if hasattr(module, "__path__"):
            for info in pkgutil.iter_modules(module.__path__):
                if info.name == "__main__":  # importing it runs the CLI
                    continue
                seen.append(importlib.import_module(f"{name}.{info.name}"))
    # top-level single modules
    for name in ("repro.api", "repro.cli", "repro.viz", "repro.experiments"):
        seen.append(importlib.import_module(name))
    return seen


ALL_MODULES = _walk_modules()


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package}.__all__ lists missing {name}"


@pytest.mark.parametrize("package", PACKAGES)
def test_no_duplicate_exports(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert len(exported) == len(set(exported)), package


def _public_members():
    members = []
    for module in ALL_MODULES:
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if getattr(obj, "__module__", None) == module.__name__:
                    members.append((module.__name__, name, obj))
    return members


@pytest.mark.parametrize(
    "qualname,obj",
    [(f"{m}.{n}", o) for m, n, o in _public_members()],
)
def test_public_members_documented(qualname, obj):
    """Every public class and function carries a docstring."""
    assert inspect.getdoc(obj), qualname


def test_public_classes_document_public_methods():
    """Public methods carry docstrings (inherited override docs count)."""
    undocumented = []
    for module_name, name, obj in _public_members():
        if not inspect.isclass(obj):
            continue
        for attr_name, attr in vars(obj).items():
            if attr_name.startswith("_"):
                continue
            if inspect.isfunction(attr) and not inspect.getdoc(
                getattr(obj, attr_name)
            ):
                undocumented.append(f"{module_name}.{name}.{attr_name}")
    assert not undocumented, undocumented
