"""Unit tests for repro.baselines.dtm (tone-mapping baseline)."""

import numpy as np
import pytest

from repro.baselines import DTMScaling, clipped_equalization_curve
from repro.core import FrameStats
from repro.display import MAX_BACKLIGHT_LEVEL, ipaq_5555
from repro.quality import NUM_BINS
from repro.video import Frame


@pytest.fixture
def device():
    return ipaq_5555()


class TestEqualizationCurve:
    def test_monotone_and_normalized(self, dark_frame):
        pmf = FrameStats.of(dark_frame).histogram.normalized()
        curve = clipped_equalization_curve(pmf)
        assert np.all(np.diff(curve) >= -1e-12)
        assert curve[-1] == pytest.approx(1.0)
        assert np.all((0.0 <= curve) & (curve <= 1.0))

    def test_uniform_pmf_identity_like(self):
        pmf = np.full(NUM_BINS, 1.0 / NUM_BINS)
        curve = clipped_equalization_curve(pmf)
        codes = (np.arange(NUM_BINS) + 1) / NUM_BINS
        assert curve == pytest.approx(codes, abs=0.01)

    def test_dark_mass_stretched_up(self, dark_frame):
        """Equalization lifts the dark body — the brightness-perception
        trick DTM exploits."""
        pmf = FrameStats.of(dark_frame).histogram.normalized()
        curve = clipped_equalization_curve(pmf)
        body_code = int(dark_frame.mean_luminance * 255)
        assert curve[body_code] > body_code / 255

    def test_clip_limit_bounds_stretch(self, dark_frame):
        pmf = FrameStats.of(dark_frame).histogram.normalized()
        tight = clipped_equalization_curve(pmf, clip_limit=1.5)
        loose = clipped_equalization_curve(pmf, clip_limit=50.0)
        codes = np.arange(NUM_BINS) / (NUM_BINS - 1)
        # tighter limit = curve closer to identity
        assert np.abs(tight - codes).max() <= np.abs(loose - codes).max() + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            clipped_equalization_curve(np.full(NUM_BINS, 1 / NUM_BINS), clip_limit=1.0)
        with pytest.raises(ValueError):
            clipped_equalization_curve(np.ones(10))


class TestDTMScaling:
    def test_saves_on_dark_content(self, library_clip, device):
        plan = DTMScaling(0.10).plan(library_clip, device)
        assert plan.backlight_savings(device) > 0.2

    def test_brightness_constraint_held(self, device, dark_frame):
        """Mean perceived brightness of the tone-mapped dimmed frame stays
        within tolerance of the original."""
        from repro.display import render_frame
        strategy = DTMScaling(brightness_tolerance=0.10)
        stats = FrameStats.of(dark_frame)
        level, curve = strategy._choose_level(stats, device)
        mapped = strategy.tone_map(dark_frame, curve)
        original = render_frame(dark_frame, MAX_BACKLIGHT_LEVEL, device).mean()
        dimmed = render_frame(mapped, level, device).mean()
        assert dimmed >= original * (1.0 - 0.10) - 0.02

    def test_tolerance_zero_keeps_brightness(self, device, bright_frame):
        strategy = DTMScaling(brightness_tolerance=0.0)
        stats = FrameStats.of(bright_frame)
        level, _curve = strategy._choose_level(stats, device)
        # bright content with no tolerance: near-full backlight
        assert level > 0.8 * MAX_BACKLIGHT_LEVEL

    def test_more_tolerance_more_savings(self, library_clip, device):
        strict = DTMScaling(0.02).plan(library_clip, device)
        lax = DTMScaling(0.25).plan(library_clip, device)
        assert lax.backlight_savings(device) >= strict.backlight_savings(device) - 1e-9

    def test_tone_map_saturates_at_one(self, dark_frame):
        strategy = DTMScaling()
        curve = strategy._frame_curve(FrameStats.of(dark_frame))
        mapped = strategy.tone_map(dark_frame, curve)
        assert mapped.pixels.max() <= 255

    def test_tone_map_preserves_hue_approximately(self):
        strategy = DTMScaling()
        frame = Frame.solid(4, 4, (40, 80, 120))
        curve = strategy._frame_curve(FrameStats.of(frame))
        mapped = strategy.tone_map(frame, curve)
        px = mapped.pixels[0, 0].astype(float)
        if px[0] > 5:  # ratio check only meaningful away from black
            assert px[1] / px[0] == pytest.approx(2.0, rel=0.15)

    def test_client_cost_is_per_frame(self):
        assert DTMScaling().client_luts_per_second(30.0) == 30.0
        with pytest.raises(ValueError):
            DTMScaling().client_luts_per_second(0.0)

    @pytest.mark.parametrize("kwargs", [
        {"brightness_tolerance": -0.1}, {"brightness_tolerance": 1.0},
        {"level_step": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DTMScaling(**kwargs)
