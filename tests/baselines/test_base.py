"""Unit tests for repro.baselines.base."""

import numpy as np
import pytest

from repro.baselines import CompensationMode, SchedulePlan, evaluate_plan
from repro.display import ipaq_5555


def _plan(levels, mode=CompensationMode.NONE, params=None, name="test"):
    levels = np.asarray(levels)
    if params is None:
        params = np.ones(levels.size)
    return SchedulePlan(strategy=name, levels=levels, mode=mode, params=np.asarray(params))


class TestSchedulePlan:
    def test_switch_count(self):
        assert _plan([10, 10, 20, 20, 10]).switch_count() == 2

    def test_constant_no_switches(self):
        assert _plan([128] * 10).switch_count() == 0

    def test_backlight_savings(self):
        device = ipaq_5555()
        assert _plan([255] * 5).backlight_savings(device) == pytest.approx(0.0)
        assert _plan([0] * 5).backlight_savings(device) > 0.9

    @pytest.mark.parametrize("levels,params", [
        ([], []), ([300], [1.0]), ([-1], [1.0]), ([100, 100], [1.0]),
    ])
    def test_validation(self, levels, params):
        with pytest.raises(ValueError):
            _plan(levels, params=params)

    def test_compensate_none_mode(self, dark_frame):
        plan = _plan([128], mode=CompensationMode.NONE)
        result = plan.compensate(dark_frame, 0)
        assert result.frame == dark_frame
        assert result.clipped_fraction == 0.0

    def test_compensate_contrast_mode(self, dark_frame):
        plan = _plan([128], mode=CompensationMode.CONTRAST, params=[2.0])
        result = plan.compensate(dark_frame, 0)
        assert result.frame.mean_luminance > dark_frame.mean_luminance

    def test_compensate_contrast_subunit_gain_identity(self, dark_frame):
        plan = _plan([128], mode=CompensationMode.CONTRAST, params=[0.9])
        assert plan.compensate(dark_frame, 0).frame == dark_frame

    def test_compensate_brightness_mode(self, dark_frame):
        plan = _plan([128], mode=CompensationMode.BRIGHTNESS, params=[0.2])
        result = plan.compensate(dark_frame, 0)
        assert result.frame.mean_luminance == pytest.approx(
            dark_frame.mean_luminance + 0.2, abs=0.05
        )

    def test_compensate_index_checked(self, dark_frame):
        with pytest.raises(IndexError):
            _plan([128]).compensate(dark_frame, 1)


class TestEvaluatePlan:
    def test_scorecard_fields(self, tiny_clip):
        device = ipaq_5555()
        plan = _plan([128] * tiny_clip.frame_count)
        ev = evaluate_plan(plan, tiny_clip, device, sample_every=6)
        assert ev.strategy == "test"
        assert 0.0 <= ev.backlight_savings <= 1.0
        assert ev.switch_count == 0
        assert ev.mean_clipped_fraction == 0.0

    def test_length_mismatch(self, tiny_clip):
        with pytest.raises(ValueError, match="covers"):
            evaluate_plan(_plan([128]), tiny_clip, ipaq_5555())

    def test_invalid_sampling(self, tiny_clip):
        plan = _plan([128] * tiny_clip.frame_count)
        with pytest.raises(ValueError):
            evaluate_plan(plan, tiny_clip, ipaq_5555(), sample_every=0)

    def test_max_at_least_mean(self, tiny_clip):
        device = ipaq_5555()
        plan = _plan(
            [128] * tiny_clip.frame_count,
            mode=CompensationMode.CONTRAST,
            params=[1.8] * tiny_clip.frame_count,
        )
        ev = evaluate_plan(plan, tiny_clip, device, sample_every=3)
        assert ev.max_clipped_fraction >= ev.mean_clipped_fraction
