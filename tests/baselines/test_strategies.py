"""Unit tests for the individual baseline strategies.

Covers static, history-prediction, per-frame, QABS and DLS baselines plus
the AnnotatedScaling adapter, including the cross-strategy orderings the
paper's argument rests on.
"""

import numpy as np
import pytest

from repro.baselines import (
    AnnotatedScaling,
    DLSScaling,
    FullBacklight,
    HistoryPrediction,
    PerFrameScaling,
    QABSScaling,
    StaticDim,
    evaluate_plan,
    psnr_per_clip_code,
)
from repro.core import FrameStats, SchemeParameters
from repro.display import MAX_BACKLIGHT_LEVEL, ipaq_5555
from repro.video import Frame


@pytest.fixture
def device():
    return ipaq_5555()


class TestFullBacklight:
    def test_pins_max(self, tiny_clip, device):
        plan = FullBacklight().plan(tiny_clip, device)
        assert np.all(plan.levels == MAX_BACKLIGHT_LEVEL)
        assert plan.backlight_savings(device) == pytest.approx(0.0)
        assert plan.switch_count() == 0


class TestStaticDim:
    def test_constant_level(self, tiny_clip, device):
        plan = StaticDim(100).plan(tiny_clip, device)
        assert np.all(plan.levels == 100)
        assert plan.switch_count() == 0

    def test_compensated_gain_from_transfer(self, tiny_clip, device):
        plan = StaticDim(100).plan(tiny_clip, device)
        expected = device.transfer.compensation_gain_for_level(100)
        assert plan.params[0] == pytest.approx(max(expected, 1.0))

    def test_raw_variant_no_compensation(self, tiny_clip, device):
        plan = StaticDim(100, compensate=False).plan(tiny_clip, device)
        assert np.all(plan.params == 1.0)
        assert "raw" in plan.strategy

    def test_unbounded_clipping_on_bright_content(self, device, bright_frame):
        """Content-blind dimming destroys bright frames — why static
        dimming is not enough (Section 2)."""
        from repro.video import VideoClip
        clip = VideoClip([bright_frame] * 4, name="bright")
        plan = StaticDim(64).plan(clip, device)
        ev = evaluate_plan(plan, clip, device)
        assert ev.max_clipped_fraction > 0.5

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            StaticDim(0)
        with pytest.raises(ValueError):
            StaticDim(300)


class TestHistoryPrediction:
    def test_first_frame_full(self, tiny_clip, device):
        plan = HistoryPrediction(0.05).plan(tiny_clip, device)
        assert plan.levels[0] == MAX_BACKLIGHT_LEVEL

    def test_saves_power_on_stable_content(self, tiny_clip, device):
        plan = HistoryPrediction(0.05).plan(tiny_clip, device)
        assert plan.backlight_savings(device) > 0.1

    def test_mispredicts_on_scene_cuts(self, tiny_clip, device):
        """Dark->bright cuts catch the predictor out — 'serious
        consequences on quality degradation if prediction proves wrong'."""
        stats = HistoryPrediction(0.05, window=8).misprediction_stats(tiny_clip, device)
        assert stats["violation_fraction"] > 0.0
        assert stats["worst_shortfall"] > 0.05

    def test_annotations_never_mispredict(self, tiny_clip, device, fast_params):
        """The annotated scheme, by construction, has zero violations."""
        plan = AnnotatedScaling(fast_params).plan(tiny_clip, device)
        from repro.core import StreamAnalyzer
        stats = StreamAnalyzer().analyze(tiny_clip)
        eff = np.array([s.effective_max(fast_params.quality) for s in stats])
        supplied = np.asarray(device.transfer.backlight.luminance(plan.levels))
        needed = np.asarray(device.transfer.white.luminance(eff))
        assert np.all(supplied >= needed - 1e-9)

    def test_larger_margin_fewer_violations(self, tiny_clip, device):
        tight = HistoryPrediction(0.05, margin=1.0).misprediction_stats(tiny_clip, device)
        loose = HistoryPrediction(0.05, margin=1.3).misprediction_stats(tiny_clip, device)
        assert loose["violation_fraction"] <= tight["violation_fraction"]

    @pytest.mark.parametrize("kwargs", [
        {"quality": 1.5}, {"window": 0}, {"margin": 0.9},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HistoryPrediction(**kwargs)


class TestPerFrameScaling:
    def test_saves_at_least_scene_grouped(self, library_clip, device, fast_params):
        """Per-frame adaptation is the upper bound on scene grouping."""
        per_frame = PerFrameScaling(fast_params.quality).plan(library_clip, device)
        grouped = AnnotatedScaling(fast_params).plan(library_clip, device)
        assert per_frame.backlight_savings(device) >= grouped.backlight_savings(device) - 1e-9

    def test_flickers_more(self, library_clip, device, fast_params):
        per_frame = PerFrameScaling(fast_params.quality).plan(library_clip, device)
        grouped = AnnotatedScaling(fast_params).plan(library_clip, device)
        assert per_frame.switch_count() > grouped.switch_count()

    def test_quality_budget_held(self, tiny_clip, device):
        plan = PerFrameScaling(0.10).plan(tiny_clip, device)
        ev = evaluate_plan(plan, tiny_clip, device)
        assert ev.max_clipped_fraction <= 0.11

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            PerFrameScaling(-0.1)


class TestQABS:
    def test_psnr_per_clip_code_shape(self, dark_frame):
        stats = FrameStats.of(dark_frame)
        psnr = psnr_per_clip_code(stats)
        assert psnr.shape == (256,)
        assert psnr[255] == np.inf

    def test_psnr_monotone_in_code(self, dark_frame):
        """Clipping less (higher code) can only raise PSNR."""
        stats = FrameStats.of(dark_frame)
        psnr = psnr_per_clip_code(stats)
        finite = psnr[np.isfinite(psnr)]
        assert np.all(np.diff(finite) >= -1e-9)

    def test_psnr_floor_respected(self, tiny_clip, device):
        floor = 35.0
        plan = QABSScaling(psnr_floor_db=floor, alpha=1.0, min_step=0).plan(
            tiny_clip, device
        )
        from repro.core import StreamAnalyzer
        stats = StreamAnalyzer().analyze(tiny_clip)
        for i, s in enumerate(stats):
            psnr = psnr_per_clip_code(s, white_gamma=device.transfer.white.gamma)
            # the chosen level must correspond to a clip code meeting the floor
            supplied = float(device.transfer.backlight.luminance(int(plan.levels[i])))
            code = int(np.floor(supplied ** (1 / device.transfer.white.gamma) * 255))
            assert psnr[min(code, 255)] >= floor - 0.5

    def test_smoothing_reduces_switches(self, library_clip, device):
        smooth = QABSScaling(alpha=0.1, min_step=6).plan(library_clip, device)
        raw = QABSScaling(alpha=1.0, min_step=0).plan(library_clip, device)
        assert smooth.switch_count() <= raw.switch_count()

    def test_lower_floor_saves_more(self, library_clip, device):
        strict = QABSScaling(psnr_floor_db=45.0).plan(library_clip, device)
        lax = QABSScaling(psnr_floor_db=25.0).plan(library_clip, device)
        assert lax.backlight_savings(device) >= strict.backlight_savings(device) - 1e-9

    @pytest.mark.parametrize("kwargs", [
        {"psnr_floor_db": 0}, {"alpha": 0.0}, {"alpha": 1.5}, {"min_step": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            QABSScaling(**kwargs)


class TestDLS:
    def test_budget_held(self, tiny_clip, device):
        plan = DLSScaling(clip_budget=0.10, level_step=4).plan(tiny_clip, device)
        ev = evaluate_plan(plan, tiny_clip, device)
        assert ev.max_clipped_fraction <= 0.12

    def test_bigger_budget_saves_more(self, library_clip, device):
        small = DLSScaling(clip_budget=0.02).plan(library_clip, device)
        big = DLSScaling(clip_budget=0.20).plan(library_clip, device)
        assert big.backlight_savings(device) >= small.backlight_savings(device) - 1e-9

    def test_bright_content_stays_bright(self, device, bright_frame):
        from repro.video import VideoClip
        clip = VideoClip([bright_frame] * 3, name="bright")
        plan = DLSScaling(clip_budget=0.05).plan(clip, device)
        assert plan.levels.min() > 150

    def test_uses_brightness_mode(self, tiny_clip, device):
        from repro.baselines import CompensationMode
        plan = DLSScaling().plan(tiny_clip, device)
        assert plan.mode is CompensationMode.BRIGHTNESS

    @pytest.mark.parametrize("kwargs", [{"clip_budget": 2.0}, {"level_step": 0}])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DLSScaling(**kwargs)


class TestAnnotatedScaling:
    def test_matches_pipeline(self, tiny_clip, device, fast_params):
        from repro.core import AnnotationPipeline
        plan = AnnotatedScaling(fast_params).plan(tiny_clip, device)
        track = AnnotationPipeline(fast_params).annotate_for_device(tiny_clip, device)
        assert np.array_equal(plan.levels, track.per_frame_levels())

    def test_fewest_switches_of_adaptive_strategies(self, library_clip, device, fast_params):
        """Scene grouping is the flicker-control story of the paper."""
        annotated = AnnotatedScaling(fast_params).plan(library_clip, device)
        per_frame = PerFrameScaling(fast_params.quality).plan(library_clip, device)
        history = HistoryPrediction(fast_params.quality).plan(library_clip, device)
        assert annotated.switch_count() <= per_frame.switch_count()
        assert annotated.switch_count() <= history.switch_count()
