"""Legacy setup shim.

Offline environments may lack the ``wheel`` package that PEP 660 editable
installs require; with this shim, ``pip install -e . --no-build-isolation``
can fall back to the legacy ``setup.py develop`` path.  All metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
