#!/usr/bin/env python
"""Full streaming session: server -> network -> PDA client, with power.

Reproduces the paper's Figure 1 system model in one process:

* a media server that profiles and annotates its catalog,
* session negotiation (device capabilities + user quality choice),
* packetized delivery over wired + 802.11b hops,
* client playback applying the annotated backlight levels,
* DAQ-style measurement of whole-device power vs the full-backlight run.

Run:  python examples/streaming_session.py
"""

from repro.core import SchemeParameters
from repro.display import ipaq_5555
from repro.power import Battery, simulated_backlight_savings
from repro.streaming import MediaServer, MobileClient, NetworkPath
from repro.video import make_clip


def main():
    # --- server side -----------------------------------------------------
    server = MediaServer(params=SchemeParameters())
    for title in ("catwoman", "ice_age"):
        server.add_clip(make_clip(title, duration_scale=0.4))
    print(f"Server catalog: {', '.join(server.catalog())}")

    # --- client side -----------------------------------------------------
    device = ipaq_5555()
    client = MobileClient(device)
    network = NetworkPath()

    for title in server.catalog():
        # The user asks for 10 % quality loss; the server snaps to a
        # prepared variant and binds annotations to this device.
        session = server.open_session(client.request(title, quality=0.10))
        packets = list(server.stream(session))
        delivery = network.deliver(packets)

        result = client.play_stream(session, packets, delivery=delivery)
        bl_savings = simulated_backlight_savings(result.applied_levels, device)

        # DAQ measurement of both runs, as in Section 5.1.
        measured = result.measure(run_id=1).savings_vs(result.measure_baseline(run_id=2))

        battery = Battery()
        extension = battery.runtime_extension(
            result.baseline_mean_power_w, result.mean_power_w
        )

        print(f"\n=== {title} (session #{session.session_id}, "
              f"quality {session.quality:.0%}) ===")
        print(f"  stream: {len(packets)} packets, "
              f"{delivery.total_bytes / 1024:.0f} KiB, "
              f"radio duty {delivery.radio_duty(result.duration_s):.1%}")
        print(f"  backlight savings (simulated): {bl_savings:.1%}")
        print(f"  total device savings (ground truth): {result.total_savings:.1%}")
        print(f"  total device savings (DAQ measured): {measured:.1%}")
        print(f"  battery runtime extension: {extension:+.1%}")
        print(f"  backlight switches: {result.switch_count}, "
              f"dropped deadlines: {result.dropped_deadline_count}")


if __name__ == "__main__":
    main()
