#!/usr/bin/env python
"""Annotations beyond the backlight: DVFS and region-of-interest.

Section 3 of the paper presents data annotation as a general mechanism and
names two more consumers that the evaluation never exercises:

* "Optimizations like frequency/voltage scaling can be applied before
  decoding is finished, because the annotated information is available
  early from the data stream."
* The annotation process can run "under user supervision (for example,
  the user may specify which parts or objects of the video stream are
  more important in a power-quality trade-off scenario)."

This example exercises both extensions:

1. decode-complexity annotations drive the CPU operating point per scene
   (sub-resolution streaming, where the XScale has slack);
2. an importance map lets a don't-care corner flare clip freely while the
   centered subject stays protected.

Run:  python examples/annotations_beyond_backlight.py
"""

import numpy as np

from repro.core import (
    AnnotationPipeline,
    DvfsAnnotator,
    ImportanceMap,
    SchemeParameters,
)
from repro.display import ipaq_5555
from repro.player import DecoderModel, DvfsPlaybackEngine
from repro.video import DarkScene, Frame, VideoClip, make_clip


def dvfs_demo(device):
    print("=== 1. Frequency/voltage scaling from decode annotations ===")
    decoder = DecoderModel(reference_pixels=160 * 120)  # sub-res streaming
    annotator = DvfsAnnotator(decoder=decoder)
    engine = DvfsPlaybackEngine(device, decoder=decoder)
    pipeline = AnnotationPipeline(SchemeParameters(quality=0.10))

    print(f"{'clip':<12}{'backlight':>10}{'+dvfs':>8}{'combined':>10}"
          f"{'mean MHz':>10}{'late':>6}")
    for title in ("i_robot", "ice_age"):
        clip = make_clip(title, duration_scale=0.3)
        profile = pipeline.profile(clip)
        stream = pipeline.build_stream(clip, device)
        track = annotator.annotate_with_profile(clip, profile)
        result = engine.play(stream, track)
        print(f"{title:<12}{result.backlight_only_savings:>10.1%}"
              f"{result.dvfs_extra_savings:>8.1%}{result.combined_savings:>10.1%}"
              f"{result.mean_frequency_hz / 1e6:>10.0f}{result.late_frames:>6}")
    print("Note how DVFS helps even on ice_age, where the backlight cannot.\n")


def roi_demo(device):
    print("=== 2. User-supervised (ROI) annotation ===")
    h, w = 72, 96
    gen = DarkScene(duration=30, resolution=(w, h), seed=2,
                    background=0.18, highlight=0.5)
    frames = []
    for i in range(30):
        pixels = gen.render(i).pixels.copy()
        pixels[0:12, 0:16, :] = 245  # bright don't-care corner flare
        frames.append(Frame(pixels))
    clip = VideoClip(frames, name="flare")

    roi = ImportanceMap.rectangle(h, w, 12, 16, 60, 80, inside=1.0, outside=0.0)
    params = SchemeParameters(quality=0.0, min_scene_interval_frames=8)

    plain = AnnotationPipeline(params).build_stream(clip, device)
    weighted = AnnotationPipeline(params, importance=roi).build_stream(clip, device)

    print(f"lossless, no ROI : savings {plain.predicted_backlight_savings():>6.1%} "
          f"(the corner flare pins the backlight)")
    print(f"lossless, ROI    : savings {weighted.predicted_backlight_savings():>6.1%} "
          f"(the flare is don't-care; the subject is untouched)")


def main():
    device = ipaq_5555()
    dvfs_demo(device)
    roi_demo(device)


if __name__ == "__main__":
    main()
