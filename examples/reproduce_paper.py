#!/usr/bin/env python
"""Reproduce the paper's evaluation in one command.

Runs every figure/table through :mod:`repro.experiments` and prints the
paper-style tables, with the qualitative claims checked inline.  This is
the library-API twin of ``pytest benchmarks/ --benchmark-only``.

Run:  python examples/reproduce_paper.py [duration_scale]
      (default scale 0.25; larger = longer clips, steadier numbers)
"""

import sys

from repro import experiments


def check(label, condition):
    print(f"  [{'ok' if condition else 'FAIL'}] {label}")
    return condition


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    print(f"Running the full reproduction sweep (duration_scale={scale:g})...\n")

    print("=== Section 4: backlight share of device power ===")
    share = experiments.backlight_share()
    print(share.format())
    check("every device in the ~25-40 % band",
          all(0.2 <= share.share(n) <= 0.45 for n in share.rows))

    print("\n=== Figure 7: measured backlight transfer curves ===")
    fig7 = experiments.figure7()
    print(fig7.format())
    mids = [curve[4] for curve in fig7.curves.values()]  # level 128
    check("nonlinear on every device", all(abs(m - 0.5) > 0.05 for m in mids))

    print("\n=== Figure 6: scene grouping trace (themovie) ===")
    fig6 = experiments.figure6("themovie", duration_scale=scale)
    print(fig6.format())
    print(f"  scenes={fig6.scene_count} switches={fig6.switch_count}")

    print("\n=== Figure 9: simulated backlight power savings ===")
    fig9 = experiments.figure9(duration_scale=scale)
    print(fig9.format())
    best_name, best_value = fig9.best_clip()
    check(f"headline magnitude (best clip {best_name}: {best_value:.1%})",
          best_value >= 0.6)
    check("ice_age nearly flat", fig9.rows["ice_age"][-1] < 0.15)

    print("\n=== Figure 10: measured total-device power savings ===")
    fig10 = experiments.figure10(duration_scale=scale)
    print(fig10.format())
    peak = max(v[-1] for v in fig10.rows.values())
    check(f"peak total savings {peak:.1%} brackets the paper's 15-20 %",
          0.12 <= peak <= 0.25)
    check("ice_age shows almost no improvement", fig10.rows["ice_age"][-1] < 0.06)


if __name__ == "__main__":
    main()
