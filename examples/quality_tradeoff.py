#!/usr/bin/env python
"""Quality-power trade-off sweep with camera validation (Figures 4, 5, 9).

For one clip the script sweeps the paper's five quality levels and, per
level, reports:

* predicted backlight power savings (the Figure 9 series for one clip),
* the actual fraction of clipped pixels (must stay under the budget),
* a digital-camera validation of a dark frame (Figure 4: average
  brightness of the reference vs compensated snapshot).

Run:  python examples/quality_tradeoff.py [clip_name]
"""

import sys

from repro.camera import CompensationValidator, DigitalCamera
from repro.core import QUALITY_LEVELS, SchemeParameters, quality_label, sweep_quality_levels
from repro.display import ipaq_5555
from repro.video import PAPER_CLIP_NAMES, make_clip


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "returnoftheking"
    if name not in PAPER_CLIP_NAMES:
        raise SystemExit(f"unknown clip {name!r}; choose from {PAPER_CLIP_NAMES}")

    clip = make_clip(name, duration_scale=0.4)
    device = ipaq_5555()
    validator = CompensationValidator(device, DigitalCamera(noise_sigma=0.002, seed=3))

    streams = sweep_quality_levels(clip, device, QUALITY_LEVELS,
                                   params=SchemeParameters())

    # pick the darkest frame for the Figure 4 style validation
    dark_index = min(range(clip.frame_count),
                     key=lambda i: clip.frame(i).mean_luminance)

    print(f"Clip {clip.name}: {clip.frame_count} frames on {device.name}")
    print(f"{'quality':>8} {'savings':>8} {'clipped':>8} {'scenes':>7} "
          f"{'ref avg':>8} {'comp avg':>9} {'EMD':>6} {'ok?':>4}")
    for q, stream in zip(QUALITY_LEVELS, streams):
        savings = stream.predicted_backlight_savings()
        clipped = stream.mean_clipped_fraction(sample_every=5)
        comp = stream.compensated_frame(dark_index)
        level = int(stream.backlight_levels()[dark_index])
        report = validator.validate(clip.frame(dark_index), comp.frame, level)
        print(f"{quality_label(q):>8} {savings:>8.1%} {clipped:>8.2%} "
              f"{len(stream.track.scenes):>7} "
              f"{report.reference_average:>8.1f} {report.compensated_average:>9.1f} "
              f"{report.emd:>6.1f} {'yes' if report.acceptable() else 'NO':>4}")

    print("\nReading the table:")
    print(" * savings grow with the allowed clipping (Figure 9's shape);")
    print(" * clipped pixels always stay at or below the quality level;")
    print(" * the camera sees nearly identical average brightness for the")
    print("   reference (full backlight) and compensated (dimmed) snapshots")
    print("   (Figure 4's comparison).")


if __name__ == "__main__":
    main()
