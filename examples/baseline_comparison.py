#!/usr/bin/env python
"""Compare the annotation scheme against the baseline strategies.

One table per clip: for each strategy the backlight power saved, the
number of backlight switches (flicker) and the worst-frame clipped
fraction (quality violations).  The orderings the paper argues for should
be visible:

* per-frame scaling saves the most but switches constantly;
* history prediction saves power but violates the quality budget on scene
  cuts ("serious consequences ... if prediction proves wrong");
* static dimming is either wasteful (bright clips) or destructive;
* the annotated scheme matches per-frame savings closely with a handful
  of switches and never exceeds its budget.

Run:  python examples/baseline_comparison.py
"""

from repro.baselines import (
    AnnotatedScaling,
    DLSScaling,
    FullBacklight,
    HistoryPrediction,
    PerFrameScaling,
    QABSScaling,
    StaticDim,
    evaluate_plan,
)
from repro.core import SchemeParameters
from repro.display import ipaq_5555
from repro.video import make_clip

QUALITY = 0.10


def main():
    device = ipaq_5555()
    strategies = [
        FullBacklight(),
        StaticDim(128),
        HistoryPrediction(QUALITY, window=8),
        PerFrameScaling(QUALITY),
        QABSScaling(psnr_floor_db=35.0),
        DLSScaling(QUALITY),
        AnnotatedScaling(SchemeParameters(quality=QUALITY)),
    ]

    for title in ("spiderman2", "ice_age"):
        clip = make_clip(title, duration_scale=0.4)
        print(f"\n=== {title} ({clip.frame_count} frames, quality budget "
              f"{QUALITY:.0%}) ===")
        print(f"{'strategy':>18} {'savings':>8} {'switches':>9} "
              f"{'mean clip':>10} {'max clip':>9}")
        for strategy in strategies:
            plan = strategy.plan(clip, device)
            ev = evaluate_plan(plan, clip, device, sample_every=3)
            flag = " (!)" if ev.max_clipped_fraction > QUALITY + 0.01 else ""
            print(f"{ev.strategy:>18} {ev.backlight_savings:>8.1%} "
                  f"{ev.switch_count:>9} {ev.mean_clipped_fraction:>10.2%} "
                  f"{ev.max_clipped_fraction:>9.2%}{flag}")
        print("  (!) = exceeded the quality budget on at least one frame")


if __name__ == "__main__":
    main()
