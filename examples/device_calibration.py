#!/usr/bin/env python
"""Device characterization with a digital camera (Figures 7 and 8).

"We start by first characterizing the display and backlight of our PDAs.
This is performed by displaying images of different solid gray levels on
the handhelds and capturing snapshots of the screen with a digital
camera."  (Section 5)

For each of the three PDAs this script:

* sweeps the backlight with a white pattern and prints the measured
  brightness curve (Figure 7's shape, one column per device),
* sweeps the white level at backlight 255 and 128 (Figure 8),
* fits the white-transfer gamma and reports how linear each panel is,
* builds a tabulated transfer from the sweep and shows that it reproduces
  the factory curve the annotation pipeline uses.

Run:  python examples/device_calibration.py
"""

import numpy as np

from repro.camera import DigitalCamera, SRGBLikeResponse
from repro.display import (
    all_devices,
    fit_white_gamma,
    measure_backlight_transfer,
    measure_white_transfer,
)


def ascii_bar(value, width=40):
    filled = int(round(value * width))
    return "#" * filled + "." * (width - filled)


def main():
    camera = DigitalCamera(response=SRGBLikeResponse(), noise_sigma=0.002, seed=7)
    devices = all_devices()

    # ---- Figure 7: brightness vs backlight level (white = 255) ----------
    print("=== Figure 7: measured brightness vs backlight level ===")
    levels = list(range(0, 256, 32)) + [255]
    header = "level  " + "  ".join(f"{d.name:>14}" for d in devices)
    print(header)
    curves = {d.name: measure_backlight_transfer(d, camera) for d in devices}
    for lv in levels:
        row = f"{lv:>5}  " + "  ".join(
            f"{float(curves[d.name].luminance(lv)):>14.3f}" for d in devices
        )
        print(row)

    # ---- Figure 8: brightness vs white level at two backlights ----------
    print("\n=== Figure 8: measured brightness vs white level (ipaq5555) ===")
    dev = devices[0]
    for backlight in (255, 128):
        samples = measure_white_transfer(dev, camera, backlight_level=backlight,
                                         gray_levels=range(0, 256, 32))
        print(f"backlight={backlight}")
        for s in samples:
            print(f"  white={s.level:>3}  {ascii_bar(s.measured_brightness)} "
                  f"{s.measured_brightness:.3f}")

    # ---- White gamma fits ------------------------------------------------
    print("\n=== Fitted white-transfer gamma per device ===")
    for d in devices:
        samples = measure_white_transfer(d, camera)
        gamma = fit_white_gamma(samples)
        note = "almost linear" if abs(gamma - 1.0) < 0.05 else "curved"
        print(f"  {d.name:>14}: gamma = {gamma:.3f}  ({note}; "
              f"factory model {d.transfer.white.gamma:.2f})")

    # ---- Closing the loop -------------------------------------------------
    print("\n=== Calibrated vs factory backlight levels for a 0.5-luminance scene ===")
    from repro.display import DisplayTransfer, WhiteTransfer
    for d in devices:
        calibrated = DisplayTransfer(curves[d.name], WhiteTransfer(d.transfer.white.gamma))
        lv_cal = calibrated.level_for_scene(0.5)
        lv_fac = d.transfer.level_for_scene(0.5)
        print(f"  {d.name:>14}: calibrated {lv_cal:>3}  factory {lv_fac:>3}")


if __name__ == "__main__":
    main()
