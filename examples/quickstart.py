#!/usr/bin/env python
"""Quickstart: annotate a clip and see the backlight power savings.

Walks the core API end to end:

1. build a clip (a synthetic stand-in for the paper's movie trailers),
2. pick a device profile (the paper's iPAQ 5555),
3. run the annotation pipeline at a 10 % quality level,
4. inspect the scenes, backlight schedule and predicted savings.

Run:  python examples/quickstart.py
"""

from repro.core import AnnotationPipeline, SchemeParameters
from repro.display import ipaq_5555
from repro.video import make_clip


def main():
    # 1. A clip from the library (scaled down so the script runs in ~1 s).
    clip = make_clip("spiderman2", duration_scale=0.5)
    print(f"Clip: {clip.name}  ({clip.frame_count} frames @ {clip.fps:g} fps, "
          f"{clip.duration:.1f} s)")

    # 2. The client device: transflective panel, white-LED backlight.
    device = ipaq_5555()
    print(f"Device: {device.name}  (backlight {device.backlight.kind}, "
          f"max {device.backlight.power_max_w:.2f} W, "
          f"{device.backlight_share():.0%} of device power)")

    # 3. Annotate: 10 % of the brightest pixels may clip per frame.
    params = SchemeParameters(quality=0.10)
    pipeline = AnnotationPipeline(params)
    stream = pipeline.build_stream(clip, device)

    # 4. What the server attached to the stream.
    track = stream.track
    print(f"\nAnnotation track: {len(track.scenes)} scenes, "
          f"{track.nbytes} bytes (clip payload is "
          f"{sum(f.pixels.nbytes for f in clip) // 1024} KiB)")
    print(f"{'scene':>5} {'frames':>12} {'backlight':>9} {'gain':>6}")
    for k, scene in enumerate(track.scenes):
        print(f"{k:>5} {f'{scene.start}-{scene.end - 1}':>12} "
              f"{scene.backlight_level:>9} {scene.compensation_gain:>6.2f}")

    # 5. The numbers the paper reports.
    print(f"\nPredicted backlight power savings: "
          f"{stream.predicted_backlight_savings():.1%}")
    print(f"Mean clipped pixels (quality budget {params.quality:.0%}): "
          f"{stream.mean_clipped_fraction(sample_every=5):.2%}")
    print(f"Backlight switches during playback: {track.switch_count()}")


if __name__ == "__main__":
    main()
