#!/usr/bin/env python
"""Live conferencing through the proxy (Figure 1's on-the-fly case).

"The communication between the handheld device and the server can be
routed through a proxy node — a high-end machine with the ability to
process the video stream in real-time, on-the-fly (example in
videoconferencing)."

A live camera feed (no server-side profile possible) flows through the
transcoding proxy, which annotates and compensates in fixed chunks; the
client plays it over the wireless hop.  The script reports the full live
pipeline budget: proxy chunk latency, network delivery, the playout
buffer needed for smooth playback, and the power saved relative to an
unannotated feed.

Run:  python examples/live_conferencing.py
"""

from repro.core import SchemeParameters
from repro.display import ipaq_5555
from repro.power import simulated_backlight_savings
from repro.streaming import (
    MobileClient,
    NetworkPath,
    PacketType,
    PlayoutBuffer,
    SessionDescription,
    TranscodingProxy,
)
from repro.video import SceneSpec, ScriptedClipFactory, LazyClip

FPS = 15.0  # conferencing frame rate


def make_feed():
    """A talking-head feed: dim room, speaker lit by a desk lamp."""
    scenes = [
        SceneSpec("dark", 60, {"background": 0.2, "highlight": 0.7, "n_spots": 2,
                               "drift": 0.03}),
        SceneSpec("dark", 45, {"background": 0.25, "highlight": 0.75, "n_spots": 2,
                               "drift": 0.05}),
        SceneSpec("dark", 60, {"background": 0.18, "highlight": 0.65, "n_spots": 3,
                               "drift": 0.03}),
    ]
    factory = ScriptedClipFactory(scenes, resolution=(96, 72), seed=21)
    return LazyClip(factory, frame_count=factory.frame_count, fps=FPS, name="webcam")


def main():
    device = ipaq_5555()
    feed = make_feed()
    params = SchemeParameters(quality=0.05, min_scene_interval_frames=8)

    # The proxy annotates the live feed chunk by chunk.
    proxy = TranscodingProxy(device, params, chunk_frames=15)
    packets = list(proxy.process(iter(feed), fps=FPS, name=feed.name))

    # Delivery over the standard wired + 802.11b path.
    network = NetworkPath()
    delivery = network.deliver(packets)
    frame_arrivals = [
        t for t, p in zip(delivery.arrival_times_s, packets)
        if p.ptype is PacketType.FRAME
    ]
    startup = PlayoutBuffer.minimum_startup_delay(frame_arrivals, FPS)
    playout = PlayoutBuffer(startup + 0.05).simulate(frame_arrivals, FPS)

    # Client playback with the annotated levels.
    client = MobileClient(device)
    session = SessionDescription(
        session_id=1, clip_name=feed.name, quality=params.quality,
        device_name=device.name, fps=FPS, frame_count=feed.frame_count,
    )
    result = client.play_stream(session, packets, delivery=delivery)

    print(f"Live feed: {feed.frame_count} frames @ {FPS:g} fps "
          f"({feed.duration:.0f} s of conference)")
    print(f"proxy chunk latency     : {proxy.chunk_latency_s(FPS):.2f} s")
    print(f"network delivery        : {delivery.total_bytes / 1024:.0f} KiB, "
          f"radio duty {delivery.radio_duty(result.duration_s):.1%}")
    print(f"playout startup buffer  : {startup + 0.05:.2f} s "
          f"({'smooth' if playout.smooth else f'{playout.stall_count} stalls'})")
    print(f"glass-to-glass budget   : "
          f"{proxy.chunk_latency_s(FPS) + startup + 0.05:.2f} s")
    bl = simulated_backlight_savings(result.applied_levels, device)
    print(f"backlight power saved   : {bl:.1%}")
    print(f"total device power saved: {result.total_savings:.1%} "
          f"(vs an unannotated feed at full backlight)")


if __name__ == "__main__":
    main()
