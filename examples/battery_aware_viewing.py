#!/usr/bin/env python
"""Battery-aware viewing session: the middleware picks quality levels.

A traveler wants to watch three full-length movies on one battery charge.
The middleware (the layer reference [13] describes) divides the remaining
energy by the remaining watch time before each title and asks the server
for the least-degradation variant that fits, using the power hints the
server derived from its annotation pass.

Run:  python examples/battery_aware_viewing.py
"""

from repro.display import ipaq_5555
from repro.power import Battery
from repro.streaming import BatteryAwareMiddleware, MediaServer
from repro.video import make_clip

#: Pretend durations of the full-length titles (the simulation clips are
#: scaled down for speed; energy budgeting uses the real runtimes).
MOVIE_RUNTIME_S = {
    "returnoftheking": 3.5 * 3600,
    "catwoman": 1.7 * 3600,
    "ice_age": 1.4 * 3600,
}


def run_session(server, device, capacity_wh):
    middleware = BatteryAwareMiddleware(
        server, device, battery=Battery(capacity_wh=capacity_wh)
    )
    plan = middleware.plan_session(list(MOVIE_RUNTIME_S), durations_s=MOVIE_RUNTIME_S)
    print(f"--- battery: {capacity_wh:.1f} Wh ---")
    print(plan.describe())
    print()


def main():
    device = ipaq_5555()
    server = MediaServer()
    for name in MOVIE_RUNTIME_S:
        server.add_clip(make_clip(name, duration_scale=0.3))

    total_hours = sum(MOVIE_RUNTIME_S.values()) / 3600
    print(f"Playlist: {', '.join(MOVIE_RUNTIME_S)} ({total_hours:.1f} h)\n")

    # A big battery: full quality throughout.
    run_session(server, device, capacity_wh=25.0)
    # The stock pack: some titles must degrade.
    run_session(server, device, capacity_wh=18.0)
    # A worn-out pack: aggressive everywhere, may still not finish.
    run_session(server, device, capacity_wh=14.0)


if __name__ == "__main__":
    main()
